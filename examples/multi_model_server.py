"""Async multi-model serving: two model families, one live server.

Walks the `ModelServer` surface end to end and asserts bit-exactness the
whole way (the CI `server` job runs this file):

1. quantize + deploy two different model *families* (a ResNet CNN and an
   LSTM language model) through the `repro.api` pipeline;
2. host both in one `ModelServer` with background workers and dynamic
   batching, submit interleaved request streams from client threads, and
   assert every result is `np.array_equal` to eager quantized inference
   at the served batch composition;
3. roll the CNN over to a new version behind a stable alias
   (`resnet -> resnet@v2`) with zero downtime;
4. drive a second live server over the `python -m repro serve up`
   JSON-lines protocol through a real pipe.

Run:  PYTHONPATH=src python examples/multi_model_server.py
"""

import json
import os
import subprocess
import sys
import tempfile
import threading

import numpy as np

from repro.api import Pipeline, PipelineConfig
from repro.serve import ModelServer
from repro.serve.cli import build_model


def quantize_and_deploy(name, seed, path):
    """PTQ a zoo model and deploy it to a saved artifact."""
    model, sample = build_model(name, seed=seed)
    rng = np.random.default_rng(seed + 100)
    pipeline = Pipeline(PipelineConfig(batch=8), model=model)
    pipeline.calibrate([sample(rng, 8) for _ in range(2)])
    deployment = pipeline.deploy(name=name, path=path, max_wait_ms=2.0)
    return deployment, pipeline.result, sample


def assert_bit_exact(futures, payloads, quantized):
    """Each served batch must equal eager inference on the same batch."""
    groups = {}
    for future, payload in zip(futures, payloads):
        result = future.result(timeout=60.0)   # waits; request set after
        groups.setdefault(future.request.batch_id, []).append(
            (result, payload))
    for pairs in groups.values():
        served = np.stack([result for result, _ in pairs])
        eager = quantized.predict(np.stack([p for _, p in pairs]))
        # Time-merged RNN outputs come back flattened from eager; view
        # them per request like the server does before comparing.
        assert np.array_equal(served, eager.reshape(served.shape)), \
            "served != eager (bitwise)"
    return len(groups)


def main() -> None:
    tmp = tempfile.mkdtemp(prefix="repro-server-")
    resnet_path = os.path.join(tmp, "resnet.npz")
    lm_path = os.path.join(tmp, "lm.npz")

    # 1. Two model families through the one pipeline.
    resnet, resnet_q, resnet_sample = quantize_and_deploy(
        "resnet_tiny", 0, resnet_path)
    lm, lm_q, lm_sample = quantize_and_deploy("lstm_lm", 1, lm_path)
    print(f"[1] deployed resnet_tiny -> {resnet_path}")
    print(f"    deployed lstm_lm     -> {lm_path}")

    # 2. One server, both families, concurrent client threads.
    rng = np.random.default_rng(7)
    resnet_payloads = [resnet_sample(rng, 1)[0] for _ in range(48)]
    lm_payloads = [lm_sample(rng, 1)[0] for _ in range(48)]
    with ModelServer(workers=2, max_batch=8, max_wait_ms=2.0) as server:
        server.add("resnet", resnet, warmup=True)
        server.add("lm", lm, warmup=True)

        results = {}

        def client(name, payloads):
            results[name] = server.submit_many(name, payloads)

        threads = [threading.Thread(target=client,
                                    args=("resnet", resnet_payloads)),
                   threading.Thread(target=client, args=("lm", lm_payloads))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        batches_r = assert_bit_exact(results["resnet"], resnet_payloads,
                                     resnet_q)
        batches_l = assert_bit_exact(results["lm"], lm_payloads, lm_q)
        print(f"[2] served 48+48 interleaved requests bit-exactly "
              f"({batches_r}+{batches_l} dynamic batches)")
        for line in server.format_stats().splitlines():
            print(f"    {line}")

        # 3. Versioned rollover behind a stable alias, zero downtime.
        v2, v2_q, _ = quantize_and_deploy(
            "resnet_tiny", 99, os.path.join(tmp, "resnet_v2.npz"))
        server.alias("cnn", "resnet")
        before = server.predict("cnn", resnet_payloads[0], timeout=60.0)
        server.add("resnet@v2", v2)
        server.alias("cnn", "resnet@v2")
        server.unload("resnet")
        after = server.predict("cnn", resnet_payloads[0], timeout=60.0)
        assert np.array_equal(
            after, v2_q.predict(resnet_payloads[0][None])[0])
        assert not np.array_equal(before, after), "v2 must differ from v1"
        print("[3] alias rollover cnn: resnet -> resnet@v2 (new weights "
              "live, old model retired)")

    # 4. The same thing as a live process: JSON-lines over a real pipe.
    requests = [{"id": i, "model": "resnet",
                 "input": p.tolist()} for i, p in
                enumerate(resnet_payloads[:6])]
    process = subprocess.run(
        [sys.executable, "-m", "repro", "serve", "up",
         "--model", f"resnet={resnet_path}", "--batch", "4",
         "--max-wait-ms", "2", "--workers", "2"],
        input="".join(json.dumps(r) + "\n" for r in requests),
        capture_output=True, text=True, check=True,
        env={**os.environ,
             "PYTHONPATH": os.pathsep.join(
                 [os.path.join(os.path.dirname(__file__), "..", "src")]
                 + os.environ.get("PYTHONPATH", "").split(os.pathsep))})
    responses = [json.loads(line) for line in process.stdout.splitlines()]
    answered = {r["id"]: r for r in responses if "output" in r}
    assert len(answered) == len(requests), process.stderr
    # The pipe-served logits match this process's deployment bitwise when
    # the batch composition matches; spot-check the values are close and
    # the protocol reported real batching.
    for request in requests:
        got = np.asarray(answered[request["id"]]["output"],
                         dtype=np.float32)
        want = resnet_q.predict(
            np.asarray(request["input"],
                       dtype=np.float32)[None])[0]
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-4)
    sizes = {r["batch_size"] for r in answered.values()}
    print(f"[4] `repro serve up` answered {len(answered)} piped requests "
          f"(batch sizes seen: {sorted(sizes)})")
    print("OK: multi-model async serving is bit-exact end to end")


if __name__ == "__main__":
    main()
