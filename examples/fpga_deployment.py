"""End-to-end co-design scenario (paper §V-§VI): characterize a device,
co-train MSQ at the resulting ratio, and simulate the deployment.

This is the workflow a user of the framework would actually run:

  device --characterize--> SP2:fixed ratio --train--> quantized model
         --simulate--> latency / GOPS / utilization report

Run:  python examples/fpga_deployment.py [--device XC7Z020] [--batch 1]
"""

import argparse

import numpy as np

from repro.data import cifar10_like
from repro.experiments.common import classification_loss, eval_classifier
from repro.fpga import characterize_device, simulate_network
from repro.fpga.report import efficiency_metrics, format_table, utilization_bar
from repro.fpga.workloads import WORKLOADS
from repro.models import resnet_tiny
from repro.api import Pipeline, PipelineConfig
from repro.quant import train_fp


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--device", default="XC7Z020")
    parser.add_argument("--batch", type=int, default=1)
    args = parser.parse_args()

    # --- Step 1: characterization (§VI-A) ---
    char = characterize_device(args.device, batch=args.batch)
    design = char.design
    print(f"device {args.device}: fixed:SP2 = {char.ratio_string}, "
          f"peak {char.peak_gops:.0f} GOPS")
    print("utilization:", utilization_bar(char.utilization))
    print("\nsearch trajectory:")
    print(format_table(
        ["Blkout_sp2", "ratio", "LUT util", "peak GOPS", "fits"],
        [[c["block_out_sp2"], c["ratio"], f"{c['lut_utilization']:.0%}",
          f"{c['peak_gops']:.0f}", c["fits"]] for c in char.candidates]))

    # --- Step 2: co-train MSQ at the characterized ratio (Alg. 2) ---
    ratio = char.partition_ratio
    data = cifar10_like(n_train=256, n_test=96)
    model = resnet_tiny(num_classes=10, rng=np.random.default_rng(7))
    train_fp(model, data.make_batches_fn(64), classification_loss,
             epochs=8, lr=1e-2)
    fp_acc = eval_classifier(model, data.x_test, data.y_test)
    config = PipelineConfig(scheme="msq", weight_bits=4, act_bits=4,
                            ratio=f"{ratio.sp2:g}:{ratio.fixed:g}",
                            epochs=4, lr=4e-3)
    Pipeline(config, model=model).fit(data.make_batches_fn(64),
                                      classification_loss)
    msq_acc = eval_classifier(model, data.x_test, data.y_test)
    print(f"\naccuracy: FP {fp_acc:.2%} -> MSQ {msq_acc:.2%}")

    # --- Step 3: simulate deployment on ImageNet-scale workloads ---
    rows = []
    for network in ("resnet18", "mobilenet_v2", "yolov3"):
        perf = simulate_network(WORKLOADS[network](), design)
        eff = efficiency_metrics(design, perf.throughput_gops)
        rows.append([network, f"{perf.throughput_gops:.1f}",
                     f"{perf.latency_ms:.1f}", f"{perf.fps:.1f}",
                     f"{perf.pe_utilization:.0%}",
                     f"{eff['gops_per_dsp']:.3f}",
                     f"{eff['gops_per_klut']:.3f}"])
    print()
    print(format_table(
        ["network", "GOPS", "latency ms", "FPS", "PE util", "GOPS/DSP",
         "GOPS/kLUT"], rows,
        title=f"simulated deployment on {design.describe()}"))


if __name__ == "__main__":
    main()
