"""Quickstart: quantize a small CNN with MSQ and verify the hardware claim.

Walks the paper's full loop in miniature:

1. characterize an FPGA device -> SP2:fixed partition ratio;
2. train a float CNN, then run ADMM+STE quantization-aware training with
   MSQ at that ratio (Algorithms 1 & 2);
3. check accuracy against the float baseline and the per-row scheme split;
4. prove bit-exactness: the classifier head recomputed with integer
   shift-add / integer-multiply kernels matches the float quantized model.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.api import Pipeline, PipelineConfig
from repro.data import cifar10_like
from repro.experiments.common import classification_loss, eval_classifier
from repro.fpga import characterize_device
from repro.fpga.bitexact import float_reference, mixed_gemm_bitexact
from repro.models import resnet_tiny
from repro.quant import train_fp
from repro.quant.msq import MixedSchemeQuantizer
from repro.quant.ste import ActivationQuantizer


def main() -> None:
    # 1. Characterize the FPGA: where does the SP2:fixed ratio come from?
    char = characterize_device("XC7Z045", batch=4)
    print(f"[1] XC7Z045 characterization: ratio fixed:SP2 = "
          f"{char.ratio_string}, peak {char.peak_gops:.0f} GOPS, "
          f"LUT {char.utilization['lut']:.0%} / DSP 100%")

    # 2. Train FP, then quantize with MSQ at the characterized ratio.
    data = cifar10_like(n_train=384, n_test=128)
    model = resnet_tiny(num_classes=10, rng=np.random.default_rng(7))
    train_fp(model, data.make_batches_fn(64), classification_loss,
             epochs=10, lr=1e-2)
    fp_acc = eval_classifier(model, data.x_test, data.y_test)

    ratio = char.partition_ratio
    config = PipelineConfig(scheme="msq", weight_bits=4, act_bits=4,
                            ratio=f"{ratio.sp2:g}:{ratio.fixed:g}", epochs=5,
                            lr=4e-3)
    result = Pipeline(config, model=model).fit(data.make_batches_fn(64),
                                               classification_loss)
    msq_acc = eval_classifier(model, data.x_test, data.y_test)
    print(f"[2] top-1: FP {fp_acc:.2%} -> MSQ 4/4-bit {msq_acc:.2%} "
          f"(delta {100 * (msq_acc - fp_acc):+.2f} points)")
    print(f"[3] SP2 row share across layers: {result.sp2_row_fraction():.2f}"
          f" (target {ratio.sp2_fraction:.2f})")

    # 4. Bit-exactness of the integer datapath on a standalone GEMM.
    rng = np.random.default_rng(0)
    weights = rng.normal(0, 0.2, size=(32, 64))
    quantizer = MixedSchemeQuantizer(bits=4, ratio=f"{ratio.sp2:g}:{ratio.fixed:g}")
    msq = quantizer.quantize(weights)
    act_quant = ActivationQuantizer(bits=4)
    x = np.abs(rng.normal(0, 1.0, size=(8, 64)))
    act_quant.observe(x)
    integer = mixed_gemm_bitexact(x, msq, act_quant)
    reference = float_reference(x, msq, act_quant)
    error = np.max(np.abs(integer["output"] - reference))
    print(f"[4] integer shift-add GEMM vs float quantized GEMM: "
          f"max |error| = {error:.2e} (exact up to float rounding)")
    assert error < 1e-9


if __name__ == "__main__":
    main()
