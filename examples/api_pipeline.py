"""The whole framework through one door: ``repro.api`` only.

Reproduces the serving round trip (PR 1's headline guarantee) for the three
paper model families — a ResNet, a MobileNet-v2 and an LSTM language model —
using nothing but the unified pipeline::

    PipelineConfig -> Pipeline.calibrate (or .fit) -> deploy() -> predict()

and asserts the deployed logits are **bit-identical** to the eager
quantized model (``np.array_equal``, not ``allclose``), per model family.

Run:  python examples/api_pipeline.py
"""

import numpy as np

from repro.api import Pipeline, PipelineConfig
from repro.models import LSTMLanguageModel, mobilenet_v2_tiny, resnet_tiny


def image_batches(rng, n, count):
    return [rng.normal(size=(n, 3, 16, 16)).astype(np.float32)
            for _ in range(count)]


def token_batches(rng, n, count, vocab=40, timesteps=12):
    return [rng.integers(0, vocab, size=(n, timesteps), dtype=np.int64)
            for _ in range(count)]


MODELS = {
    "resnet_tiny": (
        lambda rng: resnet_tiny(num_classes=10, rng=rng), image_batches),
    "mobilenet_v2": (
        lambda rng: mobilenet_v2_tiny(num_classes=10, rng=rng),
        image_batches),
    "lstm_lm": (
        lambda rng: LSTMLanguageModel(vocab_size=40, embed_dim=16,
                                      hidden_size=24, num_layers=2, rng=rng),
        token_batches),
}


def main() -> None:
    config = PipelineConfig(scheme="msq", ratio="2:1", weight_bits=4,
                            act_bits=4, batch=16)
    print(config.describe())
    for name, (make_model, make_batches) in MODELS.items():
        model = make_model(np.random.default_rng(7))
        rng = np.random.default_rng(100)

        pipeline = Pipeline(config, model=model)
        quantized = pipeline.calibrate(make_batches(rng, 8, 2))
        deployment = pipeline.deploy(name=name)

        batch = make_batches(rng, 4, 1)[0]
        served = deployment.predict(batch)
        eager = quantized.predict(batch)
        assert np.array_equal(served, eager), name
        performance = deployment.simulate(batch=1)
        print(f"  {name:14s} bit-identical round trip ok | "
              f"{len(quantized.layer_results)} quantized layers | "
              f"FPGA {performance.latency_ms:.3f} ms/request")


if __name__ == "__main__":
    main()
