"""Table V-style scenario: quantize an object detector and measure mAP.

Trains the YOLO-lite detector on the synthetic shape dataset, quantizes it
with 4-bit MSQ, and reports mAP@0.5 and mAP@(0.5:0.95) before and after —
the detection analogue of the paper's YOLO-v3/COCO experiment.

Run:  python examples/yolo_detection.py [--sizes 32 64]
"""

import argparse

from repro.experiments import get_experiment


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--sizes", nargs="+", type=int, default=[32])
    parser.add_argument("--scale", default="ci", choices=("ci", "full"))
    args = parser.parse_args()

    experiment = get_experiment("table5")
    result = experiment.run(scale=args.scale, image_sizes=tuple(args.sizes))
    print(experiment.format(result))
    for size, metrics in result["results"].items():
        drop = (metrics["Baseline (FP)"]["map@0.5"]
                - metrics["MSQ"]["map@0.5"]) * 100
        print(f"{size}px: mAP@0.5 drop under 4-bit MSQ: {drop:+.1f} points")


if __name__ == "__main__":
    main()
