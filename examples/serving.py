"""Serving: export a quantized model and serve batched requests.

Walks the deployment path the paper's hardware sections imply but never
spell out:

1. quantize a ResNet with MSQ at the FPGA-characterized ratio (here the
   fast post-training path; ADMM training from examples/quickstart.py
   plugs in identically);
2. export it into a frozen artifact — packed integer weight words, row
   partitions, per-row scales, frozen activation ranges;
3. load the artifact into an execution plan and verify the served logits
   are bit-identical to the eager quantized model;
4. drive a micro-batching scheduler and compare per-request eager inference
   against batched serving, with the accelerator cycle model's simulated
   FPGA latency reported alongside wall-clock.

Run:  python examples/serving.py
"""

import os
import tempfile
import time

import numpy as np

from repro.models import resnet_tiny
from repro.serve import (
    BatchScheduler,
    ExecutionPlan,
    InferenceEngine,
    export_model,
    post_training_quantize,
)
from repro.serve.export import eager_forward


def main() -> None:
    rng = np.random.default_rng(0)
    model = resnet_tiny(num_classes=10, rng=np.random.default_rng(7))

    # 1. Quantize: MSQ weights at the paper's XC7Z045 ratio (SP2:fixed 2:1),
    #    activation ranges calibrated on a few batches.
    calibration = [rng.normal(size=(8, 3, 16, 16)).astype(np.float32)
                   for _ in range(4)]
    results = post_training_quantize(model, calibration, ratio="2:1")
    print(f"[1] quantized {len(results)} layers with MSQ (SP2:fixed = 2:1)")

    # 2. Export to a frozen artifact (bit-exactness verified inside).
    sample = rng.normal(size=(4, 3, 16, 16)).astype(np.float32)
    path = os.path.join(tempfile.gettempdir(), "resnet_tiny.npz")
    artifact = export_model(model, sample, layer_results=results,
                            name="resnet_tiny", path=path)
    print(f"[2] exported -> {path} ({artifact.stored_bytes()} bytes, "
          f"{artifact.packed_weight_bytes()} packed, {artifact.num_ops} ops)")

    # 3. Load and re-verify the round trip explicitly.
    plan = ExecutionPlan.load(path)
    assert np.array_equal(plan.forward(sample), eager_forward(model, sample))
    print("[3] served logits are bit-identical to the eager quantized model")

    # 4. Serve 64 requests: eager one-by-one vs micro-batched plan.
    requests = [rng.normal(size=(3, 16, 16)).astype(np.float32)
                for _ in range(64)]
    started = time.perf_counter()
    for request in requests:
        eager_forward(model, request[None])
    eager_seconds = time.perf_counter() - started

    engine = InferenceEngine(plan)
    scheduler = BatchScheduler(engine, max_batch=16)
    for request in requests:
        scheduler.submit(request)
    stats = scheduler.run()
    eager_rps = len(requests) / eager_seconds
    speedup = stats.requests_per_second / eager_rps
    print(f"[4] eager loop: {eager_rps:.0f} req/s | "
          f"batched serving: {stats.requests_per_second:.0f} req/s "
          f"({speedup:.1f}x)")
    print("    " + stats.format().replace("\n", "\n    "))


if __name__ == "__main__":
    main()
