"""Serving through the front door: one pipeline from config to requests.

Walks the deployment path the paper's hardware sections imply but never
spell out, entirely through :mod:`repro.api`:

1. configure: one :class:`PipelineConfig` (MSQ at the FPGA-characterized
   SP2:fixed ratio) drives every stage;
2. quantize: ``calibrate()`` for the fast post-training path (``fit()``
   from examples/quickstart.py plugs in identically);
3. deploy: ``deploy()`` freezes a packed-weight artifact — bit-exactness
   verified at export — and wraps plan + engine + scheduler;
4. serve: compare per-request eager inference against micro-batched
   serving, with the accelerator cycle model's simulated FPGA latency
   reported alongside wall-clock.

Run:  python examples/serving.py
"""

import os
import tempfile
import time

import numpy as np

from repro.api import Deployment, Pipeline, PipelineConfig
from repro.models import resnet_tiny


def main() -> None:
    rng = np.random.default_rng(0)
    model = resnet_tiny(num_classes=10, rng=np.random.default_rng(7))

    # 1+2. Configure and quantize: MSQ weights at the paper's XC7Z045 ratio
    #      (SP2:fixed 2:1), activation ranges calibrated on a few batches.
    config = PipelineConfig(scheme="msq", ratio="2:1", weight_bits=4,
                            act_bits=4, batch=16)
    pipeline = Pipeline(config, model=model)
    quantized = pipeline.calibrate(
        [rng.normal(size=(8, 3, 16, 16)).astype(np.float32)
         for _ in range(4)])
    print(f"[1] {config.describe()}")
    print(f"[2] quantized {len(quantized.layer_results)} layers "
          f"(SP2 row share {quantized.sp2_row_fraction():.2f})")

    # 3. Deploy to a frozen artifact (bit-exactness verified inside).
    path = os.path.join(tempfile.gettempdir(), "resnet_tiny.npz")
    deployment = pipeline.deploy(path=path, name="resnet_tiny")
    artifact = deployment.artifact
    print(f"[3] deployed -> {path} ({artifact.stored_bytes()} bytes, "
          f"{artifact.packed_weight_bytes()} packed, {artifact.num_ops} ops)")

    # Re-verify the round trip explicitly: served == eager, bit for bit.
    sample = rng.normal(size=(4, 3, 16, 16)).astype(np.float32)
    assert np.array_equal(deployment.predict(sample),
                          quantized.predict(sample))
    print("[4] served logits are bit-identical to the eager quantized model")

    # 4. Serve 64 requests: eager one-by-one vs micro-batched deployment.
    requests = [rng.normal(size=(3, 16, 16)).astype(np.float32)
                for _ in range(64)]
    started = time.perf_counter()
    for request in requests:
        quantized.predict(request[None])
    eager_seconds = time.perf_counter() - started

    stats = deployment.serve(requests)
    eager_rps = len(requests) / eager_seconds
    speedup = stats.requests_per_second / eager_rps
    print(f"[5] eager loop: {eager_rps:.0f} req/s | "
          f"batched serving: {stats.requests_per_second:.0f} req/s "
          f"({speedup:.1f}x)")
    print("    " + stats.format().replace("\n", "\n    "))

    # 5. Same artifact through the optimized kernel backend: the compile
    # pipeline verifies it bit-identical to the reference before serving.
    fused = Deployment.load(path, batch=16, backend="fused")
    assert np.array_equal(fused.predict(sample), quantized.predict(sample))
    fused.serve(requests)   # warm-up: binds scratch + verifies batch sizes
    fused_stats = fused.serve(requests)
    print(f"[6] fused backend: {fused_stats.requests_per_second:.0f} req/s "
          f"({fused_stats.requests_per_second / stats.requests_per_second:.2f}x "
          "the reference backend, same bits)")


if __name__ == "__main__":
    main()
