"""Table II-style scenario: compare all quantization schemes on a CNN.

Trains one float ResNet, then quantizes it five ways (P2, Fixed, SP2,
MSQ 1:1, MSQ at the FPGA-characterized optimum) from the same starting
weights, printing the accuracy ladder the paper reports.

Run:  python examples/image_classification.py [--scale full]
"""

import argparse

from repro.experiments import get_experiment


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", default="ci", choices=("ci", "full"))
    args = parser.parse_args()

    experiment = get_experiment("table2")
    result = experiment.run(scale=args.scale)
    print(experiment.format(result))

    # The qualitative shape the paper claims: P2 is the lossy scheme.
    for dataset, per_model in result["results"].items():
        for model_name, rows in per_model.items():
            p2 = rows["P2"]["top1"]
            best_msq = max(rows["MSQ (half/half)"]["top1"],
                           rows["MSQ (optimal)"]["top1"])
            print(f"{model_name} on {dataset}: MSQ beats P2 by "
                  f"{100 * (best_msq - p2):+.2f} points")


if __name__ == "__main__":
    main()
