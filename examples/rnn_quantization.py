"""Table VI-style scenario: quantize RNNs for language, speech, sentiment.

Demonstrates that the same MSQ machinery (row partitioning over the
gate-stacked LSTM/GRU weight matrices, signed activation STE for hidden
states) applies unchanged to recurrent networks.

Run:  python examples/rnn_quantization.py [--tasks ptb timit imdb]
"""

import argparse

from repro.experiments import get_experiment


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--tasks", nargs="+", default=["ptb", "imdb"],
                        choices=["ptb", "timit", "imdb"])
    parser.add_argument("--scale", default="ci", choices=("ci", "full"))
    args = parser.parse_args()

    experiment = get_experiment("table6")
    result = experiment.run(scale=args.scale, tasks=tuple(args.tasks))
    print(experiment.format(result))


if __name__ == "__main__":
    main()
