"""Stateful streaming sessions: chunked GRU inference, bit for bit.

Two clients stream the same GRU speech model *concurrently* in different
chunk sizes — one feeds 3 frames at a time, the other 5 — through one
``ModelServer``. The server holds each session's recurrent state
(``open_session`` / ``submit_stream`` / ``close_session``), coalesces
chunks from distinct sessions into shared time-major micro-batches, and
still reproduces the offline full-sequence outputs exactly::

    np.array_equal(concat(chunk outputs), plan.forward(full sequence))

— not ``allclose``: the serving kernels route every GEMM through the
row-stable matmul primitive, so the bits cannot depend on how the
sequence was chunked or which sessions shared a batch.

Run:  python examples/streaming_sessions.py
"""

import tempfile

import numpy as np

from repro.serve import ModelServer, build_artifact, post_training_quantize
from repro.serve.cli import build_model

CHUNK_SIZES = (3, 5)            # one per concurrent session
TIMESTEPS = 12                  # the zoo GRU's exported sequence length


def export_gru(path: str) -> None:
    model, sample = build_model("gru_speech", seed=0)
    rng = np.random.default_rng(11)
    results = post_training_quantize(model, [sample(rng, 8)])
    build_artifact(model, sample(rng, 4), layer_results=results,
                   name="gru_speech").save(path)


def main() -> None:
    path = tempfile.mktemp(suffix=".npz", prefix="gru_speech_")
    export_gru(path)

    server = ModelServer(workers=0, max_batch=8)
    try:
        server.load("gru", path, backend="fused")
        plan = server.plan("gru")
        rng = np.random.default_rng(5)
        sequences = [rng.normal(size=(TIMESTEPS, 13)).astype(np.float32)
                     for _ in CHUNK_SIZES]
        offline = [plan.stream_outputs(plan.forward(seq[None]), 1)[0]
                   for seq in sequences]

        sessions = [server.open_session("gru") for _ in CHUNK_SIZES]
        futures = [[] for _ in sessions]
        cursors = [0, 0]
        # Interleave the two streams so their chunks genuinely coalesce:
        # each loop turn submits one pending chunk per session.
        while any(cursor < TIMESTEPS for cursor in cursors):
            for index, sid in enumerate(sessions):
                if cursors[index] >= TIMESTEPS:
                    continue
                take = min(CHUNK_SIZES[index],
                           TIMESTEPS - cursors[index])
                chunk = sequences[index][
                    cursors[index]:cursors[index] + take]
                futures[index].append(
                    server.submit_stream("gru", sid, chunk))
                cursors[index] += take
        server.drain()              # workers=0: the caller is the worker

        for index, sid in enumerate(sessions):
            streamed = np.concatenate(
                [future.result(timeout=30.0)
                 for future in futures[index]], axis=0)
            assert np.array_equal(streamed, offline[index]), (
                f"session {sid} diverged from its offline run")
            chunks = server.close_session("gru", sid)
            print(f"session {sid}: {TIMESTEPS} frames in chunks of "
                  f"{CHUNK_SIZES[index]} -> {chunks} chunks, output "
                  f"bit-identical to the offline full-sequence run")

        stats = server.stats()["gru"]
        print(f"served {stats.stream_chunks} stream chunks total; "
              "np.array_equal held for every session")
    finally:
        server.close()


if __name__ == "__main__":
    main()
