"""Characterization search (§V-A, §VI-A): must rediscover the paper's
optimal ratios and respect the budget constraints."""

import pytest

from repro.errors import ConfigurationError
from repro.fpga.characterize import characterize_device
from repro.fpga.resources import design_utilization


class TestOptimaRediscovery:
    def test_xc7z020_finds_1_to_1_5(self):
        result = characterize_device("XC7Z020", batch=1)
        assert result.ratio_string == "1:1.5"
        assert result.design.block_out_sp2 == 24

    def test_xc7z045_finds_1_to_2(self):
        result = characterize_device("XC7Z045", batch=4)
        assert result.ratio_string == "1:2"
        assert result.design.block_out_sp2 == 32

    def test_peak_matches_table7(self):
        assert characterize_device("XC7Z020", batch=1).peak_gops == \
            pytest.approx(132.0, rel=0.01)
        assert characterize_device("XC7Z045", batch=4).peak_gops == \
            pytest.approx(624.0, rel=0.01)


class TestConstraints:
    def test_lut_under_cap(self):
        result = characterize_device("XC7Z020", batch=1, lut_cap=0.8)
        assert result.utilization["lut"] <= 0.8

    def test_dsp_always_full(self):
        result = characterize_device("XC7Z045", batch=4)
        assert result.utilization["dsp"] == 1.0

    def test_tighter_cap_smaller_sp2(self):
        loose = characterize_device("XC7Z020", batch=1, lut_cap=0.85)
        tight = characterize_device("XC7Z020", batch=1, lut_cap=0.55)
        assert tight.design.block_out_sp2 < loose.design.block_out_sp2

    def test_candidates_trajectory_monotone(self):
        result = characterize_device("XC7Z020", batch=1)
        luts = [c["lut_utilization"] for c in result.candidates]
        assert all(b > a for a, b in zip(luts, luts[1:]))
        # The last examined candidate is the first that does not fit.
        assert not result.candidates[-1]["fits"]

    def test_partition_ratio_matches_design(self):
        result = characterize_device("XC7Z045", batch=4)
        assert result.partition_ratio.sp2_fraction == pytest.approx(2 / 3)

    def test_low_lut_devices_get_smaller_ratio(self):
        """ZU5CG has ~94 LUT/DSP (vs 242): characterization must choose a
        much smaller SP2 share — Fig. 2's motivating argument."""
        rich = characterize_device("XC7Z020", batch=1)
        poor = characterize_device("XCZU5CG", batch=1)
        rich_ratio = rich.design.block_out_sp2 / rich.design.block_out_fixed
        poor_ratio = poor.design.block_out_sp2 / max(
            poor.design.block_out_fixed, 1)
        assert poor_ratio < rich_ratio

    def test_invalid_cap(self):
        with pytest.raises(ConfigurationError):
            characterize_device("XC7Z020", lut_cap=0.0)

    def test_8bit_characterization_runs(self):
        result = characterize_device("XC7Z020", batch=1, weight_bits=8)
        assert result.design.block_out_fixed == 8
