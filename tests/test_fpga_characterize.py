"""Characterization search (§V-A, §VI-A): must rediscover the paper's
optimal ratios and respect the budget constraints."""

import pytest

from repro.errors import ConfigurationError
from repro.fpga.characterize import characterize_device
from repro.fpga.resources import design_utilization


class TestOptimaRediscovery:
    def test_xc7z020_finds_1_to_1_5(self):
        result = characterize_device("XC7Z020", batch=1)
        assert result.ratio_string == "1:1.5"
        assert result.design.block_out_sp2 == 24

    def test_xc7z045_finds_1_to_2(self):
        result = characterize_device("XC7Z045", batch=4)
        assert result.ratio_string == "1:2"
        assert result.design.block_out_sp2 == 32

    def test_peak_matches_table7(self):
        assert characterize_device("XC7Z020", batch=1).peak_gops == \
            pytest.approx(132.0, rel=0.01)
        assert characterize_device("XC7Z045", batch=4).peak_gops == \
            pytest.approx(624.0, rel=0.01)


class TestConstraints:
    def test_lut_under_cap(self):
        result = characterize_device("XC7Z020", batch=1, lut_cap=0.8)
        assert result.utilization["lut"] <= 0.8

    def test_dsp_always_full(self):
        result = characterize_device("XC7Z045", batch=4)
        assert result.utilization["dsp"] == 1.0

    def test_tighter_cap_smaller_sp2(self):
        loose = characterize_device("XC7Z020", batch=1, lut_cap=0.85)
        tight = characterize_device("XC7Z020", batch=1, lut_cap=0.55)
        assert tight.design.block_out_sp2 < loose.design.block_out_sp2

    def test_candidates_trajectory_monotone(self):
        result = characterize_device("XC7Z020", batch=1)
        luts = [c["lut_utilization"] for c in result.candidates]
        assert all(b > a for a, b in zip(luts, luts[1:]))
        # The last examined candidate is the first that does not fit.
        assert not result.candidates[-1]["fits"]

    def test_partition_ratio_matches_design(self):
        result = characterize_device("XC7Z045", batch=4)
        assert result.partition_ratio.sp2_fraction == pytest.approx(2 / 3)

    def test_low_lut_devices_get_smaller_ratio(self):
        """ZU5CG has ~94 LUT/DSP (vs 242): characterization must choose a
        much smaller SP2 share — Fig. 2's motivating argument."""
        rich = characterize_device("XC7Z020", batch=1)
        poor = characterize_device("XCZU5CG", batch=1)
        rich_ratio = rich.design.block_out_sp2 / rich.design.block_out_fixed
        poor_ratio = poor.design.block_out_sp2 / max(
            poor.design.block_out_fixed, 1)
        assert poor_ratio < rich_ratio

    def test_invalid_cap(self):
        with pytest.raises(ConfigurationError):
            characterize_device("XC7Z020", lut_cap=0.0)

    def test_8bit_characterization_runs(self):
        result = characterize_device("XC7Z020", batch=1, weight_bits=8)
        assert result.design.block_out_fixed == 8


class TestBatchDependentSearch:
    """The §VI-A walk at different batch lane counts: SP2 costs grow per
    batch lane, so the affordable SP2 share shrinks as batch grows."""

    def test_more_batch_lanes_fewer_sp2_columns(self):
        one = characterize_device("XC7Z045", batch=1)
        four = characterize_device("XC7Z045", batch=4)
        # Absolute columns shrink: each column costs Bat x Blk_in MAC
        # lanes, each lane pricier per the batch-dependent curves.
        assert four.design.block_out_sp2 < one.design.block_out_sp2

    def test_every_batch_stays_under_cap(self):
        for batch in (1, 2, 4, 8):
            result = characterize_device("XC7Z045", batch=batch)
            assert result.utilization["lut"] <= 0.80 + 1e-9
            assert result.utilization["bram36"] <= 1.0 + 1e-9
            assert result.utilization["ff"] <= 1.0 + 1e-9

    def test_fixed_core_shrinks_on_bram_poor_parts(self):
        """XCZU5CG (4.2 BRAM-Kb/DSP in Fig. 2) cannot buffer the full-DSP
        fixed core; the search must shrink it below the DSP bound."""
        from repro.fpga.devices import get_device
        from repro.fpga.resources import max_block_out_fixed

        result = characterize_device("XCZU5CG", batch=1)
        dsp_bound = max_block_out_fixed(get_device("XCZU5CG"), 1, 16)
        assert result.design.block_out_fixed < dsp_bound


class TestResolveDesign:
    def test_auto_matches_characterization(self):
        from repro.fpga.characterize import resolve_design

        design = resolve_design("auto:XC7Z020")
        reference = characterize_device("XC7Z020", batch=1).design
        assert design.block_out_sp2 == reference.block_out_sp2
        assert design.name == "auto:XC7Z020@1"

    def test_auto_is_memoized(self):
        from repro.fpga.characterize import resolve_design

        assert resolve_design("auto:zu3eg") is resolve_design("auto:zu3eg")

    def test_auto_batch_suffix(self):
        from repro.fpga.characterize import resolve_design

        design = resolve_design("auto:XC7Z045@4")
        assert design.batch == 4
        assert (design.block_out_fixed, design.block_out_sp2) == (16, 32)
