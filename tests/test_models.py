"""Workload models: structure, shapes, losses, detection decoding."""

import numpy as np
import pytest

from repro import nn
from repro.models import (
    GRUSpeechModel,
    LSTMLanguageModel,
    LSTMSentimentClassifier,
    MobileNetV2,
    ResNet,
    mobilenet_v2_tiny,
    resnet18_cifar,
    resnet_tiny,
    yolo_lite,
)
from repro.models.yolo import box_iou, _nms
from repro.quant import collect_quantizable
from repro.tensor import Tensor


class TestResNet:
    def test_forward_shape(self, rng):
        model = resnet_tiny(num_classes=7)
        out = model(Tensor(rng.normal(size=(2, 3, 16, 16)).astype(np.float32)))
        assert out.shape == (2, 7)

    def test_resnet18_layout_has_8_blocks(self):
        model = resnet18_cifar(base_width=8)
        from repro.models.resnet import BasicBlock

        blocks = [m for m in model.modules() if isinstance(m, BasicBlock)]
        assert len(blocks) == 8  # [2, 2, 2, 2]

    def test_downsample_only_on_stride_or_width_change(self):
        model = resnet_tiny(base_width=8)
        from repro.models.resnet import BasicBlock

        blocks = [m for m in model.modules() if isinstance(m, BasicBlock)]
        assert isinstance(blocks[0].downsample, nn.Identity)
        assert not isinstance(blocks[1].downsample, nn.Identity)

    def test_gradients_flow_everywhere(self, rng):
        model = resnet_tiny()
        out = model(Tensor(rng.normal(size=(2, 3, 16, 16)).astype(np.float32)))
        nn.cross_entropy(out, np.array([0, 1])).backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, name

    def test_quantizable_layer_inventory(self):
        model = resnet_tiny()
        names = [name for name, _ in collect_quantizable(model)]
        assert "conv1.weight" in names
        assert "fc.weight" in names


class TestMobileNet:
    def test_forward_shape(self, rng):
        model = mobilenet_v2_tiny(num_classes=5)
        out = model(Tensor(rng.normal(size=(2, 3, 16, 16)).astype(np.float32)))
        assert out.shape == (2, 5)

    def test_has_depthwise_convs(self):
        model = mobilenet_v2_tiny()
        depthwise = [m for m in model.modules()
                     if isinstance(m, nn.Conv2d) and m.groups > 1]
        assert len(depthwise) >= 4
        for conv in depthwise:
            assert conv.groups == conv.in_channels

    def test_residual_only_when_shapes_match(self):
        from repro.models.mobilenet import InvertedResidual

        model = mobilenet_v2_tiny()
        blocks = [m for m in model.modules()
                  if isinstance(m, InvertedResidual)]
        assert any(b.use_residual for b in blocks)
        assert any(not b.use_residual for b in blocks)

    def test_projection_layer_is_linear(self):
        """The bottleneck projection has no activation (linear bottleneck)."""
        from repro.models.mobilenet import InvertedResidual

        block = InvertedResidual(8, 8, 1, 4)
        kinds = [type(m).__name__ for m in block.project.children()]
        assert "ReLU6" not in kinds


class TestYolo:
    def _data(self, rng, n=4):
        images = rng.normal(size=(n, 3, 32, 32)).astype(np.float32)
        targets = [np.array([[0, 0.5, 0.5, 0.3, 0.3]]) for _ in range(n)]
        return images, targets

    def test_head_channels(self):
        model = yolo_lite(num_classes=3)
        assert model.head.out_channels == 2 * (5 + 3)

    def test_grid_downsample_by_8(self, rng):
        model = yolo_lite()
        out = model(Tensor(rng.normal(size=(1, 3, 32, 32)).astype(np.float32)))
        assert out.shape[-1] == 4
        out = model(Tensor(rng.normal(size=(1, 3, 64, 64)).astype(np.float32)))
        assert out.shape[-1] == 8

    def test_loss_finite_and_differentiable(self, rng):
        model = yolo_lite()
        images, targets = self._data(rng)
        loss = model.loss(Tensor(images), targets)
        assert np.isfinite(loss.item())
        loss.backward()
        assert model.head.weight.grad is not None

    def test_loss_with_no_objects(self, rng):
        model = yolo_lite()
        images = rng.normal(size=(2, 3, 32, 32)).astype(np.float32)
        loss = model.loss(Tensor(images), [np.zeros((0, 5))] * 2)
        assert np.isfinite(loss.item())

    def test_build_targets_assignment(self):
        model = yolo_lite()
        built = model.build_targets(
            [np.array([[1, 0.55, 0.3, 0.4, 0.4]])], grid=4, batch=1)
        assert built["obj"].sum() == 1
        assert built["class_targets"][0] == 1
        # Anchor 1 (0.45, 0.45) is the best match for a 0.4 box.
        k = built["assigned_idx"][0]
        anchor = (k // (4 * 4)) % 2
        assert anchor == 1

    def test_detect_returns_normalized_boxes(self, rng):
        model = yolo_lite()
        images, _ = self._data(rng, n=2)
        detections = model.detect(Tensor(images), conf_threshold=0.0,
                                  max_detections=5)
        assert len(detections) == 2
        for det in detections:
            assert det["boxes"].shape[1] == 4
            assert len(det["scores"]) <= 5


class TestBoxOps:
    def test_iou_identity(self):
        box = np.array([[0.0, 0.0, 1.0, 1.0]])
        assert box_iou(box, box)[0, 0] == pytest.approx(1.0)

    def test_iou_disjoint(self):
        a = np.array([[0.0, 0.0, 0.4, 0.4]])
        b = np.array([[0.6, 0.6, 1.0, 1.0]])
        assert box_iou(a, b)[0, 0] == 0.0

    def test_iou_half_overlap(self):
        a = np.array([[0.0, 0.0, 1.0, 1.0]])
        b = np.array([[0.5, 0.0, 1.5, 1.0]])
        assert box_iou(a, b)[0, 0] == pytest.approx(1 / 3)

    def test_iou_symmetry(self, rng):
        a = np.sort(rng.uniform(0, 1, size=(5, 4)), axis=1)
        b = np.sort(rng.uniform(0, 1, size=(7, 4)), axis=1)
        assert np.allclose(box_iou(a, b), box_iou(b, a).T)

    def test_nms_suppresses_duplicates(self):
        boxes = np.array([[0, 0, 1, 1], [0.05, 0, 1, 1], [2, 2, 3, 3]])
        scores = np.array([0.9, 0.8, 0.7])
        keep = _nms(boxes, scores, iou_threshold=0.5)
        assert list(keep) == [0, 2]

    def test_nms_keeps_order_by_score(self):
        boxes = np.array([[0, 0, 1, 1], [2, 2, 3, 3]])
        scores = np.array([0.2, 0.9])
        keep = _nms(boxes, scores, iou_threshold=0.5)
        assert list(keep) == [1, 0]


class TestRNNModels:
    def test_language_model_shapes(self, rng):
        model = LSTMLanguageModel(vocab_size=20, embed_dim=8, hidden_size=12)
        tokens = rng.integers(0, 20, size=(3, 5))
        out = model(tokens)
        assert out.shape == (15, 20)

    def test_speech_model_shapes(self, rng):
        model = GRUSpeechModel(input_dim=13, hidden_size=12, num_phonemes=9)
        frames = Tensor(rng.normal(size=(2, 6, 13)).astype(np.float32))
        assert model(frames).shape == (12, 9)
        assert model.frame_predictions(frames).shape == (2, 6)

    def test_sentiment_model_shapes(self, rng):
        model = LSTMSentimentClassifier(vocab_size=30, embed_dim=8,
                                        hidden_size=12, num_layers=2)
        tokens = rng.integers(0, 30, size=(4, 7))
        assert model(tokens).shape == (4, 2)

    def test_rnn_models_are_quantizable(self):
        model = LSTMLanguageModel(vocab_size=10, embed_dim=4, hidden_size=6)
        names = [name for name, _ in collect_quantizable(model)]
        # LSTM gate matrices + decoder, but NOT the embedding.
        assert any("weight_ih" in name for name in names)
        assert "decoder.weight" in names
        assert not any("embedding" in name for name in names)
