"""Convolution/pooling kernels: reference forward values and gradients."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensor import Tensor, avg_pool2d, conv2d, global_avg_pool2d, max_pool2d
from repro.tensor.tensor import gradcheck


def brute_force_conv(x, w, stride=1, padding=0):
    n, c, h, width = x.shape
    oc, _, kh, kw = w.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding),
                       (padding, padding)))
    oh = (x.shape[2] - kh) // stride + 1
    ow = (x.shape[3] - kw) // stride + 1
    out = np.zeros((n, oc, oh, ow))
    for b in range(n):
        for o in range(oc):
            for i in range(oh):
                for j in range(ow):
                    patch = x[b, :, i * stride:i * stride + kh,
                              j * stride:j * stride + kw]
                    out[b, o, i, j] = (patch * w[o]).sum()
    return out


class TestConvForward:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 0), (2, 1)])
    def test_matches_brute_force(self, rng, stride, padding):
        x = rng.normal(size=(2, 3, 7, 7))
        w = rng.normal(size=(4, 3, 3, 3))
        out = conv2d(Tensor(x), Tensor(w), stride=stride, padding=padding)
        ref = brute_force_conv(x, w, stride, padding)
        assert np.allclose(out.data, ref, atol=1e-10)

    def test_bias_added_per_channel(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        w = rng.normal(size=(3, 2, 1, 1))
        b = np.array([1.0, -2.0, 0.5])
        out = conv2d(Tensor(x), Tensor(w), Tensor(b))
        no_bias = conv2d(Tensor(x), Tensor(w))
        assert np.allclose(out.data - no_bias.data,
                           b.reshape(1, 3, 1, 1), atol=1e-12)

    def test_grouped_equals_blockwise(self, rng):
        x = rng.normal(size=(2, 4, 5, 5))
        w = rng.normal(size=(6, 2, 3, 3))
        out = conv2d(Tensor(x), Tensor(w), padding=1, groups=2)
        ref_a = brute_force_conv(x[:, :2], w[:3], padding=1)
        ref_b = brute_force_conv(x[:, 2:], w[3:], padding=1)
        assert np.allclose(out.data, np.concatenate([ref_a, ref_b], axis=1),
                           atol=1e-10)

    def test_depthwise_shape(self, rng):
        x = rng.normal(size=(1, 8, 6, 6))
        w = rng.normal(size=(8, 1, 3, 3))
        out = conv2d(Tensor(x), Tensor(w), padding=1, groups=8)
        assert out.shape == (1, 8, 6, 6)

    def test_channel_mismatch_raises(self, rng):
        x = Tensor(rng.normal(size=(1, 3, 5, 5)))
        w = Tensor(rng.normal(size=(4, 2, 3, 3)))
        with pytest.raises(ShapeError):
            conv2d(x, w)


class TestConvGradients:
    def test_gradcheck_basic(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 6, 6)), requires_grad=True)
        w = Tensor(rng.normal(size=(4, 3, 3, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        assert gradcheck(
            lambda x, w, b: conv2d(x, w, b, stride=2, padding=1).sum(),
            [x, w, b])

    def test_gradcheck_grouped(self, rng):
        x = Tensor(rng.normal(size=(2, 4, 5, 5)), requires_grad=True)
        w = Tensor(rng.normal(size=(6, 2, 3, 3)), requires_grad=True)
        assert gradcheck(
            lambda x, w: conv2d(x, w, padding=1, groups=2).sum(), [x, w])

    def test_gradcheck_1x1(self, rng):
        x = Tensor(rng.normal(size=(2, 5, 4, 4)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 5, 1, 1)), requires_grad=True)
        assert gradcheck(lambda x, w: conv2d(x, w).sum(), [x, w])


class TestPooling:
    def test_max_pool_values(self):
        x = Tensor(np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4))
        out = max_pool2d(x, 2)
        assert np.allclose(out.data.reshape(-1), [5, 7, 13, 15])

    def test_max_pool_gradient_to_max_only(self):
        x = Tensor(np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4),
                   requires_grad=True)
        max_pool2d(x, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1
        assert np.allclose(x.grad.reshape(4, 4), expected)

    def test_max_pool_padding_ignores_pad_values(self, rng):
        x = Tensor(-np.abs(rng.normal(size=(1, 1, 4, 4))) - 1.0)
        out = max_pool2d(x, 3, stride=2, padding=1)
        # All inputs are negative; -inf padding must never win.
        assert np.all(np.isfinite(out.data))
        assert np.all(out.data < 0)

    def test_avg_pool_values(self):
        x = Tensor(np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4))
        out = avg_pool2d(x, 2)
        assert np.allclose(out.data.reshape(-1), [2.5, 4.5, 10.5, 12.5])

    def test_avg_pool_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 6, 6)), requires_grad=True)
        m = Tensor(rng.normal(size=(2, 3, 3, 3)))
        assert gradcheck(lambda x: (avg_pool2d(x, 2) * m).sum(), [x])

    def test_max_pool_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(2, 2, 6, 6)), requires_grad=True)
        m = Tensor(rng.normal(size=(2, 2, 3, 3)))
        assert gradcheck(lambda x: (max_pool2d(x, 2) * m).sum(), [x])

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(2, 5, 3, 3))
        out = global_avg_pool2d(Tensor(x))
        assert out.shape == (2, 5)
        assert np.allclose(out.data, x.mean(axis=(2, 3)), atol=1e-6)
