"""Evaluation metrics: top-k, mAP, perplexity, PER."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.metrics import (
    accuracy,
    average_precision,
    collapse_repeats,
    edit_distance,
    mean_average_precision,
    perplexity,
    phoneme_error_rate,
    topk_accuracy,
)


class TestTopK:
    def test_top1(self):
        logits = np.array([[0.1, 0.9], [0.8, 0.2]])
        assert accuracy(logits, np.array([1, 0])) == 1.0
        assert accuracy(logits, np.array([0, 0])) == 0.5

    def test_top5_contains_target(self):
        logits = np.arange(10, dtype=float).reshape(1, 10)
        assert topk_accuracy(logits, np.array([5]), k=5) == 1.0
        assert topk_accuracy(logits, np.array([4]), k=5) == 0.0

    def test_k_capped_at_classes(self):
        logits = np.array([[0.2, 0.8]])
        assert topk_accuracy(logits, np.array([0]), k=10) == 1.0

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            topk_accuracy(np.zeros(3), np.zeros(3))
        with pytest.raises(ShapeError):
            topk_accuracy(np.zeros((3, 2)), np.zeros(4))


class TestAveragePrecision:
    def _det(self, boxes, scores, classes):
        return {"boxes": np.asarray(boxes, dtype=float).reshape(-1, 4),
                "scores": np.asarray(scores, dtype=float),
                "classes": np.asarray(classes, dtype=int)}

    def test_perfect_detection(self):
        gt = [np.array([[0, 0.5, 0.5, 0.2, 0.2]])]
        det = [self._det([[0.4, 0.4, 0.6, 0.6]], [0.9], [0])]
        assert average_precision(det, gt, 0) == pytest.approx(1.0)

    def test_wrong_class_scores_zero(self):
        gt = [np.array([[1, 0.5, 0.5, 0.2, 0.2]])]
        det = [self._det([[0.4, 0.4, 0.6, 0.6]], [0.9], [0])]
        assert average_precision(det, gt, 1) == 0.0

    def test_duplicate_detections_count_once(self):
        gt = [np.array([[0, 0.5, 0.5, 0.2, 0.2]])]
        det = [self._det([[0.4, 0.4, 0.6, 0.6], [0.41, 0.4, 0.61, 0.6]],
                         [0.9, 0.8], [0, 0])]
        ap = average_precision(det, gt, 0)
        assert ap == pytest.approx(1.0)  # duplicate is FP at higher recall? no
        # precision envelope keeps AP at 1.0 since TP comes first.

    def test_low_ranked_fp_does_not_hurt(self):
        gt = [np.array([[0, 0.5, 0.5, 0.2, 0.2]])]
        det = [self._det([[0.4, 0.4, 0.6, 0.6], [0, 0, 0.05, 0.05]],
                         [0.9, 0.1], [0, 0])]
        assert average_precision(det, gt, 0) == pytest.approx(1.0)

    def test_high_ranked_fp_halves(self):
        gt = [np.array([[0, 0.5, 0.5, 0.2, 0.2]])]
        det = [self._det([[0, 0, 0.05, 0.05], [0.4, 0.4, 0.6, 0.6]],
                         [0.9, 0.1], [0, 0])]
        assert average_precision(det, gt, 0) == pytest.approx(0.5)

    def test_stricter_iou_fails_loose_box(self):
        gt = [np.array([[0, 0.5, 0.5, 0.2, 0.2]])]
        # Slightly shifted box: IoU ~ 0.75 vs the GT box.
        det = [self._det([[0.41, 0.41, 0.62, 0.62]], [0.9], [0])]
        assert average_precision(det, gt, 0, iou_threshold=0.5) > 0
        assert average_precision(det, gt, 0, iou_threshold=0.9) == 0.0

    def test_map_averages_classes_and_thresholds(self):
        gt = [np.array([[0, 0.5, 0.5, 0.2, 0.2], [1, 0.2, 0.2, 0.2, 0.2]])]
        det = [self._det([[0.4, 0.4, 0.6, 0.6]], [0.9], [0])]
        result = mean_average_precision(det, gt, num_classes=2,
                                        iou_thresholds=(0.5,))
        assert result["map"] == pytest.approx(0.5)

    def test_no_gt_no_detections(self):
        assert average_precision([], [], 0) == 0.0


class TestPerplexity:
    def test_uniform_equals_vocab(self):
        logits = np.zeros((100, 7))
        targets = np.random.default_rng(0).integers(0, 7, size=100)
        assert perplexity(logits, targets) == pytest.approx(7.0)

    def test_perfect_prediction_is_one(self):
        targets = np.array([0, 1, 2])
        logits = np.eye(3) * 100.0
        assert perplexity(logits, targets) == pytest.approx(1.0, abs=1e-6)

    def test_worse_model_higher_ppl(self, rng):
        targets = rng.integers(0, 5, size=50)
        good = np.eye(5)[targets] * 3.0
        bad = np.zeros((50, 5))
        assert perplexity(good, targets) < perplexity(bad, targets)

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            perplexity(np.zeros((3, 2)), np.zeros(4, dtype=int))


class TestEditDistance:
    def test_known_cases(self):
        assert edit_distance([1, 2, 3], [1, 2, 3]) == 0
        assert edit_distance([1, 2, 3], [1, 3]) == 1          # deletion
        assert edit_distance([1, 3], [1, 2, 3]) == 1          # insertion
        assert edit_distance([1, 2, 3], [1, 9, 3]) == 1       # substitution
        assert edit_distance([], [1, 2]) == 2
        assert edit_distance([1, 2], []) == 2

    @given(st.lists(st.integers(0, 5), max_size=12),
           st.lists(st.integers(0, 5), max_size=12))
    @settings(max_examples=100, deadline=None)
    def test_metric_properties(self, a, b):
        d = edit_distance(a, b)
        assert d == edit_distance(b, a)                 # symmetry
        assert d >= abs(len(a) - len(b))                # length bound
        assert d <= max(len(a), len(b))                 # upper bound
        assert (d == 0) == (a == b)                     # identity

    @given(st.lists(st.integers(0, 3), max_size=8),
           st.lists(st.integers(0, 3), max_size=8),
           st.lists(st.integers(0, 3), max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= (edit_distance(a, b)
                                       + edit_distance(b, c))


class TestPER:
    def test_collapse_repeats(self):
        assert np.array_equal(collapse_repeats(np.array([1, 1, 2, 2, 1])),
                              [1, 2, 1])
        assert collapse_repeats(np.array([])).size == 0

    def test_perfect_frames_zero_per(self):
        frames = np.array([[0, 0, 1, 1, 2]])
        refs = [np.array([0, 1, 2])]
        assert phoneme_error_rate(frames, refs) == 0.0

    def test_one_substitution(self):
        frames = np.array([[0, 0, 3, 3, 2]])
        refs = [np.array([0, 1, 2])]
        assert phoneme_error_rate(frames, refs) == pytest.approx(1 / 3)

    def test_multiple_utterances_weighted(self):
        frames = np.array([[0, 1], [5, 5]])
        refs = [np.array([0, 1]), np.array([5, 6])]
        # utterance 1: 0 errors / 2; utterance 2: 1 deletion / 2.
        assert phoneme_error_rate(frames, refs) == pytest.approx(0.25)
