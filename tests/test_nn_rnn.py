"""RNN cells and sequence wrappers."""

import numpy as np

from repro import nn
from repro.tensor import Tensor


class TestLSTMCell:
    def test_output_shapes(self, rng):
        cell = nn.LSTMCell(5, 7)
        h = Tensor(np.zeros((3, 7), dtype=np.float32))
        c = Tensor(np.zeros((3, 7), dtype=np.float32))
        x = Tensor(rng.normal(size=(3, 5)).astype(np.float32))
        h2, c2 = cell(x, (h, c))
        assert h2.shape == (3, 7) and c2.shape == (3, 7)

    def test_gate_stacked_weight_shapes(self):
        cell = nn.LSTMCell(5, 7)
        assert cell.weight_ih.shape == (28, 5)
        assert cell.weight_hh.shape == (28, 7)

    def test_forget_gate_bias_behaviour(self, rng):
        """With saturated forget gate the cell state persists."""
        cell = nn.LSTMCell(2, 3)
        cell.bias_ih.data = np.zeros(12, dtype=np.float32)
        cell.bias_hh.data = np.zeros(12, dtype=np.float32)
        cell.bias_ih.data[3:6] = 100.0   # forget gate -> 1
        cell.bias_ih.data[0:3] = -100.0  # input gate -> 0
        cell.weight_ih.data *= 0
        cell.weight_hh.data *= 0
        c0 = Tensor(np.ones((1, 3), dtype=np.float32))
        h0 = Tensor(np.zeros((1, 3), dtype=np.float32))
        x = Tensor(rng.normal(size=(1, 2)).astype(np.float32))
        _, c1 = cell(x, (h0, c0))
        assert np.allclose(c1.data, 1.0, atol=1e-5)

    def test_gradients_reach_all_parameters(self, rng):
        cell = nn.LSTMCell(4, 6)
        h = Tensor(np.zeros((2, 6), dtype=np.float32))
        c = Tensor(np.zeros((2, 6), dtype=np.float32))
        x = Tensor(rng.normal(size=(2, 4)).astype(np.float32))
        h2, c2 = cell(x, (h, c))
        (h2.sum() + c2.sum()).backward()
        for param in cell.parameters():
            assert param.grad is not None


class TestGRUCell:
    def test_output_shape_and_range(self, rng):
        cell = nn.GRUCell(5, 7)
        h = Tensor(np.zeros((3, 7), dtype=np.float32))
        x = Tensor(rng.normal(size=(3, 5)).astype(np.float32))
        out = cell(x, h)
        assert out.shape == (3, 7)
        # GRU output is a convex combination of tanh output and prev state.
        assert np.all(np.abs(out.data) <= 1.0 + 1e-5)

    def test_weight_shapes(self):
        cell = nn.GRUCell(5, 7)
        assert cell.weight_ih.shape == (21, 5)
        assert cell.weight_hh.shape == (21, 7)


class TestSequenceWrappers:
    def test_lstm_output_shape(self, rng):
        lstm = nn.LSTM(5, 8, num_layers=2)
        x = Tensor(rng.normal(size=(3, 6, 5)).astype(np.float32))
        out, state = lstm(x)
        assert out.shape == (3, 6, 8)
        assert len(state) == 2
        assert state[0][0].shape == (3, 8)

    def test_lstm_state_threading(self, rng):
        """Running two halves with carried state == running the whole."""
        lstm = nn.LSTM(3, 4)
        x = rng.normal(size=(2, 6, 3)).astype(np.float32)
        full, _ = lstm(Tensor(x))
        first, state = lstm(Tensor(x[:, :3]))
        second, _ = lstm(Tensor(x[:, 3:]), state)
        joined = np.concatenate([first.data, second.data], axis=1)
        assert np.allclose(joined, full.data, atol=1e-5)

    def test_gru_output_shape(self, rng):
        gru = nn.GRU(5, 8, num_layers=2)
        x = Tensor(rng.normal(size=(3, 4, 5)).astype(np.float32))
        out, state = gru(x)
        assert out.shape == (3, 4, 8)
        assert len(state) == 2

    def test_bptt_gradient_flow(self, rng):
        lstm = nn.LSTM(3, 4)
        x = Tensor(rng.normal(size=(2, 5, 3)).astype(np.float32),
                   requires_grad=True)
        out, _ = lstm(x)
        out.sum().backward()
        assert x.grad is not None
        assert lstm._cell(0).weight_hh.grad is not None
        # Early timesteps must receive gradient (no truncation).
        assert np.abs(x.grad[:, 0]).sum() > 0

    def test_lstm_learns_memory_task(self):
        """Classify by the FIRST token — requires carrying state."""
        gen = np.random.default_rng(3)
        n, steps = 128, 6
        first = gen.integers(0, 2, size=n)
        x = gen.normal(0, 0.1, size=(n, steps, 2)).astype(np.float32)
        x[:, 0, 0] = first * 2.0 - 1.0
        lstm = nn.LSTM(2, 8, rng=gen)
        head = nn.Linear(8, 2, rng=gen)
        params = lstm.parameters() + head.parameters()
        opt = nn.SGD(params, lr=0.3, momentum=0.9)
        for _ in range(60):
            out, _ = lstm(Tensor(x))
            logits = head(out[:, steps - 1])
            loss = nn.cross_entropy(logits, first)
            opt.zero_grad()
            loss.backward()
            opt.step()
        out, _ = lstm(Tensor(x))
        acc = (head(out[:, steps - 1]).data.argmax(1) == first).mean()
        assert acc > 0.95
