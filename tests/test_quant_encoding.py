"""Hardware encodings: exact round trips and bit packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuantizationError
from repro.quant import (
    Scheme,
    SchemeQuantizer,
    decode_fixed,
    decode_p2,
    decode_sp2,
    encode_fixed,
    encode_p2,
    encode_sp2,
    pack_sp2,
    unpack_sp2,
)
from repro.quant.schemes import fixed_point_levels, power_of_2_levels, sp2_levels


class TestFixedEncoding:
    def test_roundtrip_all_levels(self):
        levels = fixed_point_levels(4)
        codes = encode_fixed(levels, 4)
        assert np.allclose(decode_fixed(codes, 4), levels)

    def test_codes_are_small_integers(self):
        codes = encode_fixed(fixed_point_levels(4), 4)
        assert codes.min() == -7 and codes.max() == 7

    def test_alpha_scaling(self):
        codes = encode_fixed(np.array([1.0]), 4)
        assert decode_fixed(codes, 4, alpha=0.5)[0] == 0.5

    def test_non_level_rejected(self):
        with pytest.raises(QuantizationError):
            encode_fixed(np.array([0.123456]), 4)

    @given(bits=st.integers(min_value=2, max_value=8))
    @settings(deadline=None)
    def test_roundtrip_any_bitwidth(self, bits):
        levels = fixed_point_levels(bits)
        assert np.allclose(decode_fixed(encode_fixed(levels, bits), bits),
                           levels)


class TestP2Encoding:
    def test_roundtrip_all_levels(self):
        levels = power_of_2_levels(4)
        sign, codes = encode_p2(levels, 4)
        assert np.allclose(decode_p2(sign, codes), levels)

    def test_zero_has_code_zero(self):
        sign, codes = encode_p2(np.array([0.0]), 4)
        assert codes[0] == 0

    def test_non_power_rejected(self):
        with pytest.raises(QuantizationError):
            encode_p2(np.array([0.3]), 4)


class TestSP2Encoding:
    def test_roundtrip_all_levels(self):
        levels = sp2_levels(4)
        code = encode_sp2(levels, 2, 1)
        assert np.allclose(decode_sp2(code), levels)

    def test_roundtrip_quantized_tensor(self, rng):
        quantizer = SchemeQuantizer(Scheme.SP2, 4)
        result = quantizer.quantize(rng.normal(0, 0.2, size=(8, 16)))
        code = encode_sp2(result.unit_values, 2, 1)
        assert np.allclose(decode_sp2(code, alpha=result.alpha),
                           result.values, atol=1e-12)

    def test_shape_preserved(self, rng):
        result = SchemeQuantizer(Scheme.SP2, 4).quantize(
            rng.normal(size=(3, 5)))
        code = encode_sp2(result.unit_values, 2, 1)
        assert code.shape == (3, 5)

    def test_codes_fit_field_widths(self):
        code = encode_sp2(sp2_levels(4), 2, 1)
        assert code.c1.max() < 2 ** 2
        assert code.c2.max() < 2 ** 1

    def test_non_level_rejected(self):
        with pytest.raises(QuantizationError):
            encode_sp2(np.array([0.3]), 2, 1)  # 0.3 not dyadic

    def test_off_grid_dyadic_rejected(self):
        with pytest.raises(QuantizationError):
            encode_sp2(np.array([3 / 8]), 2, 1)  # dyadic but not reachable

    def test_wider_split_roundtrip(self):
        levels = sp2_levels(6, m1=3, m2=2)
        code = encode_sp2(levels, 3, 2)
        assert np.allclose(decode_sp2(code), levels)


class TestSP2Packing:
    def test_pack_unpack_roundtrip(self):
        levels = sp2_levels(4)
        code = encode_sp2(levels, 2, 1)
        unpacked = unpack_sp2(pack_sp2(code), 2, 1)
        assert np.allclose(decode_sp2(unpacked), decode_sp2(code))

    def test_words_fit_in_m_bits(self):
        code = encode_sp2(sp2_levels(4), 2, 1)
        words = pack_sp2(code)
        assert words.max() < 2 ** 4  # m = 1 + m1 + m2 = 4 bits

    def test_sign_bit_position(self):
        code = encode_sp2(np.array([-1.0, 1.0]), 2, 1)
        words = pack_sp2(code)
        assert (words[0] >> 3) & 1 == 1
        assert (words[1] >> 3) & 1 == 0
