"""Projection quantizers: nearest-level correctness, idempotence, alpha."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ConfigurationError, QuantizationError
from repro.quant import (
    Scheme,
    SchemeQuantizer,
    make_quantizer,
    project_to_levels,
    quantization_mse,
    verify_on_levels,
)

SCHEMES = (Scheme.FIXED, Scheme.P2, Scheme.SP2)

finite_weights = hnp.arrays(
    np.float64, st.integers(min_value=1, max_value=64),
    elements=st.floats(min_value=-3.0, max_value=3.0,
                       allow_nan=False, allow_infinity=False))


class TestProjectToLevels:
    def test_exact_nearest(self):
        levels = np.array([-1.0, 0.0, 0.5, 1.0])
        values = np.array([-2.0, -0.3, 0.2, 0.6, 0.76, 2.0])
        out = project_to_levels(values, levels)
        assert np.allclose(out, [-1.0, 0.0, 0.0, 0.5, 1.0, 1.0])

    def test_tie_rounds_down(self):
        levels = np.array([0.0, 1.0])
        assert project_to_levels(np.array([0.5]), levels)[0] == 0.0

    @given(values=finite_weights)
    @settings(max_examples=50, deadline=None)
    def test_projection_is_nearest_neighbour(self, values):
        levels = np.linspace(-1, 1, 9)
        out = project_to_levels(np.clip(values, -1, 1), levels)
        brute = levels[np.argmin(
            np.abs(np.clip(values, -1, 1)[:, None] - levels[None, :]),
            axis=1)]
        assert np.allclose(np.abs(out - np.clip(values, -1, 1)),
                           np.abs(brute - np.clip(values, -1, 1)))


class TestSchemeQuantizer:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_output_on_level_set(self, scheme, rng):
        quantizer = SchemeQuantizer(scheme, 4)
        result = quantizer.quantize(rng.normal(0, 0.3, size=(16, 8)))
        verify_on_levels(result)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_idempotent(self, scheme, rng):
        quantizer = SchemeQuantizer(scheme, 4, alpha="max")
        first = quantizer.quantize(rng.normal(0, 0.3, size=128))
        second = quantizer.quantize(first.values, alpha=first.alpha)
        assert np.allclose(first.values, second.values, atol=1e-12)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_shape_preserved(self, scheme, rng):
        quantizer = SchemeQuantizer(scheme, 4)
        w = rng.normal(size=(3, 4, 5))
        assert quantizer.quantize(w).values.shape == (3, 4, 5)

    def test_alpha_fit_not_worse_than_max(self, rng):
        w = rng.normal(0, 0.2, size=4096)
        for scheme in SCHEMES:
            fit = SchemeQuantizer(scheme, 4, alpha="fit").quantize(w)
            mx = SchemeQuantizer(scheme, 4, alpha="max").quantize(w)
            assert quantization_mse(w, fit) <= quantization_mse(w, mx) + 1e-12

    def test_explicit_alpha(self, rng):
        quantizer = SchemeQuantizer(Scheme.FIXED, 4, alpha=2.0)
        result = quantizer.quantize(rng.normal(size=64))
        assert result.alpha == 2.0

    def test_invalid_alpha(self):
        with pytest.raises(ConfigurationError):
            SchemeQuantizer(Scheme.FIXED, 4, alpha=-1.0).quantize(np.ones(4))

    def test_zero_weights(self):
        result = SchemeQuantizer(Scheme.SP2, 4).quantize(np.zeros(16))
        assert np.allclose(result.values, 0.0)

    def test_msq_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            SchemeQuantizer(Scheme.MSQ, 4)

    def test_make_quantizer_accepts_strings(self):
        quantizer = make_quantizer("sp2", 4)
        assert quantizer.spec.scheme == Scheme.SP2

    def test_callable_interface(self, rng):
        quantizer = SchemeQuantizer(Scheme.FIXED, 4)
        w = rng.normal(size=32)
        assert np.allclose(quantizer(w), quantizer.quantize(w).values)

    @given(values=finite_weights)
    @settings(max_examples=30, deadline=None)
    def test_projection_error_bounded_by_half_gap(self, values):
        """|w - proj(w)| <= max_gap/2 for in-range values (fixed scheme)."""
        quantizer = SchemeQuantizer(Scheme.FIXED, 4, alpha="max")
        result = quantizer.quantize(values)
        if np.max(np.abs(values)) == 0:
            return
        gap = result.alpha * np.diff(quantizer.unit_levels).max()
        assert np.all(np.abs(values - result.values) <= gap / 2 + 1e-9)


class TestPaperModeQuantizers:
    def test_fixed_paper_mode_agrees_with_projection(self, rng):
        w = rng.uniform(-1, 1, size=2048)
        proj = SchemeQuantizer(Scheme.FIXED, 4, alpha="max",
                               mode="projection").quantize(w)
        paper = SchemeQuantizer(Scheme.FIXED, 4, alpha="max",
                                mode="paper").quantize(w)
        # Both project onto the same level set; agree except at exact ties.
        disagree = np.mean(~np.isclose(proj.values, paper.values))
        assert disagree < 0.01
        verify_on_levels(paper)

    def test_p2_paper_mode_on_level_set(self, rng):
        w = rng.normal(0, 0.3, size=2048)
        paper = SchemeQuantizer(Scheme.P2, 4, alpha="max",
                                mode="paper").quantize(w)
        verify_on_levels(paper)

    def test_p2_log_rounding_differs_from_euclidean(self):
        """Log-domain rounding picks the geometric midpoint: 0.35 between
        0.25 and 0.5 rounds up in log space, down in linear space."""
        value = np.array([0.34])
        log_mode = SchemeQuantizer(Scheme.P2, 4, alpha=1.0, mode="paper")
        lin_mode = SchemeQuantizer(Scheme.P2, 4, alpha=1.0, mode="projection")
        assert log_mode.quantize(value, alpha=1.0).values[0] == 0.25
        assert lin_mode.quantize(value, alpha=1.0).values[0] == 0.25
        value = np.array([0.36])
        assert log_mode.quantize(value, alpha=1.0).values[0] == 0.5
        assert lin_mode.quantize(value, alpha=1.0).values[0] == 0.25

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            SchemeQuantizer(Scheme.FIXED, 4, mode="magic")


class TestSchemeErrorOrdering:
    """The quantitative core of §III-B: P2 loses, SP2 ~ fixed."""

    def test_gaussian_weights_p2_worst(self, rng):
        w = rng.normal(0, 0.15, size=8192)
        mse = {scheme: quantization_mse(
            w, SchemeQuantizer(scheme, 4).quantize(w)) for scheme in SCHEMES}
        assert mse[Scheme.P2] > mse[Scheme.SP2]
        assert mse[Scheme.P2] > mse[Scheme.FIXED]

    def test_uniform_weights_fixed_best(self, rng):
        w = rng.uniform(-0.3, 0.3, size=8192)
        mse = {scheme: quantization_mse(
            w, SchemeQuantizer(scheme, 4).quantize(w)) for scheme in SCHEMES}
        assert mse[Scheme.FIXED] <= mse[Scheme.SP2]
        assert mse[Scheme.FIXED] < mse[Scheme.P2]

    def test_sp2_within_2x_of_fixed_on_gaussian(self, rng):
        w = rng.normal(0, 0.15, size=8192)
        fixed = quantization_mse(w, SchemeQuantizer(Scheme.FIXED, 4).quantize(w))
        sp2 = quantization_mse(w, SchemeQuantizer(Scheme.SP2, 4).quantize(w))
        assert sp2 < 2.0 * fixed
