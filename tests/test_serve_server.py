"""The async serving layer: dynamic batcher, futures, ModelServer, stats,
wire protocol.

Everything here is deterministic: batch-deadline behavior is driven by a
manual injectable clock (no sleeps anywhere), and the one threaded test
only ever blocks on futures with generous timeouts. Run with
``-W error::DeprecationWarning`` — the entire file goes through the new
surface, so a warning means internal code regressed onto the legacy path.
"""

import io
import json

import numpy as np
import pytest

from repro.api import Pipeline, PipelineConfig
from repro.errors import ConfigurationError, ServingError
from repro.serve import (
    DynamicBatcher,
    EngineStats,
    ModelServer,
    ServeStats,
    coerce_payload,
    gather,
)
from repro.serve.cli import serve_protocol
from repro.serve.server import ModelStats
from tests.conftest import make_mlp


class ManualClock:
    """A clock tests advance explicitly; reading it never moves it."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> "ManualClock":
        self.now += seconds
        return self


def make_deployment(seed=7, batch=4, max_wait_ms=None):
    """A small, fast MLP deployment (input shape (12,), 3 logits)."""
    rng = np.random.default_rng(seed + 1000)
    pipeline = Pipeline(PipelineConfig(batch=batch), model=make_mlp(seed))
    pipeline.calibrate([rng.normal(size=(8, 12)).astype(np.float32)])
    return pipeline.deploy(max_wait_ms=max_wait_ms), pipeline.result


def payload_stream(count, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=(12,)).astype(np.float32)
            for _ in range(count)]


def assert_batchwise_bit_exact(futures, payloads, quantized):
    """Server results == eager inference at the served batch composition.

    (Individual re-inference is only ``allclose``: BLAS picks kernels per
    shape, so bit-equality is defined against eager at the same batch.)
    """
    groups = {}
    for future, payload in zip(futures, payloads):
        groups.setdefault(future.request.batch_id, []).append(
            (future.result(timeout=0), payload))
    assert groups
    for pairs in groups.values():
        served = np.stack([result for result, _ in pairs])
        eager = quantized.predict(np.stack([p for _, p in pairs]))
        # reshape: time-merged plans return eager output flattened
        assert np.array_equal(served, eager.reshape(served.shape))


# ----------------------------------------------------------------------
# DynamicBatcher: size-or-deadline flush, FIFO, determinism
# ----------------------------------------------------------------------
class TestDynamicBatcher:
    def test_size_flush_fires_before_deadline(self):
        clock = ManualClock()
        batcher = DynamicBatcher(max_batch=3, max_wait_ms=50.0, clock=clock)
        for index in range(3):
            batcher.submit(np.float32(index))
        # Full batch is ready immediately — the deadline never enters.
        assert batcher.ready(now=clock.now)
        batch = batcher.take(now=clock.now)
        assert [int(r.payload) for r in batch] == [0, 1, 2]

    def test_deadline_flush_fires_on_partial_batch(self):
        clock = ManualClock()
        batcher = DynamicBatcher(max_batch=8, max_wait_ms=5.0, clock=clock)
        batcher.submit(np.float32(0))
        clock.advance(0.002)
        batcher.submit(np.float32(1))
        assert not batcher.ready(now=clock.now)       # 2 < 8, 2ms < 5ms
        assert batcher.take(now=clock.now) == []
        clock.advance(0.0031)                          # oldest now past 5ms
        assert batcher.next_deadline() == pytest.approx(0.005)
        assert batcher.ready(now=clock.now)
        batch = batcher.take(now=clock.now)
        assert [int(r.payload) for r in batch] == [0, 1]

    def test_deadline_is_the_oldest_requests(self):
        # A newer request must not extend the oldest one's wait.
        clock = ManualClock()
        batcher = DynamicBatcher(max_batch=8, max_wait_ms=5.0, clock=clock)
        batcher.submit(np.float32(0))
        clock.advance(0.004)
        batcher.submit(np.float32(1))                  # deadline 9ms
        clock.advance(0.0015)                          # now 5.5ms
        assert batcher.ready(now=clock.now)
        assert len(batcher.take(now=clock.now)) == 2

    def test_no_deadline_means_size_or_force_only(self):
        clock = ManualClock()
        batcher = DynamicBatcher(max_batch=2, max_wait_ms=None, clock=clock)
        batcher.submit(np.float32(0))
        clock.advance(1e9)
        assert not batcher.ready(now=clock.now)
        assert batcher.next_deadline() is None
        assert len(batcher.take(force=True)) == 1

    def test_fifo_across_takes(self):
        batcher = DynamicBatcher(max_batch=2, max_wait_ms=0.0,
                                 clock=ManualClock())
        ids = [batcher.submit(np.float32(i)).id for i in range(5)]
        taken = []
        while batcher.pending:
            taken.extend(r.id for r in batcher.take(force=True))
        assert taken == ids == [0, 1, 2, 3, 4]

    def test_rejects_bad_configuration(self):
        with pytest.raises(ConfigurationError):
            DynamicBatcher(max_batch=0)
        with pytest.raises(ConfigurationError):
            DynamicBatcher(max_batch=4, max_wait_ms=-1.0)


class TestCoercePayload:
    def test_matching_payload_is_not_copied(self, tmp_path):
        deployment, _ = make_deployment()
        payload = np.arange(12, dtype=deployment.plan.input_dtype)
        assert coerce_payload(deployment.plan, payload) is payload

    def test_mismatched_dtype_or_layout_is_coerced(self):
        deployment, _ = make_deployment()
        doubled = np.arange(12, dtype=np.float64)
        coerced = coerce_payload(deployment.plan, doubled)
        assert coerced.dtype == deployment.plan.input_dtype
        strided = np.zeros((12, 2), dtype=np.float32)[:, 0]
        assert not strided.flags["C_CONTIGUOUS"]
        assert coerce_payload(deployment.plan, strided).flags["C_CONTIGUOUS"]

    def test_shape_mismatch_raises(self):
        deployment, _ = make_deployment()
        with pytest.raises(ConfigurationError):
            coerce_payload(deployment.plan, np.zeros((2, 12),
                                                     dtype=np.float32))


# ----------------------------------------------------------------------
# ModelServer: deterministic single-thread mode (workers=0)
# ----------------------------------------------------------------------
class TestModelServerSync:
    def test_deadline_flush_vs_size_flush_ordering(self):
        clock = ManualClock()
        deployment, _ = make_deployment(batch=4)
        server = ModelServer(workers=0, clock=clock)
        server.add("mlp", deployment, max_wait_ms=5.0)
        payloads = payload_stream(3)
        futures = server.submit_many("mlp", payloads)
        assert server.poll() == 0                 # 3 < 4 and deadline ahead
        assert not any(f.done() for f in futures)
        clock.advance(0.006)
        assert server.poll() == 3                 # deadline flush, batch of 3
        assert [f.request.batch_size for f in futures] == [3, 3, 3]
        # A full batch flushes with no clock movement at all.
        futures = server.submit_many("mlp", payload_stream(4, seed=1))
        assert server.poll() == 4                 # size flush
        assert [f.request.batch_size for f in futures] == [4] * 4
        server.close()

    def test_fifo_preserved_under_interleaved_multi_model_submits(self):
        clock = ManualClock()
        dep_a, quant_a = make_deployment(seed=3, batch=4)
        dep_b, quant_b = make_deployment(seed=11, batch=4)
        server = ModelServer(workers=0, clock=clock)
        server.add("a", dep_a)
        server.add("b", dep_b)
        payloads = payload_stream(12, seed=2)
        futures = {"a": [], "b": []}
        for index, payload in enumerate(payloads):
            name = "a" if index % 2 == 0 else "b"
            futures[name].append((server.submit(name, payload), payload))
        server.drain()
        for name, quantized in (("a", quant_a), ("b", quant_b)):
            pairs = futures[name]
            # FIFO: request ids and batch ids are non-decreasing in
            # submission order, per model.
            ids = [future.request.id for future, _ in pairs]
            assert ids == sorted(ids)
            batch_ids = [future.request.batch_id for future, _ in pairs]
            assert batch_ids == sorted(batch_ids)
            assert_batchwise_bit_exact([f for f, _ in pairs],
                                       [p for _, p in pairs], quantized)
        # The two models were actually served as distinct plans.
        stats = server.stats()
        assert stats["a"].requests == stats["b"].requests == 6
        server.close()

    def test_future_error_propagation_on_shape_mismatch(self):
        deployment, _ = make_deployment()
        server = ModelServer(workers=0, clock=ManualClock())
        server.add("mlp", deployment)
        future = server.submit("mlp", np.zeros((7,), dtype=np.float32))
        assert future.done()
        assert isinstance(future.exception(), ConfigurationError)
        with pytest.raises(ConfigurationError, match="request shape"):
            future.result(timeout=0)
        # The poisoned submit never reached the queue: good requests that
        # follow still serve, in order.
        good = server.submit_many("mlp", payload_stream(2))
        server.drain()
        assert all(f.exception() is None for f in good)
        assert server.stats()["mlp"].requests == 2
        server.close()

    def test_batched_results_bit_exact_and_individual_close(self):
        deployment, quantized = make_deployment(batch=4)
        server = ModelServer(workers=0, clock=ManualClock())
        server.add("mlp", deployment)
        payloads = payload_stream(10, seed=5)
        futures = server.submit_many("mlp", payloads)
        server.drain()
        assert_batchwise_bit_exact(futures, payloads, quantized)
        for future, payload in zip(futures, payloads):
            np.testing.assert_allclose(
                future.result(timeout=0),
                quantized.predict(payload[None])[0], rtol=1e-5, atol=1e-5)

    def test_time_merged_rnn_futures_get_whole_outputs(self):
        # lstm_lm serves a time-flattened (N*T, V) plan output; each
        # future must resolve to its request's full (T, V) logits, not a
        # single flattened row (the legacy scheduler's latent bug).
        from repro.serve.cli import build_model

        model, sample = build_model("lstm_lm", seed=1)
        rng = np.random.default_rng(55)
        pipeline = Pipeline(PipelineConfig(batch=4), model=model)
        quantized = pipeline.calibrate([sample(rng, 8)])
        server = ModelServer(workers=0, clock=ManualClock())
        server.add("lm", pipeline.deploy())
        payloads = [sample(rng, 1)[0] for _ in range(4)]
        futures = server.submit_many("lm", payloads)
        server.drain()
        eager = quantized.predict(np.stack(payloads))     # (4*12, 40)
        per_request = eager.reshape(4, 12, 40)
        for index, future in enumerate(futures):
            result = future.result(timeout=0)
            assert result.shape == (12, 40)
            assert np.array_equal(result, per_request[index])
        server.close()

    def test_unknown_model_raises_immediately(self):
        server = ModelServer(workers=0)
        with pytest.raises(ServingError, match="unknown model"):
            server.submit("nope", np.zeros(12, dtype=np.float32))
        server.close()

    def test_predict_convenience_drains(self):
        deployment, quantized = make_deployment()
        server = ModelServer(workers=0, clock=ManualClock())
        server.add("mlp", deployment)
        payload = payload_stream(1)[0]
        result = server.predict("mlp", payload)
        assert np.array_equal(result, quantized.predict(payload[None])[0])
        server.close()


# ----------------------------------------------------------------------
# Lifecycle: load/unload, aliases, warmup, close
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_load_from_artifact_path_and_unload(self, tmp_path):
        deployment, quantized = make_deployment()
        path = tmp_path / "mlp.npz"
        deployment.save(path)
        server = ModelServer(workers=0, clock=ManualClock())
        server.load("mlp", path, batch=4)
        assert server.models() == ["mlp"]
        payload = payload_stream(1)[0]
        assert np.array_equal(server.predict("mlp", payload),
                              quantized.predict(payload[None])[0])
        server.unload("mlp")
        assert server.models() == []
        with pytest.raises(ServingError):
            server.submit("mlp", payload)
        with pytest.raises(ServingError):
            server.unload("mlp")
        server.close()

    def test_load_rejects_compile_options_for_deployments(self):
        deployment, _ = make_deployment()
        server = ModelServer(workers=0)
        with pytest.raises(ConfigurationError, match="already compiled"):
            server.load("mlp", deployment, backend="fused")
        server.load("mlp", deployment, batch=2)   # batch override is fine
        assert server.stats()["mlp"].max_batch == 2
        server.close()

    def test_duplicate_name_rejected(self):
        deployment, _ = make_deployment()
        server = ModelServer(workers=0)
        server.add("mlp", deployment)
        with pytest.raises(ConfigurationError, match="already loaded"):
            server.add("mlp", deployment)
        server.close()

    def test_unload_drains_pending_requests(self):
        deployment, quantized = make_deployment(batch=8)
        server = ModelServer(workers=0, clock=ManualClock())
        server.add("mlp", deployment)
        payloads = payload_stream(3, seed=9)
        futures = server.submit_many("mlp", payloads)
        server.unload("mlp")                      # serves the queue first
        assert_batchwise_bit_exact(futures, payloads, quantized)
        server.close()

    def test_unload_without_drain_fails_futures(self):
        deployment, _ = make_deployment()
        server = ModelServer(workers=0, clock=ManualClock())
        server.add("mlp", deployment)
        future = server.submit("mlp", payload_stream(1)[0])
        server.unload("mlp", drain=False)
        assert isinstance(future.exception(), ServingError)
        server.close()

    def test_alias_versioned_rollover(self):
        v1, quant_v1 = make_deployment(seed=21)
        v2, quant_v2 = make_deployment(seed=42)   # different weights
        server = ModelServer(workers=0, clock=ManualClock())
        server.load("resnet@v1", v1)
        server.alias("resnet", "resnet@v1")
        payload = payload_stream(1, seed=3)[0]
        before = server.predict("resnet", payload)
        assert np.array_equal(before, quant_v1.predict(payload[None])[0])
        # Rollover: load v2, re-point the public name, retire v1.
        server.load("resnet@v2", v2)
        server.alias("resnet", "resnet@v2")
        server.unload("resnet@v1")
        after = server.predict("resnet", payload)
        assert np.array_equal(after, quant_v2.predict(payload[None])[0])
        assert not np.array_equal(before, after)
        assert server.aliases() == {"resnet": "resnet@v2"}
        server.close()

    def test_alias_cannot_shadow_model_and_must_resolve(self):
        deployment, _ = make_deployment()
        server = ModelServer(workers=0)
        server.add("mlp", deployment)
        with pytest.raises(ConfigurationError, match="cannot shadow"):
            server.alias("mlp", "elsewhere")
        with pytest.raises(ServingError, match="unknown model"):
            server.alias("front", "missing")
        server.close()

    def test_unloading_model_drops_its_aliases(self):
        deployment, _ = make_deployment()
        server = ModelServer(workers=0, clock=ManualClock())
        server.add("mlp@v1", deployment)
        server.alias("mlp", "mlp@v1")
        server.unload("mlp@v1")
        assert server.aliases() == {}
        server.close()

    def test_warmup_leaves_counters_clean(self):
        deployment, _ = make_deployment(batch=4)
        server = ModelServer(workers=0, clock=ManualClock())
        server.add("mlp", deployment, warmup=True)
        stats = server.stats()["mlp"]
        assert stats.requests == 0 and stats.batches == 0
        server.close()

    def test_close_without_drain_fails_every_pending_future(self):
        # More than one batch's worth queued: close(drain=False) must
        # fail them all, not just the first max_batch requests.
        deployment, _ = make_deployment(batch=4)
        server = ModelServer(workers=0, clock=ManualClock())
        server.add("mlp", deployment)
        futures = server.submit_many("mlp", payload_stream(11))
        server.close(drain=False)
        assert all(isinstance(f.exception(), ServingError)
                   for f in futures)

    def test_drain_waits_for_in_flight_models(self):
        # With a worker mid-batch on the model, drain() must not return
        # while that model still has queued requests it cannot claim.
        deployment, _ = make_deployment(batch=4)
        with ModelServer(workers=1, max_wait_ms=3600_000.0) as server:
            server.add("mlp", deployment)
            futures = server.submit_many("mlp", payload_stream(11, seed=4))
            server.drain()                      # races a busy worker
            # Nothing is left *queued*; an in-flight batch resolves its
            # own futures, so block on them rather than polling done().
            gather(futures, timeout=60.0)
            assert all(f.exception() is None for f in futures)
            assert server.stats()["mlp"].queue_depth == 0

    def test_closed_server_rejects_submits(self):
        deployment, _ = make_deployment()
        server = ModelServer(workers=0, clock=ManualClock())
        server.add("mlp", deployment)
        future = server.submit("mlp", payload_stream(1)[0])
        server.close()                            # drains the queue
        assert future.exception() is None
        with pytest.raises(ServingError, match="closed"):
            server.submit("mlp", payload_stream(1)[0])


# ----------------------------------------------------------------------
# Threaded mode (real workers; blocks only on future timeouts, no sleeps)
# ----------------------------------------------------------------------
class TestModelServerThreaded:
    def test_two_models_served_concurrently_bit_exact(self):
        dep_a, quant_a = make_deployment(seed=5, batch=4)
        dep_b, quant_b = make_deployment(seed=6, batch=4)
        with ModelServer(workers=2, max_wait_ms=1.0) as server:
            server.add("a", dep_a)
            server.add("b", dep_b)
            payloads = payload_stream(16, seed=7)
            futures_a = server.submit_many("a", payloads)
            futures_b = server.submit_many("b", payloads)
            gather(futures_a + futures_b, timeout=60.0)
            assert_batchwise_bit_exact(futures_a, payloads, quant_a)
            assert_batchwise_bit_exact(futures_b, payloads, quant_b)
            stats = server.stats()
            assert stats["a"].requests == stats["b"].requests == 16

    def test_context_manager_close_serves_stragglers(self):
        deployment, quantized = make_deployment(batch=16)
        # An effectively infinite deadline: only close() can flush.
        with ModelServer(workers=1, max_wait_ms=3600_000.0) as server:
            server.add("mlp", deployment)
            payloads = payload_stream(3, seed=8)
            futures = server.submit_many("mlp", payloads)
        assert_batchwise_bit_exact(futures, payloads, quantized)


# ----------------------------------------------------------------------
# Stats: mixin, percentiles, merge
# ----------------------------------------------------------------------
class TickingClock:
    """Advances 1 ms per read — nonzero latencies without sleeping."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 0.001
        return self.now


class TestStats:
    def drained_stats(self, count=10, batch=4, clock=None):
        deployment, _ = make_deployment(batch=batch)
        server = ModelServer(workers=0, clock=clock or ManualClock())
        server.add("mlp", deployment)
        server.submit_many("mlp", payload_stream(count))
        server.drain()
        stats = server.stats()["mlp"]
        server.close()
        return stats

    def test_model_stats_fields_and_fill(self):
        stats = self.drained_stats(count=10, batch=4)
        assert stats.requests == 10 and stats.batches == 3
        assert stats.mean_batch_size == pytest.approx(10 / 3)
        assert stats.mean_batch_fill == pytest.approx(10 / 12)
        assert stats.queue_depth == 0 and stats.in_flight == 0
        assert len(stats.latencies_ms) == 10
        assert stats.fpga_ms_per_request > 0
        for line_bit in ("p50/p95/p99", "fill", "req/s"):
            assert line_bit in stats.format()

    def test_percentiles_present_and_ordered(self):
        stats = self.drained_stats(count=20, batch=4, clock=TickingClock())
        assert 0 < stats.latency_ms_p50 <= stats.latency_ms_p95 \
            <= stats.latency_ms_p99
        assert stats.p99_ms == stats.latency_ms_p99

    def test_serve_stats_p99_and_merge(self):
        first = ServeStats(requests=4, batches=2, wall_seconds=0.5,
                           latencies_ms=[1.0, 2.0, 3.0, 4.0],
                           fpga_ms_total=0.4, backend="fused")
        second = ServeStats(requests=2, batches=1, wall_seconds=0.5,
                            latencies_ms=[10.0, 20.0],
                            fpga_ms_total=0.2, backend="fused")
        merged = first.merge(second)
        assert merged.requests == 6 and merged.batches == 3
        assert merged.wall_seconds == pytest.approx(1.0)
        assert merged.latencies_ms == [1.0, 2.0, 3.0, 4.0, 10.0, 20.0]
        assert merged.backend == "fused"
        assert merged.latency_ms_p99 == pytest.approx(
            float(np.percentile(merged.latencies_ms, 99)))
        third = ServeStats(requests=1, batches=1, wall_seconds=0.1,
                           latencies_ms=[5.0], fpga_ms_total=0.1,
                           backend="reference")
        assert first.merge(second, third).backend == "mixed"

    def test_engine_stats_share_the_mixin(self):
        stats = EngineStats(requests=8, batches=2, wall_seconds=2.0,
                            fpga_ms=1.0)
        assert stats.mean_batch_size == 4.0
        assert stats.requests_per_second == 4.0
        assert stats.latency_ms_p99 == 0.0      # keeps no latency list
        assert stats.fpga_ms_per_request == 0.125
        merged = stats.merge(EngineStats(requests=2, batches=1,
                                         wall_seconds=1.0, fpga_ms=0.5))
        assert merged.requests == 10 and merged.fpga_ms == 1.5

    def test_model_stats_merge_across_models(self):
        dep_a, _ = make_deployment(seed=1, batch=4)
        dep_b, _ = make_deployment(seed=2, batch=8)
        server = ModelServer(workers=0, clock=ManualClock())
        server.add("a", dep_a)
        server.add("b", dep_b)
        server.submit_many("a", payload_stream(4))
        server.submit_many("b", payload_stream(8))
        server.drain()
        stats = server.stats()
        merged = stats["a"].merge(stats["b"])
        assert merged.requests == 12
        assert merged.max_batch == 8              # max, not sum
        assert merged.model == "mixed"
        assert len(merged.latencies_ms) == 12
        server.close()

    def test_stats_window_bounds_latency_detail(self):
        deployment, _ = make_deployment(batch=2)
        server = ModelServer(workers=0, stats_window=6,
                             clock=TickingClock())
        server.add("mlp", deployment)
        server.submit_many("mlp", payload_stream(10))
        server.drain()
        stats = server.stats()["mlp"]
        assert stats.requests == 10               # lifetime counter
        assert len(stats.latencies_ms) == 6       # windowed detail
        assert stats.fpga_ms_total > 0
        server.close()

    def test_merge_rejects_mismatched_types(self):
        serve = ServeStats(requests=1, batches=1, wall_seconds=0.1,
                           latencies_ms=[1.0], fpga_ms_total=0.1)
        with pytest.raises(ConfigurationError):
            serve.merge(EngineStats())


class TestStatsMergeEdgeCases:
    """merge() corner cases the cluster stats path leans on: identity
    with empty snapshots, hand-computed aggregates, merge="max" fields,
    string collapse, windowed-list concatenation, wire round-trip."""

    @staticmethod
    def model_stats(model="m", backend="reference", max_batch=4,
                    requests=0, batches=0, errors=0, wall_seconds=0.0,
                    latencies_ms=(), fpga_ms_total=0.0, queue_depth=0,
                    in_flight=0):
        return ModelStats(model=model, backend=backend,
                          max_batch=max_batch, requests=requests,
                          batches=batches, errors=errors,
                          wall_seconds=wall_seconds,
                          latencies_ms=list(latencies_ms),
                          fpga_ms_total=fpga_ms_total,
                          queue_depth=queue_depth, in_flight=in_flight)

    def test_merge_with_empty_stats_is_identity(self):
        # An idle worker's snapshot must not perturb the aggregate.
        busy = self.model_stats(requests=10, batches=3, wall_seconds=2.0,
                                latencies_ms=[1.0, 2.0, 3.0],
                                fpga_ms_total=0.5)
        idle = self.model_stats()
        merged = busy.merge(idle)
        assert merged.requests == 10 and merged.batches == 3
        assert merged.wall_seconds == pytest.approx(2.0)
        assert merged.latencies_ms == [1.0, 2.0, 3.0]
        assert merged.backend == "reference" and merged.model == "m"
        assert merged.max_batch == 4

    def test_merge_of_two_empties_stays_zero_and_finite(self):
        merged = self.model_stats().merge(self.model_stats())
        assert merged.requests == 0 and merged.batches == 0
        # derived metrics must not divide by zero
        assert merged.mean_batch_size == 0.0
        assert merged.requests_per_second == 0.0
        assert merged.latency_ms_mean == 0.0
        assert merged.latency_ms_p99 == 0.0
        assert merged.fpga_ms_per_request == 0.0
        assert merged.mean_batch_fill == 0.0

    def test_merge_no_arguments_copies(self):
        stats = self.model_stats(requests=3, batches=1,
                                 latencies_ms=[1.0])
        merged = stats.merge()
        assert merged is not stats
        assert merged.requests == 3
        assert merged.latencies_ms == [1.0]
        merged.latencies_ms.append(9.0)       # no aliasing either
        assert stats.latencies_ms == [1.0]

    def test_hand_computed_aggregates(self):
        # three workers with known numbers; check the merged snapshot
        # field by field against the arithmetic
        workers = [
            self.model_stats(requests=6, batches=2, errors=1,
                             wall_seconds=1.5,
                             latencies_ms=[1.0, 1.0, 2.0, 2.0, 3.0, 3.0],
                             fpga_ms_total=0.6, queue_depth=1,
                             in_flight=2),
            self.model_stats(requests=4, batches=1, wall_seconds=0.5,
                             latencies_ms=[10.0, 10.0, 10.0, 10.0],
                             fpga_ms_total=0.4, queue_depth=0,
                             in_flight=1),
            self.model_stats(requests=2, batches=2, wall_seconds=2.0,
                             latencies_ms=[5.0, 7.0], fpga_ms_total=1.0),
        ]
        merged = workers[0].merge(*workers[1:])
        assert merged.requests == 12 and merged.batches == 5
        assert merged.errors == 1
        assert merged.wall_seconds == pytest.approx(4.0)
        assert merged.queue_depth == 1 and merged.in_flight == 3
        assert merged.mean_batch_size == pytest.approx(12 / 5)
        assert merged.requests_per_second == pytest.approx(12 / 4.0)
        assert merged.fpga_ms_per_request == pytest.approx(2.0 / 12)
        expected = [1.0, 1.0, 2.0, 2.0, 3.0, 3.0,
                    10.0, 10.0, 10.0, 10.0, 5.0, 7.0]
        assert merged.latencies_ms == expected
        assert merged.latency_ms_mean == pytest.approx(
            float(np.mean(expected)))
        assert merged.latency_ms_p50 == pytest.approx(
            float(np.percentile(expected, 50)))

    def test_merge_max_field_takes_maximum_not_sum(self):
        small = self.model_stats(max_batch=4, requests=1)
        large = self.model_stats(max_batch=16, requests=1)
        assert small.merge(large).max_batch == 16
        assert large.merge(small).max_batch == 16     # either order

    def test_string_fields_collapse_to_mixed_independently(self):
        a = self.model_stats(model="m", backend="reference")
        b = self.model_stats(model="m", backend="fused")
        merged = a.merge(b)
        assert merged.model == "m"              # equal strings survive
        assert merged.backend == "mixed"        # unequal ones collapse
        assert "mixed" in merged.format()

    def test_merge_of_windowed_snapshots_concatenates_windows(self):
        # Each worker's latency detail is window-bounded; the merged
        # list is the concatenation of windows while lifetime counters
        # keep the true totals.
        deployment, _ = make_deployment(batch=2)
        snapshots = []
        for seed in (0, 1):
            server = ModelServer(workers=0, stats_window=4,
                                 clock=TickingClock())
            server.add("mlp", deployment)
            server.submit_many("mlp", payload_stream(10, seed=seed))
            server.drain()
            snapshots.append(server.stats()["mlp"])
            server.close()
        merged = snapshots[0].merge(snapshots[1])
        assert merged.requests == 20            # lifetime totals sum
        assert len(merged.latencies_ms) == 8    # windows concatenate
        assert merged.latency_ms_p99 > 0

    def test_wire_round_trip_preserves_merge_semantics(self):
        # to_wire -> JSON -> from_wire must yield a snapshot that merges
        # identically to the original (the cluster stats path).
        local = self.model_stats(requests=5, batches=2, wall_seconds=1.0,
                                 latencies_ms=[1.0, 2.0, 3.0, 4.0, 5.0],
                                 fpga_ms_total=0.5, max_batch=8)
        remote = ModelStats.from_wire(
            json.loads(json.dumps(local.to_wire())))
        assert remote == local
        direct = local.merge(local)
        via_wire = local.merge(remote)
        assert via_wire == direct

    def test_stage_field_equal_survives_unequal_collapses(self):
        # Same pipeline stage merges cleanly (replicated stage workers);
        # different stages collapse to "mixed" like any string field.
        a = self.model_stats(requests=1)
        b = self.model_stats(requests=2)
        a.stage, b.stage = "1/2", "1/2"
        merged = a.merge(b)
        assert merged.stage == "1/2" and merged.requests == 3
        b.stage = "2/2"
        assert a.merge(b).stage == "mixed"

    def test_stage_default_is_empty_and_absent_from_format(self):
        stats = self.model_stats(requests=1)
        assert stats.stage == ""
        assert "stage" not in stats.format()
        stats.stage = "2/3"
        assert "stage 2/3" in stats.format()

    def test_stage_field_survives_wire_round_trip(self):
        local = self.model_stats(requests=5, batches=2,
                                 latencies_ms=[1.0, 2.0])
        local.stage = "1/2"
        remote = ModelStats.from_wire(
            json.loads(json.dumps(local.to_wire())))
        assert remote == local and remote.stage == "1/2"
        # Pre-stage senders (older wire dumps) default to "" harmlessly.
        wire = local.to_wire()
        wire.pop("stage")
        assert ModelStats.from_wire(wire).stage == ""


# ----------------------------------------------------------------------
# Deployment integration + JSON-lines protocol
# ----------------------------------------------------------------------
class TestDeploymentIntegration:
    def test_deploy_carries_max_wait_ms_into_server(self):
        deployment, _ = make_deployment(batch=4, max_wait_ms=7.5)
        assert deployment.max_wait_ms == 7.5
        clock = ManualClock()
        server = ModelServer(workers=0, clock=clock)
        server.add("mlp", deployment)             # inherits 7.5 ms
        server.submit("mlp", payload_stream(1)[0])
        clock.advance(0.0074)
        assert server.poll() == 0
        clock.advance(0.0002)
        assert server.poll() == 1
        server.close()

    def test_deployment_server_helper_round_trips(self):
        deployment, quantized = make_deployment(batch=4)
        with deployment.server("mlp", workers=1, max_wait_ms=1.0) as server:
            payload = payload_stream(1)[0]
            result = server.predict("mlp", payload, timeout=60.0)
        assert np.array_equal(result, quantized.predict(payload[None])[0])

    def test_serve_propagates_batch_execution_failures(self, monkeypatch):
        # The legacy scheduler re-raised engine failures; serve() must
        # too, even though the server records them per model.
        deployment, _ = make_deployment(batch=4)

        def explode(batch):
            raise RuntimeError("kernel died")

        monkeypatch.setattr(deployment.engine, "infer", explode)
        with pytest.raises(RuntimeError, match="kernel died"):
            deployment.serve(payload_stream(4), clock=ManualClock())

    def test_serve_matches_manual_server_drain(self):
        deployment, _ = make_deployment(batch=4)
        payloads = payload_stream(10, seed=13)
        served = deployment.serve(payloads, clock=ManualClock())
        server = ModelServer(workers=0, clock=ManualClock())
        server.add("again", deployment)
        server.submit_many("again", payloads)
        server.drain()
        manual = server.stats()["again"].to_serve_stats()
        server.close()
        assert served.requests == manual.requests == 10
        assert served.batches == manual.batches == 3
        assert served.latencies_ms == manual.latencies_ms


class TestServeProtocol:
    def run_protocol(self, lines, models=None, max_wait_ms=0.0):
        server = ModelServer(workers=0, max_wait_ms=max_wait_ms,
                             clock=ManualClock())
        deployments = {}
        for name, seed in (models or {"mlp": 7}).items():
            deployment, quantized = make_deployment(seed=seed, batch=4)
            server.add(name, deployment)
            deployments[name] = quantized
        out = io.StringIO()
        served = serve_protocol(server, lines, out)
        server.close()
        responses = [json.loads(line)
                     for line in out.getvalue().splitlines()]
        return served, responses, deployments

    def request_line(self, request_id, model, payload):
        return json.dumps({"id": request_id, "model": model,
                           "input": payload.tolist()})

    def test_round_trip_bit_exact_and_ordered(self):
        payloads = payload_stream(5, seed=17)
        lines = [self.request_line(i, "mlp", p)
                 for i, p in enumerate(payloads)]
        served, responses, deployments = self.run_protocol(lines)
        assert served == 5
        answers = [r for r in responses if "output" in r]
        assert [r["id"] for r in answers] == [0, 1, 2, 3, 4]
        # Dynamic batching over the wire: 5 requests, batch 4 -> 4 + 1.
        assert [r["batch_size"] for r in answers] == [4, 4, 4, 4, 1]
        groups = {}
        for response, payload in zip(answers, payloads):
            groups.setdefault(response["batch_id"], []).append(
                (np.asarray(response["output"], dtype=np.float32), payload))
        for pairs in groups.values():
            eager = deployments["mlp"].predict(
                np.stack([p for _, p in pairs]))
            assert np.array_equal(np.stack([r for r, _ in pairs]),
                                  eager.astype(np.float32))

    def test_stats_op_and_error_paths(self):
        payload = payload_stream(1)[0]
        lines = [
            "not json",
            json.dumps({"op": "bogus"}),
            json.dumps({"model": "mlp"}),                 # missing input
            json.dumps({"id": 1, "model": "ghost",
                        "input": payload.tolist()}),      # unknown model
            self.request_line(2, "mlp", payload),
            json.dumps({"op": "stats"}),
        ]
        served, responses, _ = self.run_protocol(lines)
        assert served == 1
        assert "malformed" in responses[0]["error"]
        assert "unknown op" in responses[1]["error"]
        assert "model" in responses[2]["error"]
        assert "unknown model" in responses[3]["error"]
        stats_line = next(r for r in responses if r.get("op") == "stats")
        assert "mlp" in stats_line["models"]
        answer = next(r for r in responses if r.get("id") == 2
                      and "output" in r)
        assert len(answer["output"]) == 3

    def test_wrong_shape_reports_error_response(self):
        lines = [json.dumps({"id": 0, "model": "mlp",
                             "input": [1.0, 2.0]})]
        served, responses, _ = self.run_protocol(lines)
        assert served == 1
        assert "request shape" in responses[0]["error"]

    def test_ragged_input_answers_error_without_killing_server(self):
        payload = payload_stream(1)[0]
        lines = [
            json.dumps({"id": 0, "model": "mlp",
                        "input": [[1.0, 2.0], [3.0]]}),   # ragged
            self.request_line(1, "mlp", payload),          # must still work
        ]
        served, responses, _ = self.run_protocol(lines)
        assert served == 1
        assert "error" in responses[0] and responses[0]["id"] == 0
        assert any(r.get("id") == 1 and "output" in r for r in responses)

    def test_threaded_response_flushes_without_further_input(self):
        # A strict request-then-response client: the protocol loop is
        # blocked reading the next line, so the response must be pushed
        # by the future's done-callback from the worker thread.
        import threading

        deployment, quantized = make_deployment(batch=4)
        server = ModelServer(workers=2, max_wait_ms=0.0)
        server.add("mlp", deployment)
        payload = payload_stream(1)[0]
        responded = threading.Event()

        class SignallingOut(io.StringIO):
            def write(self, text):
                result = super().write(text)
                if "output" in text:
                    responded.set()
                return result

        def client_lines():
            yield self.request_line(0, "mlp", payload)
            # Block like a pipe with no more data until the response for
            # request 0 has been written — then hang up.
            assert responded.wait(timeout=30.0), \
                "response was not pushed before the next read"

        out = SignallingOut()
        served = serve_protocol(server, client_lines(), out)
        server.close()
        assert served == 1
        response = json.loads(out.getvalue().splitlines()[0])
        assert np.allclose(response["output"],
                           quantized.predict(payload[None])[0],
                           rtol=1e-5, atol=1e-5)
