"""Baseline quantization methods (Tables III/IV/VI comparators)."""

import numpy as np
import pytest

from repro import nn
from repro.quant.baselines import (
    available_baselines,
    get_baseline,
    train_baseline,
)
from repro.quant.baselines.dorefa import dorefa_weight_projection
from repro.quant.baselines.dsq import dsq_hard, dsq_soft
from repro.quant.baselines.eqm import eqm_projection
from repro.quant.baselines.lqnets import lqnets_project, qem_fit
from repro.quant.baselines.lsq import lsq_project
from repro.quant.baselines.ul2q import ul2q_projection
from repro.tensor import Tensor
from tests.conftest import accuracy_of, make_mlp, make_toy_task

ALL_METHODS = ("dorefa", "pact", "dsq", "qil", "ul2q", "lq-nets", "lsq", "eqm")


class TestRegistry:
    def test_all_names_resolve(self):
        for name in ALL_METHODS:
            assert get_baseline(name) is not None

    def test_greek_mu_alias(self):
        assert get_baseline("µL2Q").name == "µL2Q"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_baseline("binaryconnect")

    def test_available_list(self):
        assert "DoReFa" in available_baselines()


class TestProjections:
    def test_dorefa_levels(self, rng):
        w = rng.normal(size=512)
        q = dorefa_weight_projection(w, 4)
        # 2*Q_k(x)-1 lands on the odd uniform grid in [-1, 1].
        codes = (q + 1.0) / 2.0 * 15
        assert np.allclose(codes, np.round(codes), atol=1e-9)
        assert q.min() >= -1.0 and q.max() <= 1.0

    def test_dorefa_monotone(self, rng):
        w = np.sort(rng.normal(size=100))
        q = dorefa_weight_projection(w, 4)
        assert np.all(np.diff(q) >= -1e-12)

    def test_dsq_soft_converges_to_hard(self, rng):
        """As k -> inf the soft staircase matches hard rounding everywhere
        except an O(1/k) neighbourhood of the cell midpoints, where the
        tanh is still crossing; the error there is bounded by delta/2."""
        w = rng.uniform(-1, 1, size=256)
        hard = dsq_hard(w, 4, 1.0)
        soft_sharp = dsq_soft(w, 4, 1.0, temperature=500.0)
        diff = np.abs(soft_sharp - hard)
        delta = 1.0 / (2 ** 3 - 1)
        assert np.quantile(diff, 0.9) < 1e-3
        assert diff.max() <= delta / 2 + 1e-9

    def test_dsq_soft_is_smooth_interpolant(self, rng):
        w = rng.uniform(-1, 1, size=256)
        soft = dsq_soft(w, 4, 1.0, temperature=5.0)
        steps = 2 ** 3 - 1
        assert np.abs(soft - w).max() <= 1.0 / steps

    def test_ul2q_grid(self, rng):
        w = rng.normal(0, 0.5, size=4096)
        q = ul2q_projection(w, 4)
        sigma = w.std()
        offsets = (q - w.mean()) / (0.3352 * sigma) - 0.5
        assert np.allclose(offsets, np.round(offsets), atol=1e-6)

    def test_ul2q_level_count(self, rng):
        q = ul2q_projection(rng.normal(size=8192), 4)
        assert len(np.unique(q)) <= 16

    def test_ul2q_invalid_bits(self):
        with pytest.raises(KeyError):
            ul2q_projection(np.ones(4), 16)

    def test_lqnets_basis_fits_dyadic_weights(self, rng):
        """QEM on weights generated from a known basis recovers low error."""
        true_v = np.array([0.4, 0.2, 0.1])
        codes = rng.choice([-1.0, 1.0], size=(2048, 3))
        w = codes @ true_v + rng.normal(0, 0.01, size=2048)
        v = qem_fit(w, 4, iterations=10)
        q = lqnets_project(w, v)
        assert np.mean((w - q) ** 2) < 5e-4

    def test_lqnets_levels_count(self, rng):
        v = qem_fit(rng.normal(size=1024), 4)
        q = lqnets_project(rng.normal(size=256), v)
        assert len(np.unique(q)) <= 8  # 2^(m-1) sign patterns

    def test_lsq_grid(self, rng):
        w = rng.normal(size=512)
        q = lsq_project(w, step=0.1, bits=4)
        assert np.allclose(q / 0.1, np.round(q / 0.1), atol=1e-9)
        assert np.abs(q / 0.1).max() <= 7

    def test_eqm_balanced_population(self, rng):
        w = rng.normal(size=8192)
        q = eqm_projection(w, 4)
        _, counts = np.unique(q, return_counts=True)
        # Equal-population binning: no level holds more than ~2x its share.
        assert counts.max() < 2.0 * len(w) / 15


class TestTraining:
    @pytest.mark.parametrize("name", ALL_METHODS)
    def test_short_training_preserves_accuracy(self, name):
        x, y = make_toy_task(n=192, seed=2)
        model = make_mlp()
        optimizer = nn.SGD(model.parameters(), lr=0.1, momentum=0.9)
        for _ in range(80):
            loss = nn.cross_entropy(model(Tensor(x)), y)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        fp_acc = accuracy_of(model, x, y)

        def make_batches(epoch):
            yield x, y

        def loss_fn(m, batch):
            xb, yb = batch
            return nn.cross_entropy(m(Tensor(xb)), yb)

        method = get_baseline(name, weight_bits=4, act_bits=4)
        history = train_baseline(model, make_batches, loss_fn, method,
                                 epochs=6, lr=0.05)
        assert len(history) == 6
        q_acc = accuracy_of(model, x, y)
        # DoReFa's tanh renormalization is the lossiest of the baselines
        # (it is also the weakest in the paper's Table III).
        budget = 0.40 if name == "dorefa" else 0.25
        assert q_acc >= fp_acc - budget, f"{name}: {fp_acc} -> {q_acc}"

    def test_hooks_removed_after_finalize(self):
        x, y = make_toy_task(n=64, seed=3)
        model = make_mlp()
        method = get_baseline("dsq")

        def make_batches(epoch):
            yield x, y

        def loss_fn(m, batch):
            xb, yb = batch
            return nn.cross_entropy(m(Tensor(xb)), yb)

        train_baseline(model, make_batches, loss_fn, method, epochs=1,
                       lr=0.01)
        for _, module in model.named_modules():
            if hasattr(module, "weight_quant"):
                assert module.weight_quant is None

    def test_pact_alpha_is_trainable_parameter(self):
        model = make_mlp()
        method = get_baseline("pact")
        method.prepare(model)
        names = [name for name, _ in model.named_parameters()]
        assert any("pact_alpha" in name for name in names)

    def test_lsq_step_positive_after_finalize(self):
        model = make_mlp()
        method = get_baseline("lsq")
        method.prepare(model)
        steps = method.finalize(model)
        assert all(step > 0 for step in steps.values())
