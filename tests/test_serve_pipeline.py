"""Pipelined serving suite: the in-process :class:`PipelineEngine`
(deterministic ``workers=0`` stepping and the threaded path), the
distributed :class:`PipelineCluster` with its chaos scenario, and the
:class:`repro.api.PipelineDeployment` front door.

The bit-exactness contract everywhere: a pipelined output equals the
single-device plan's output *for the same micro-batch composition*
(floating-point GEMMs are reduction-order sensitive, so the reference
is always computed on the exact batches the pipeline formed).
"""

import numpy as np
import pytest

from repro.api import Pipeline, PipelineConfig
from repro.errors import (
    ConfigurationError,
    ReproError,
    ResourceError,
    ServingError,
    WorkerError,
)
from repro.serve import FaultPlan
from repro.serve.cli import build_model
from repro.serve.export import build_artifact
from repro.serve.ir import synthetic_batch
from repro.serve.partition import (
    PipelineEngine,
    auto_cuts,
    local_pipeline_cluster,
    process_pipeline_cluster,
    split_artifact,
)
from repro.serve.partition.pipeline import StageDeployment
from repro.serve.plan import ExecutionPlan
from tests.conftest import make_mlp

FAMILIES = ("resnet_tiny", "mobilenet_v2", "lstm_lm", "gru_speech",
            "yolo_lite")


class ManualClock:
    """A clock tests advance explicitly; reading it never moves it."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> "ManualClock":
        self.now += seconds
        return self


def make_artifact(name, seed=0, batch=4):
    rng = np.random.default_rng(seed)
    model, sampler = build_model(name, seed=seed)
    return build_artifact(model, sampler(rng, batch), name=name)


def staged_reference(artifact, batches):
    """Single-device outputs for the exact micro-batches the pipeline
    will form: per-request rows, concatenated in submission order."""
    plan = ExecutionPlan(artifact)
    rows = []
    for batch in batches:
        outputs = plan.forward(batch)
        rows.extend(plan.per_request_outputs(outputs, batch.shape[0]))
    return rows


@pytest.fixture(scope="module")
def mlp_artifact():
    rng = np.random.default_rng(11)
    return build_artifact(make_mlp(7),
                          rng.normal(size=(4, 12)).astype(np.float32),
                          name="mlp")


# ----------------------------------------------------------------------
# PipelineEngine, deterministic workers=0 path
# ----------------------------------------------------------------------
class TestPipelineEngine:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_every_family_serves_bit_exact(self, family):
        artifact = make_artifact(family)
        inputs = synthetic_batch(lower_graph(artifact), n=8, seed=3)
        engine = PipelineEngine.from_artifact(artifact, stages=2,
                                              workers=0, max_batch=4)
        assert engine.num_stages == 2
        with engine:
            futures = engine.submit_many(engine.name, list(inputs))
            engine.drain()
            expected = staged_reference(artifact,
                                        [inputs[:4], inputs[4:]])
            for future, row in zip(futures, expected):
                assert np.array_equal(future.result(timeout=0), row)

    def test_poll_moves_one_stage_per_step(self, mlp_artifact):
        engine = PipelineEngine.from_artifact(mlp_artifact, stages=2,
                                              workers=0, max_batch=4)
        rng = np.random.default_rng(0)
        xs = [rng.normal(size=(12,)).astype(np.float32)
              for _ in range(4)]
        futures = engine.submit_many("mlp", xs)
        # poll 1: batcher flushes into stage 0's queue, nothing runs yet
        assert engine.poll() == 0
        assert engine.stats()["mlp/stage0"].queue_depth == 1
        # poll 2: stage 0 executes, hands the batch to stage 1
        assert engine.poll() == 0
        assert engine.stats()["mlp/stage1"].queue_depth == 1
        # poll 3: stage 1 completes all four requests
        assert engine.poll() == 4
        assert all(f.done() for f in futures)
        engine.close()

    def test_unknown_model_raises_typed(self, mlp_artifact):
        engine = PipelineEngine.from_artifact(mlp_artifact, stages=2,
                                              workers=0)
        with pytest.raises(ServingError) as info:
            engine.submit("nope", np.zeros(12, dtype=np.float32))
        assert info.value.code == "unknown-model"
        with pytest.raises(ServingError):
            engine.plan("nope")
        engine.close()

    def test_shape_error_fails_future_not_pipeline(self, mlp_artifact):
        engine = PipelineEngine.from_artifact(mlp_artifact, stages=2,
                                              workers=0, max_batch=2)
        bad = engine.submit("mlp", np.zeros((5, 5), dtype=np.float32))
        assert isinstance(bad.exception(timeout=0), ReproError)
        # The pipeline still serves well-formed requests afterwards.
        good = engine.submit("mlp", np.zeros(12, dtype=np.float32))
        engine.drain()
        assert good.exception(timeout=0) is None
        engine.close()

    def test_close_fails_leftover_futures(self, mlp_artifact):
        engine = PipelineEngine.from_artifact(mlp_artifact, stages=2,
                                              workers=0, max_batch=8)
        future = engine.submit("mlp", np.zeros(12, dtype=np.float32))
        engine.close(drain=False)
        error = future.exception(timeout=0)
        assert isinstance(error, ServingError)
        assert "closed" in str(error)
        # Submitting into a closed pipeline fails the future too.
        late = engine.submit("mlp", np.zeros(12, dtype=np.float32))
        assert isinstance(late.exception(timeout=0), ServingError)

    def test_stats_are_stage_dimensioned(self, mlp_artifact):
        engine = PipelineEngine.from_artifact(mlp_artifact, stages=2,
                                              workers=0, max_batch=4)
        rng = np.random.default_rng(1)
        engine.submit_many("mlp", [rng.normal(size=(12,))
                                   .astype(np.float32)
                                   for _ in range(4)])
        engine.drain()
        stats = engine.stats()
        assert set(stats) == {"mlp", "mlp/stage0", "mlp/stage1"}
        assert stats["mlp"].stage == ""
        assert stats["mlp"].requests == 4
        assert stats["mlp/stage0"].stage == "1/2"
        assert stats["mlp/stage1"].stage == "2/2"
        for key in ("mlp/stage0", "mlp/stage1"):
            assert stats[key].requests == 4
            assert stats[key].batches == 1
            assert "stage" in stats[key].format()
        engine.close()

    def test_threaded_workers_match_stepped_results(self, mlp_artifact):
        rng = np.random.default_rng(2)
        xs = [rng.normal(size=(12,)).astype(np.float32)
              for _ in range(6)]
        with PipelineEngine.from_artifact(mlp_artifact, stages=2,
                                          workers=1,
                                          max_batch=6) as engine:
            futures = engine.submit_many("mlp", xs)
            engine.drain()
            got = [f.result(timeout=10.0) for f in futures]
        expected = staged_reference(mlp_artifact, [np.stack(xs)])
        for row, want in zip(got, expected):
            assert np.array_equal(row, want)

    def test_predict_forces_partial_batch_through(self, mlp_artifact):
        # A lone request must not wait forever for co-riders.
        with PipelineEngine.from_artifact(mlp_artifact, stages=2,
                                          workers=1,
                                          max_batch=16) as engine:
            x = np.ones(12, dtype=np.float32)
            got = engine.predict("mlp", x, timeout=10.0)
        expected = staged_reference(mlp_artifact, [x[None]])[0]
        assert np.array_equal(got, expected)

    def test_queue_depth_validation(self, mlp_artifact):
        with pytest.raises(ConfigurationError, match="queue_depth"):
            PipelineEngine.from_artifact(mlp_artifact, stages=2,
                                         workers=0, queue_depth=0)


def lower_graph(artifact):
    from repro.serve.ir import lower_artifact
    return lower_artifact(artifact)


# ----------------------------------------------------------------------
# StageDeployment (the cluster worker's lazy stage host)
# ----------------------------------------------------------------------
class TestStageDeployment:
    def test_engine_is_lazy_and_cached(self, mlp_artifact):
        plan = split_artifact(mlp_artifact, auto_cuts(mlp_artifact))
        source = StageDeployment(plan.stages[0])
        assert source._engine is None
        engine = source.engine
        assert source.engine is engine     # compiled exactly once


# ----------------------------------------------------------------------
# PipelineCluster: one worker per stage, chained hops
# ----------------------------------------------------------------------
class TestPipelineCluster:
    def test_healthy_cluster_is_bit_exact_with_stage_stats(self,
                                                           mlp_artifact):
        plan = split_artifact(mlp_artifact, auto_cuts(mlp_artifact))
        clock = ManualClock()
        cluster = local_pipeline_cluster(plan, max_batch=4, clock=clock)
        assert cluster.num_stages == 2
        rng = np.random.default_rng(5)
        xs = [rng.normal(size=(12,)).astype(np.float32)
              for _ in range(4)]
        futures = cluster.submit_many("mlp", xs)
        assert cluster.drain() == 0
        expected = staged_reference(mlp_artifact, [np.stack(xs)])
        for future, want in zip(futures, expected):
            assert np.array_equal(future.result(timeout=0), want)
        stats = cluster.stats()
        assert stats["mlp"].requests == 4
        assert stats["mlp/stage0"].stage == "1/2"
        assert stats["mlp/stage1"].stage == "2/2"
        cluster.close()

    def test_unknown_model_raises_typed(self, mlp_artifact):
        plan = split_artifact(mlp_artifact, auto_cuts(mlp_artifact))
        cluster = local_pipeline_cluster(plan, clock=ManualClock())
        with pytest.raises(ServingError) as info:
            cluster.submit("nope", np.zeros(12, dtype=np.float32))
        assert info.value.code == "unknown-model"
        cluster.close()

    def test_stage_worker_crash_fails_typed_never_wrong_bits(
            self, mlp_artifact):
        # Stage 1's worker answers two requests, then dies emitting its
        # third response frame (the canonical crash-mid-batch, and a
        # dead connection also loses any responses still queued behind
        # it). The two delivered results must be bit-exact; every
        # in-flight request must fail with a typed WorkerError — a
        # crash can never produce wrong bits, only typed failures.
        plan = split_artifact(mlp_artifact, auto_cuts(mlp_artifact))
        cluster = local_pipeline_cluster(
            plan, max_batch=1, clock=ManualClock(),
            fault_plans={1: FaultPlan().kill("to_router", 2)})
        rng = np.random.default_rng(6)
        xs = [rng.normal(size=(12,)).astype(np.float32)
              for _ in range(6)]
        futures = []
        for x in xs[:2]:                     # two full round trips...
            future = cluster.submit("mlp", x)
            cluster.drain()
            futures.append(future)
        futures += cluster.submit_many("mlp", xs[2:])
        cluster.drain()                      # ...then the crash frame
        survivors = [(i, f) for i, f in enumerate(futures)
                     if f.exception(timeout=0) is None]
        victims = [f for f in futures
                   if f.exception(timeout=0) is not None]
        assert len(survivors) == 2 and len(victims) == 4
        expected = staged_reference(mlp_artifact,
                                    [x[None] for x in xs])
        for index, future in survivors:
            assert np.array_equal(future.result(timeout=0),
                                  expected[index])
        for future in victims:
            assert isinstance(future.exception(timeout=0), WorkerError)
        stats = cluster.stats()
        assert stats["mlp"].errors == 4
        cluster.close(drain=False)


# ----------------------------------------------------------------------
# repro.api front door: deploy(devices=[...])
# ----------------------------------------------------------------------
def build_api_pipeline(seed=7, batch=4):
    rng = np.random.default_rng(seed + 1000)
    pipeline = Pipeline(PipelineConfig(batch=batch), model=make_mlp(seed))
    pipeline.calibrate([rng.normal(size=(8, 12)).astype(np.float32)])
    return pipeline


class TestPipelineDeployment:
    def test_overflowing_design_partitions_and_matches_single_device(
            self):
        from dataclasses import replace

        from repro.fpga.devices import get_device
        from repro.fpga.resources import check_fits, reference_designs

        # The acceptance narrative: the batch-4 reference design
        # overflows the small zu3eg — check_fits names the escape
        # hatch — and the same model then deploys across two zu3eg
        # boards as a pipeline, bit-identical to one big device.
        with pytest.raises(ResourceError) as info:
            check_fits(replace(reference_designs()["D2-3"],
                               device=get_device("zu3eg")))
        assert "would fit" in str(info.value)

        api = build_api_pipeline()
        single = api.deploy()
        piped = api.deploy(devices=["zu3eg", "zu3eg"])
        assert piped.num_stages == 2
        rng = np.random.default_rng(9)
        batch = rng.normal(size=(4, 12)).astype(np.float32)
        assert np.array_equal(single.predict(batch), piped.predict(batch))
        one = batch[0]
        assert piped.predict(one).shape == single.predict(one).shape
        piped.close()

    def test_needs_two_devices_and_valid_batch(self):
        api = build_api_pipeline()
        with pytest.raises(ConfigurationError, match=">= 2 devices"):
            api.deploy(devices=["zu3eg"])
        with pytest.raises(ConfigurationError, match="batch"):
            api.deploy(devices=["zu3eg", "zu3eg"], batch=0)

    def test_stage_designs_follow_devices(self):
        api = build_api_pipeline()
        piped = api.deploy(devices=["zu3eg", "7z020"])
        names = [design.device.name for design in piped.designs]
        assert names == ["XCZU3EG", "XC7Z020"]
        assert piped.partition.num_stages == 2
        piped.close()


# ----------------------------------------------------------------------
# Real subprocesses: stage activations on the framed transport
# ----------------------------------------------------------------------
@pytest.mark.subprocess
class TestProcessPipeline:
    def test_two_stage_subprocess_pipeline(self, mlp_artifact, tmp_path):
        plan = split_artifact(mlp_artifact, auto_cuts(mlp_artifact))
        paths = plan.save(tmp_path / "mlp")
        cluster = process_pipeline_cluster(paths, name="mlp",
                                           max_batch=4,
                                           max_wait_ms=2000.0)
        try:
            rng = np.random.default_rng(8)
            xs = [rng.normal(size=(12,)).astype(np.float32)
                  for _ in range(4)]
            futures = cluster.submit_many("mlp", xs)
            assert cluster.drain(timeout=60.0) == 0
            expected = staged_reference(mlp_artifact, [np.stack(xs)])
            for future, want in zip(futures, expected):
                got = future.result(timeout=0)
                # separate-process BLAS may order reductions differently
                assert np.allclose(got, want, atol=1e-6)
        finally:
            cluster.close(drain=False)
