"""The unified front door: registry, PipelineConfig, Pipeline stages,
deployment handles, deprecation shims and the top-level CLI.

Run with ``python -W error::DeprecationWarning -m pytest tests/test_api.py``
(the CI job does): everything here goes through :mod:`repro.api`, so a
DeprecationWarning outside an explicit ``pytest.warns`` block means internal
code regressed onto a legacy path.
"""

import numpy as np
import pytest

from repro import nn
from repro.api import (
    Deployment,
    Pipeline,
    PipelineConfig,
    QuantizedModel,
    get_method,
    get_scheme,
    list_methods,
    list_schemes,
)
from repro.api.cli import main as repro_main
from repro.errors import ConfigurationError
from repro.quant.formatting import format_ratio, format_scheme_spec
from repro.quant.msq import MixedSchemeQuantizer
from repro.quant.partition import PartitionRatio
from repro.quant.quantizers import SchemeQuantizer, verify_on_levels
from repro.quant.schemes import Scheme, SchemeSpec
from repro.tensor import Tensor
from tests.conftest import make_mlp, make_toy_task

# Every published method of Tables III-VI must be reachable by config.
TABLE_METHODS = ("dorefa", "pact", "dsq", "qil", "ul2q", "lq-nets", "lsq",
                 "eqm")


def toy_harness(seed_base=50):
    x, y = make_toy_task()

    def make_batches(epoch):
        order = np.random.default_rng(seed_base + epoch).permutation(len(x))
        for start in range(0, len(order), 64):
            idx = order[start:start + 64]
            yield x[idx], y[idx]

    def loss_fn(m, batch):
        xb, yb = batch
        return nn.cross_entropy(m(Tensor(xb)), yb)

    return x, y, make_batches, loss_fn


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_schemes_registered(self):
        assert set(list_schemes()) == {"fixed", "p2", "sp2", "msq"}

    def test_all_table_methods_registered(self):
        assert set(list_methods()) == set(TABLE_METHODS)

    def test_method_aliases_resolve_to_same_entry(self):
        assert get_method("LQ_Nets") is get_method("lq-nets")
        assert get_method("µL2Q") is get_method("ul2q")
        assert get_method("u-l2q") is get_method("ul2q")

    def test_unknown_names_raise(self):
        with pytest.raises(ConfigurationError):
            get_scheme("int8")
        with pytest.raises(ConfigurationError):
            get_method("alexnet")

    def test_scheme_factories_build_quantizers(self):
        assert isinstance(get_scheme("sp2").make(4), SchemeQuantizer)
        msq = get_scheme("msq").make(4, ratio="2:1")
        assert isinstance(msq, MixedSchemeQuantizer)
        assert msq.sp2_fraction == pytest.approx(2 / 3)

    def test_scheme_levels_match_enum_dispatch(self):
        from repro.quant.schemes import levels_for

        for name, scheme in (("fixed", Scheme.FIXED), ("p2", Scheme.P2),
                             ("sp2", Scheme.SP2)):
            entry = get_scheme(name)
            assert not entry.mixed
            assert np.array_equal(entry.levels(4, None, None),
                                  levels_for(scheme, 4))

    def test_msq_has_no_single_level_set(self):
        entry = get_scheme("msq")
        assert entry.mixed
        with pytest.raises(ConfigurationError):
            entry.levels(4, None, None)

    def test_paper_projections_registered(self):
        assert get_scheme("fixed").paper_projection is not None
        assert get_scheme("p2").paper_projection is not None
        assert get_scheme("sp2").paper_projection is None  # no closed form

    def test_custom_registered_scheme_runs_through_fit(self, trained_mlp):
        # The advertised extension point: a third-party scheme registered
        # at runtime must work end to end, QAT path included.
        from repro.api import register_scheme, register_scheme_factory
        from repro.api import registry as registry_module

        @register_scheme("toy-halves", description="test-only")
        def _toy_levels(bits, m1=None, m2=None):
            return np.arange(-2.0, 2.5, 0.5)

        @register_scheme_factory("toy-halves")
        def _toy_factory(bits, **_):
            return lambda w: np.clip(np.round(w * 2) / 2, -2.0, 2.0)

        try:
            _, _, make_batches, loss_fn = toy_harness()
            model = make_mlp()
            model.load_state_dict(trained_mlp.state_dict())
            config = PipelineConfig(scheme="toy-halves", epochs=1, lr=0.05)
            quantized = Pipeline(config, model=model).fit(make_batches,
                                                          loss_fn)
            weight = next(iter(quantized.layer_results.values())).values
            assert np.allclose(weight * 2, np.round(weight * 2))
        finally:
            registry_module._SCHEMES.pop("toy-halves")


# ----------------------------------------------------------------------
# PipelineConfig
# ----------------------------------------------------------------------
class TestPipelineConfig:
    def test_defaults_are_the_papers(self):
        config = PipelineConfig()
        assert config.scheme == "msq"
        assert config.uses_admm
        assert config.weight_bits == config.act_bits == 4
        assert config.partition_ratio.sp2_fraction == pytest.approx(2 / 3)
        assert config.design == "D2-3"

    def test_frozen(self):
        with pytest.raises(AttributeError):
            PipelineConfig().weight_bits = 8

    def test_accepts_scheme_enum(self):
        assert PipelineConfig(scheme=Scheme.SP2).scheme == "sp2"

    def test_scheme_case_normalized(self):
        upper = PipelineConfig(scheme="MSQ")
        assert upper.scheme == "msq"
        assert upper == PipelineConfig(scheme="msq")
        assert "SP2:fixed" in upper.describe()

    def test_method_normalized_through_registry(self):
        assert PipelineConfig(method="LQ_Nets").method == "lq-nets"
        assert not PipelineConfig(method="lsq").uses_admm
        assert PipelineConfig(method="admm").uses_admm

    @pytest.mark.parametrize("method", TABLE_METHODS)
    def test_every_table_baseline_reachable(self, method):
        config = PipelineConfig(method=method)
        assert config.method == get_method(method).name

    @pytest.mark.parametrize("bad", [
        {"scheme": "int8"},
        {"method": "alexnet"},
        {"weight_bits": 1},
        {"act_bits": 0},
        {"ratio": "1.2.3:1"},
        {"ratio": "-1:2"},
        {"ratio": 1.5},
        {"lr_schedule": "exponential"},
        {"batch": 0},
        {"epochs": -1},
    ])
    def test_invalid_configs_fail_at_construction(self, bad):
        with pytest.raises(ConfigurationError):
            PipelineConfig(**bad)

    def test_replace_revalidates(self):
        config = PipelineConfig()
        assert config.replace(weight_bits=8).weight_bits == 8
        with pytest.raises(ConfigurationError):
            config.replace(ratio="bogus")

    def test_layer_bits_config_stays_hashable(self):
        config = PipelineConfig(layer_bits={"fc": 8, "conv": 2})
        assert isinstance(hash(config), int)
        assert config.to_qat_config().layer_bits == {"conv": 2, "fc": 8}

    def test_to_qat_config_round_trip(self):
        qat = PipelineConfig(scheme="sp2", weight_bits=3, epochs=2,
                             lr=0.1).to_qat_config()
        assert qat.scheme == Scheme.SP2
        assert qat.weight_bits == 3
        assert qat.epochs == 2


# ----------------------------------------------------------------------
# Pipeline: QAT / PTQ / baselines through the same config object
# ----------------------------------------------------------------------
class TestPipelineFit:
    def test_admm_fit_quantizes_and_deploys(self, trained_mlp, toy_task):
        x, y = toy_task
        _, _, make_batches, loss_fn = toy_harness()
        model = make_mlp()
        model.load_state_dict(trained_mlp.state_dict())
        config = PipelineConfig(scheme="msq", ratio="2:1", epochs=3, lr=0.05)
        pipeline = Pipeline(config, model=model)
        quantized = pipeline.fit(make_batches, loss_fn)
        assert isinstance(quantized, QuantizedModel)
        assert quantized.layer_results
        for result in quantized.layer_results.values():
            assert result.partition is not None
        assert 0.5 < quantized.sp2_row_fraction() < 0.8
        assert len(quantized.history) == 3

        deployment = pipeline.deploy(batch=8, sample_input=x[:8])
        assert np.array_equal(deployment.predict(x[:8]),
                              quantized.predict(x[:8]))

    def test_fit_remembers_first_batch_sample(self, trained_mlp):
        # The README flow: fit() then deploy() with no explicit sample.
        _, _, make_batches, loss_fn = toy_harness()
        model = make_mlp()
        model.load_state_dict(trained_mlp.state_dict())
        pipeline = Pipeline(PipelineConfig(epochs=2, lr=0.05), model=model)
        quantized = pipeline.fit(make_batches, loss_fn)
        deployment = pipeline.deploy()
        assert deployment.plan.input_shape == (12,)
        batch = quantized.sample_input[:4]
        assert np.array_equal(deployment.predict(batch),
                              quantized.predict(batch))

    def test_single_scheme_fit_lands_on_levels(self, trained_mlp):
        _, _, make_batches, loss_fn = toy_harness()
        model = make_mlp()
        model.load_state_dict(trained_mlp.state_dict())
        config = PipelineConfig(scheme="sp2", epochs=2, lr=0.05)
        quantized = Pipeline(config, model=model).fit(make_batches, loss_fn)
        for result in quantized.layer_results.values():
            verify_on_levels(result)

    @pytest.mark.parametrize("method", ["lsq", "pact"])
    def test_baseline_methods_through_same_config(self, method, trained_mlp,
                                                  toy_task):
        from tests.conftest import accuracy_of

        x, y = toy_task
        _, _, make_batches, loss_fn = toy_harness()
        model = make_mlp()
        model.load_state_dict(trained_mlp.state_dict())
        config = PipelineConfig(method=method, epochs=2, lr=0.02)
        pipeline = Pipeline(config, model=model)
        quantized = pipeline.fit(make_batches, loss_fn)
        assert len(quantized.history) == 2
        assert accuracy_of(model, x, y) > 0.5
        if method == "lsq":
            # LSQ detaches its hooks at finalize; the projected weights
            # export raw but still serve bit-exactly.
            deployment = pipeline.deploy(sample_input=x[:4])
            assert np.array_equal(deployment.predict(x[:4]),
                                  quantized.predict(x[:4]))
        else:
            # PACT keeps its own activation hook live at eval time; export
            # must refuse with the actual cause, not a bit-drift error.
            from repro.errors import ExportError

            with pytest.raises(ExportError, match="non-exportable"):
                pipeline.deploy(sample_input=x[:4])

    def test_method_config_rejects_calibrate(self):
        with pytest.raises(ConfigurationError):
            Pipeline(PipelineConfig(method="lsq"),
                     model=make_mlp()).calibrate([np.zeros((2, 12),
                                                           dtype=np.float32)])

    def test_missing_model_and_empty_deploy_fail_clearly(self):
        pipeline = Pipeline(PipelineConfig())
        with pytest.raises(ConfigurationError):
            pipeline.calibrate([np.zeros((2, 12), dtype=np.float32)])
        with pytest.raises(ConfigurationError):
            pipeline.deploy()


class TestPipelineCalibrate:
    @pytest.mark.parametrize("name", ["resnet_tiny", "mobilenet_v2",
                                      "lstm_lm"])
    def test_ptq_round_trip_bit_identical(self, name, tmp_path):
        from repro.serve.cli import build_model

        model, sample = build_model(name, seed=0)
        rng = np.random.default_rng(100)
        pipeline = Pipeline(PipelineConfig(), model=model)
        quantized = pipeline.calibrate([sample(rng, 8) for _ in range(2)])
        path = tmp_path / f"{name}.npz"
        deployment = pipeline.deploy(batch=16, name=name, path=path)
        batch = sample(rng, 4)
        assert np.array_equal(deployment.predict(batch),
                              quantized.predict(batch))
        # Single-request path and reloaded-artifact path agree too.
        reloaded = Deployment.load(path, batch=4)
        assert np.array_equal(reloaded.predict(batch[0]),
                              quantized.predict(batch[:1])[0])

    def test_calibrate_remembers_sample_input(self):
        rng = np.random.default_rng(0)
        pipeline = Pipeline(PipelineConfig(), model=make_mlp())
        pipeline.calibrate([rng.normal(size=(4, 12)).astype(np.float32)])
        deployment = pipeline.deploy()   # no explicit sample_input
        assert deployment.plan.input_shape == (12,)

    def test_calibrate_reports_act_quantizers(self):
        from repro.quant.ste import ActivationQuantizer

        rng = np.random.default_rng(0)
        pipeline = Pipeline(PipelineConfig(), model=make_mlp())
        quantized = pipeline.calibrate(
            [rng.normal(size=(4, 12)).astype(np.float32)])
        assert quantized.act_quantizers  # first layer skipped, rest covered
        for quantizer in quantized.act_quantizers.values():
            assert isinstance(quantizer, ActivationQuantizer)
            assert not quantizer.calibrating

    def test_calibrate_honors_weight_only_config(self):
        # quantize_activations=False means exactly that (table5's setup).
        rng = np.random.default_rng(0)
        model = make_mlp()
        config = PipelineConfig(quantize_activations=False)
        quantized = Pipeline(config, model=model).calibrate(
            [rng.normal(size=(4, 12)).astype(np.float32)])
        assert quantized.act_quantizers == {}
        assert all(getattr(module, "act_quant", None) is None
                   for _, module in model.named_modules())
        assert quantized.layer_results   # weights still quantized

    def test_calibrate_honors_skip_modules_and_layer_bits(self):
        rng = np.random.default_rng(0)
        model = make_mlp()
        config = PipelineConfig(scheme="fixed", skip_modules=("4",),
                                layer_bits={"0": 8})
        quantized = Pipeline(config, model=model).calibrate(
            [rng.normal(size=(4, 12)).astype(np.float32)])
        assert not any(name.startswith("4") for name
                       in quantized.layer_results)
        assert quantized.layer_results["0.weight"].spec.bits == 8
        assert quantized.layer_results["2.weight"].spec.bits == 4

    def test_single_scheme_ptq(self):
        rng = np.random.default_rng(0)
        model = make_mlp()
        config = PipelineConfig(scheme="fixed", weight_bits=4)
        quantized = Pipeline(config, model=model).calibrate(
            [rng.normal(size=(4, 12)).astype(np.float32)])
        for result in quantized.layer_results.values():
            verify_on_levels(result)


class TestDeployment:
    def test_serve_drains_scheduler_with_stats(self, tmp_path):
        from repro.serve.cli import build_model

        model, sample = build_model("resnet_tiny", seed=0)
        rng = np.random.default_rng(3)
        pipeline = Pipeline(PipelineConfig(batch=4), model=model)
        pipeline.calibrate([sample(rng, 8)])
        deployment = pipeline.deploy()
        stats = deployment.serve([sample(rng, 1)[0] for _ in range(10)])
        assert stats.requests == 10
        assert stats.batches == 3
        assert deployment.stats.requests == 10

    def test_large_batch_predict_chunks(self):
        rng = np.random.default_rng(1)
        pipeline = Pipeline(PipelineConfig(batch=4), model=make_mlp())
        quantized = pipeline.calibrate(
            [rng.normal(size=(4, 12)).astype(np.float32)])
        deployment = pipeline.deploy()
        x = rng.normal(size=(10, 12)).astype(np.float32)
        out = deployment.predict(x)
        assert out.shape[0] == 10
        np.testing.assert_allclose(out, quantized.predict(x), rtol=1e-5,
                                   atol=1e-6)

    def test_simulate_uses_configured_design(self):
        rng = np.random.default_rng(1)
        pipeline = Pipeline(PipelineConfig(design="D1-2"), model=make_mlp())
        pipeline.calibrate([rng.normal(size=(4, 12)).astype(np.float32)])
        deployment = pipeline.deploy()
        assert deployment.engine.design.name == "D1-2"
        assert deployment.simulate(batch=1).latency_ms > 0

    def test_unknown_design_rejected(self):
        rng = np.random.default_rng(1)
        pipeline = Pipeline(PipelineConfig(design="D9-9"), model=make_mlp())
        pipeline.calibrate([rng.normal(size=(4, 12)).astype(np.float32)])
        with pytest.raises(ConfigurationError):
            pipeline.deploy()


# ----------------------------------------------------------------------
# Deprecation shims: old homes keep working, warn, and match the new API
# ----------------------------------------------------------------------
class TestDeprecationShims:
    def test_quantize_model_warns_and_matches_pipeline(self, trained_mlp):
        from repro.quant import QATConfig, quantize_model

        def run_legacy():
            model = make_mlp()
            model.load_state_dict(trained_mlp.state_dict())
            _, _, make_batches, loss_fn = toy_harness()
            config = QATConfig(scheme="msq", weight_bits=4, act_bits=4,
                               ratio="2:1", epochs=2, lr=0.05)
            with pytest.warns(DeprecationWarning, match="quantize_model"):
                result = quantize_model(model, make_batches, loss_fn, config)
            return model, result

        def run_api():
            model = make_mlp()
            model.load_state_dict(trained_mlp.state_dict())
            _, _, make_batches, loss_fn = toy_harness()
            config = PipelineConfig(scheme="msq", ratio="2:1", epochs=2,
                                    lr=0.05)
            return model, Pipeline(config, model=model).fit(make_batches,
                                                            loss_fn)

        legacy_model, legacy = run_legacy()
        api_model, api = run_api()
        for (name, old), (name2, new) in zip(
                sorted(legacy_model.state_dict().items()),
                sorted(api_model.state_dict().items())):
            assert name == name2
            assert np.array_equal(old, new), name
        assert sorted(legacy.layer_results) == sorted(api.layer_results)

    def test_get_baseline_warns_and_matches_registry(self):
        from repro.quant.baselines import get_baseline

        with pytest.warns(DeprecationWarning, match="get_baseline"):
            legacy = get_baseline("lq_nets", weight_bits=4, act_bits=4)
        entry = get_method("lq-nets")
        assert type(legacy) is entry.cls
        assert legacy.weight_bits == 4
        with pytest.warns(DeprecationWarning):
            with pytest.raises(KeyError):
                get_baseline("alexnet")

    def test_batch_scheduler_warns_and_serve_stats_bit_identical(self):
        """The legacy submit/run surface warns, and its ServeStats equal
        Deployment.serve's field for field (same injected clock model)."""
        from repro.serve import BatchScheduler

        class FakeClock:
            def __init__(self):
                self.now = 0.0

            def __call__(self):
                self.now += 0.001
                return self.now

        rng = np.random.default_rng(4)
        pipeline = Pipeline(PipelineConfig(batch=4), model=make_mlp())
        pipeline.calibrate([rng.normal(size=(8, 12)).astype(np.float32)])
        deployment = pipeline.deploy()
        payloads = [rng.normal(size=(12,)).astype(np.float32)
                    for _ in range(10)]

        new_stats = deployment.serve(payloads, clock=FakeClock())

        scheduler = BatchScheduler(deployment.engine, max_batch=4,
                                   clock=FakeClock())
        with pytest.warns(DeprecationWarning, match="BatchScheduler"):
            requests = [scheduler.submit(p) for p in payloads]
            legacy_stats = scheduler.run()
        assert legacy_stats == new_stats          # bit-identical dataclass
        assert legacy_stats.latencies_ms == new_stats.latencies_ms
        assert all(r.done for r in requests)

    def test_deployment_scheduler_helper_warns(self):
        rng = np.random.default_rng(5)
        pipeline = Pipeline(PipelineConfig(batch=4), model=make_mlp())
        pipeline.calibrate([rng.normal(size=(8, 12)).astype(np.float32)])
        deployment = pipeline.deploy()
        with pytest.warns(DeprecationWarning, match="Deployment.scheduler"):
            deployment.scheduler()

    def test_export_model_warns_and_matches_build_artifact(self, tmp_path):
        from repro.serve import export_model
        from repro.serve.export import build_artifact

        rng = np.random.default_rng(2)
        model = make_mlp()
        pipeline = Pipeline(PipelineConfig(), model=model)
        quantized = pipeline.calibrate(
            [rng.normal(size=(4, 12)).astype(np.float32)])
        sample = rng.normal(size=(4, 12)).astype(np.float32)
        with pytest.warns(DeprecationWarning, match="export_model"):
            legacy = export_model(model, sample,
                                  layer_results=quantized.layer_results)
        new = build_artifact(model, sample,
                             layer_results=quantized.layer_results)
        assert legacy.manifest == new.manifest
        assert sorted(legacy.arrays) == sorted(new.arrays)
        for key in legacy.arrays:
            assert np.array_equal(legacy.arrays[key], new.arrays[key]), key


# ----------------------------------------------------------------------
# Shared formatting (CLI info output and logs agree)
# ----------------------------------------------------------------------
class TestFormatting:
    def test_spec_describe_goes_through_helper(self):
        spec = SchemeSpec(Scheme.SP2, 4)
        assert spec.describe() == format_scheme_spec("sp2", 4, m1=spec.m1,
                                                     m2=spec.m2)
        assert SchemeSpec(Scheme.FIXED, 4).describe() == "FIXED(m=4)"

    def test_ratio_describe_goes_through_helper(self):
        ratio = PartitionRatio.from_string("2:1")
        assert ratio.describe() == format_ratio(2, 1) == "SP2:fixed = 2:1"

    def test_reprs_embed_the_shared_labels(self):
        quantizer = SchemeQuantizer(Scheme.SP2, 4)
        assert quantizer.spec.describe() in repr(quantizer)
        mixed = MixedSchemeQuantizer(bits=4, ratio="2:1")
        assert mixed.ratio.describe() in repr(mixed)

    def test_config_describe_uses_ratio_label(self):
        assert "SP2:fixed = 2:1" in PipelineConfig(ratio="2:1").describe()


# ----------------------------------------------------------------------
# PartitionRatio.from_string hardening
# ----------------------------------------------------------------------
class TestPartitionRatioParsing:
    @pytest.mark.parametrize("bad", ["1.2.3:1", "-1:2", "2:-1", "abc",
                                     "1:2:3", "2", ":", "nan:1", "inf:1",
                                     "0:0", ""])
    def test_malformed_ratios_raise_value_error(self, bad):
        with pytest.raises(ValueError):
            PartitionRatio.from_string(bad)

    def test_non_string_rejected(self):
        with pytest.raises(ValueError):
            PartitionRatio.from_string(2.0)

    def test_order_kwarg_is_normalized(self):
        assert PartitionRatio.from_string("1:2", order=" Fixed:SP2 ").sp2 == 2
        assert PartitionRatio.from_string("1:2", order="SP2:FIXED").sp2 == 1
        with pytest.raises(ValueError):
            PartitionRatio.from_string("1:2", order="weird")

    def test_scientific_notation_accepted(self):
        assert PartitionRatio.from_string("1e1:5").sp2 == 10.0


# ----------------------------------------------------------------------
# python -m repro CLI
# ----------------------------------------------------------------------
class TestReproCli:
    def test_help_lists_all_subcommands(self, capsys):
        assert repro_main(["--help"]) == 0
        out = capsys.readouterr().out
        for command in ("quantize", "export", "serve", "experiment",
                        "registry"):
            assert command in out

    def test_quantize_then_serve_round_trip(self, tmp_path, capsys):
        path = str(tmp_path / "cli.npz")
        assert repro_main(["quantize", "--model", "resnet_tiny",
                           "--out", path]) == 0
        assert repro_main(["serve", "info", path]) == 0
        assert repro_main(["serve", "run", path, "--requests", "6",
                           "--batch", "3"]) == 0
        out = capsys.readouterr().out
        assert "quantized:    10 layers (msq)" in out
        assert "simulated FPGA" in out

    def test_quantize_single_scheme(self, tmp_path, capsys):
        path = str(tmp_path / "fixed.npz")
        assert repro_main(["quantize", "--model", "resnet_tiny",
                           "--scheme", "fixed", "--out", path]) == 0
        assert "quantized:    10 layers (fixed)" in capsys.readouterr().out

    def test_export_alias_is_quantize(self, tmp_path, capsys):
        path = str(tmp_path / "alias.npz")
        assert repro_main(["export", "--model", "resnet_tiny",
                           "--out", path]) == 0
        out = capsys.readouterr().out
        assert "quantized + deployed resnet_tiny" in out
        # The alias accepts the full quantize flag set, e.g. --scheme.
        assert repro_main(["export", "--model", "resnet_tiny",
                           "--scheme", "sp2",
                           "--out", str(tmp_path / "sp2.npz")]) == 0

    def test_experiment_forwarding_lists_registry(self, capsys):
        assert repro_main(["experiment"]) == 0
        assert "table2" in capsys.readouterr().out

    def test_registry_lists_schemes_and_methods(self, capsys):
        assert repro_main(["registry"]) == 0
        out = capsys.readouterr().out
        assert "sp2" in out and "lq-nets" in out

    def test_unknown_command_fails(self, capsys):
        assert repro_main(["bogus"]) == 2
        assert "unknown command" in capsys.readouterr().err

    def test_cli_error_paths_return_1(self, tmp_path):
        missing = str(tmp_path / "missing.npz")
        assert repro_main(["serve", "info", missing]) == 1
