"""End-to-end quantization-aware training (Alg. 1/2 orchestration)."""

import numpy as np
import pytest

from repro import nn
from repro.errors import ConfigurationError
from repro.quant import (
    QATConfig,
    Scheme,
    install_activation_quantizers,
    quantize_model,
    train_fp,
    verify_on_levels,
)
from repro.quant.msq import MSQResult
from repro.quant.partition import to_gemm_matrix
from repro.quant.quantizers import project_to_levels
from repro.quant.schemes import fixed_point_levels, sp2_levels
from repro.tensor import Tensor
from tests.conftest import accuracy_of, make_mlp


class TestConfig:
    def test_scheme_string_coerced(self):
        assert QATConfig(scheme="sp2").scheme == Scheme.SP2

    def test_invalid_schedule(self):
        with pytest.raises(ConfigurationError):
            QATConfig(lr_schedule="linear")


class TestActivationInstallation:
    def test_skip_first(self):
        model = make_mlp()
        installed = install_activation_quantizers(model, 4, skip_first=True)
        assert "0" not in installed
        assert len(installed) == 2

    def test_rnn_gets_signed(self):
        model = nn.LSTM(4, 6)
        installed = install_activation_quantizers(model, 4, skip_first=False)
        assert all(q.signed for q in installed.values())

    def test_mlp_gets_unsigned(self):
        model = make_mlp()
        installed = install_activation_quantizers(model, 4, skip_first=False)
        assert all(not q.signed for q in installed.values())


class TestQuantizeModel:
    def test_weights_on_level_sets(self, qat_result):
        for result in qat_result.layer_results.values():
            assert isinstance(result, MSQResult)
            matrix = to_gemm_matrix(result.values)
            for row in range(matrix.shape[0]):
                levels = (sp2_levels(4) if result.partition.sp2_mask[row]
                          else fixed_point_levels(4))
                unit = matrix[row] / result.row_alphas[row]
                assert np.allclose(unit, project_to_levels(unit, levels),
                                   atol=1e-9)

    def test_sp2_fraction_close_to_target(self, qat_result):
        assert qat_result.sp2_row_fraction() == pytest.approx(2 / 3, abs=0.08)

    def test_activation_quantizers_frozen(self, qat_result):
        assert qat_result.act_quantizers
        for quantizer in qat_result.act_quantizers.values():
            assert not quantizer.calibrating
            assert quantizer.alpha is not None

    def test_history_recorded(self, qat_result):
        assert len(qat_result.history) == 6
        assert all("loss" in record for record in qat_result.history)

    def test_accuracy_retained(self, qat_result, toy_task, trained_mlp):
        x, y = toy_task
        fp_acc = accuracy_of(trained_mlp, x, y)
        q_acc = accuracy_of(qat_result.model, x, y)
        assert q_acc >= fp_acc - 0.12

    def test_model_in_eval_mode_after(self, qat_result):
        assert not qat_result.model.training


class TestSchemeVariants:
    @pytest.mark.parametrize("scheme", [Scheme.FIXED, Scheme.P2, Scheme.SP2])
    def test_single_scheme_end_to_end(self, scheme, toy_task):
        x, y = toy_task
        model = make_mlp()

        def make_batches(epoch):
            yield x[:128], y[:128]

        def loss_fn(m, batch):
            xb, yb = batch
            return nn.cross_entropy(m(Tensor(xb)), yb)

        config = QATConfig(scheme=scheme, weight_bits=4, act_bits=4,
                           epochs=3, lr=0.05)
        result = quantize_model(model, make_batches, loss_fn, config)
        for layer_result in result.layer_results.values():
            verify_on_levels(layer_result)

    def test_weight_only_quantization(self, toy_task):
        x, y = toy_task
        model = make_mlp()

        def make_batches(epoch):
            yield x[:128], y[:128]

        def loss_fn(m, batch):
            xb, yb = batch
            return nn.cross_entropy(m(Tensor(xb)), yb)

        config = QATConfig(scheme=Scheme.FIXED, epochs=2, lr=0.05,
                           quantize_activations=False)
        result = quantize_model(model, make_batches, loss_fn, config)
        assert result.act_quantizers == {}


class TestInterLayerMultiPrecision:
    """§I extension: intra-layer MSQ composed with inter-layer precision."""

    def _run(self, config, toy_task):
        x, y = toy_task
        model = make_mlp()

        def make_batches(epoch):
            yield x[:128], y[:128]

        def loss_fn(m, batch):
            xb, yb = batch
            return nn.cross_entropy(m(Tensor(xb)), yb)

        return quantize_model(model, make_batches, loss_fn, config)

    def test_layer_bits_override(self, toy_task):
        config = QATConfig(scheme=Scheme.MSQ, weight_bits=4, epochs=2,
                           lr=0.05, layer_bits={"4": 8})
        result = self._run(config, toy_task)
        assert result.layer_results["4.weight"].spec_fixed.bits == 8
        assert result.layer_results["0.weight"].spec_fixed.bits == 4

    def test_override_with_single_scheme(self, toy_task):
        config = QATConfig(scheme=Scheme.FIXED, weight_bits=4, epochs=2,
                           lr=0.05, layer_bits={"0": 6})
        result = self._run(config, toy_task)
        assert result.layer_results["0.weight"].spec.bits == 6
        verify_on_levels(result.layer_results["0.weight"])

    def test_default_when_no_pattern_matches(self, toy_task):
        config = QATConfig(scheme=Scheme.FIXED, weight_bits=4, epochs=2,
                           lr=0.05, layer_bits={"nonexistent": 8})
        result = self._run(config, toy_task)
        assert all(r.spec.bits == 4 for r in result.layer_results.values())


class TestTrainFP:
    def test_reduces_loss(self, toy_task):
        x, y = toy_task
        model = make_mlp()

        def make_batches(epoch):
            yield x, y

        def loss_fn(m, batch):
            xb, yb = batch
            return nn.cross_entropy(m(Tensor(xb)), yb)

        history = train_fp(model, make_batches, loss_fn, epochs=10, lr=0.1)
        assert history[-1]["loss"] < history[0]["loss"] * 0.7
