"""Module system, layers, losses, optimizers, schedulers."""

import numpy as np
import pytest

from repro import nn
from repro.errors import ConfigurationError
from repro.tensor import Tensor
from repro.tensor.tensor import gradcheck


class TestModuleSystem:
    def test_parameter_registration(self):
        layer = nn.Linear(3, 4)
        names = [name for name, _ in layer.named_parameters()]
        assert names == ["weight", "bias"]

    def test_nested_module_names(self):
        model = nn.Sequential(nn.Linear(2, 3), nn.ReLU(), nn.Linear(3, 1))
        names = [name for name, _ in model.named_parameters()]
        assert "0.weight" in names and "2.bias" in names

    def test_state_dict_roundtrip(self):
        a = nn.Sequential(nn.Linear(4, 5), nn.BatchNorm1d(5))
        b = nn.Sequential(nn.Linear(4, 5, rng=np.random.default_rng(99)),
                          nn.BatchNorm1d(5))
        b.load_state_dict(a.state_dict())
        for (_, pa), (_, pb) in zip(a.named_parameters(),
                                    b.named_parameters()):
            assert np.array_equal(pa.data, pb.data)

    def test_load_missing_key_raises(self):
        model = nn.Linear(2, 2)
        with pytest.raises(KeyError):
            model.load_state_dict({})

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Sequential(nn.Dropout(0.5)))
        model.eval()
        assert not model[0][0].training

    def test_zero_grad(self):
        model = nn.Linear(3, 2)
        out = model(Tensor(np.ones((1, 3), dtype=np.float32)))
        out.sum().backward()
        assert model.weight.grad is not None
        model.zero_grad()
        assert model.weight.grad is None

    def test_num_parameters(self):
        model = nn.Linear(3, 4)
        assert model.num_parameters() == 3 * 4 + 4

    def test_buffers_in_state_dict(self):
        bn = nn.BatchNorm2d(4)
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state


class TestLayers:
    def test_linear_matches_manual(self, rng):
        layer = nn.Linear(4, 3)
        x = rng.normal(size=(5, 4)).astype(np.float32)
        ref = x @ layer.weight.data.T + layer.bias.data
        assert np.allclose(layer(Tensor(x)).data, ref, atol=1e-5)

    def test_batchnorm2d_normalizes_in_training(self, rng):
        bn = nn.BatchNorm2d(3)
        x = Tensor(rng.normal(2.0, 3.0, size=(8, 3, 5, 5)).astype(np.float32))
        out = bn(x)
        assert np.allclose(out.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-4)
        assert np.allclose(out.data.std(axis=(0, 2, 3)), 1.0, atol=1e-2)

    def test_batchnorm2d_running_stats_used_in_eval(self, rng):
        bn = nn.BatchNorm2d(2)
        x = rng.normal(1.0, 2.0, size=(16, 2, 4, 4)).astype(np.float32)
        for _ in range(50):
            bn(Tensor(x))
        bn.eval()
        out = bn(Tensor(x))
        assert np.allclose(out.data.mean(axis=(0, 2, 3)), 0.0, atol=0.2)

    def test_batchnorm_gradcheck(self, rng):
        bn = nn.BatchNorm2d(2)
        x = Tensor(rng.normal(size=(4, 2, 3, 3)), requires_grad=True)
        assert gradcheck(lambda x: (bn(x) ** 2).sum(), [x])

    def test_relu6_clips(self):
        layer = nn.ReLU6()
        out = layer(Tensor(np.array([-1.0, 3.0, 9.0])))
        assert np.allclose(out.data, [0.0, 3.0, 6.0])

    def test_dropout_eval_is_identity(self, rng):
        layer = nn.Dropout(0.5)
        layer.eval()
        x = rng.normal(size=(4, 4)).astype(np.float32)
        assert np.array_equal(layer(Tensor(x)).data, x)

    def test_dropout_scales_expectation(self):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((200, 200), dtype=np.float32))
        out = layer(x)
        assert abs(out.data.mean() - 1.0) < 0.05

    def test_dropout_invalid_p(self):
        with pytest.raises(ConfigurationError):
            nn.Dropout(1.0)

    def test_embedding_lookup_and_grad(self):
        emb = nn.Embedding(5, 3)
        out = emb(np.array([[0, 1], [1, 4]]))
        assert out.shape == (2, 2, 3)
        out.sum().backward()
        # Token 1 appears twice -> gradient 2, token 2 never -> 0.
        assert np.allclose(emb.weight.grad[1], 2.0)
        assert np.allclose(emb.weight.grad[2], 0.0)

    def test_conv_layer_groups_validation(self):
        with pytest.raises(ConfigurationError):
            nn.Conv2d(3, 6, 3, groups=2)

    def test_flatten_layer(self, rng):
        layer = nn.Flatten()
        assert layer(Tensor(rng.normal(size=(2, 3, 4)))).shape == (2, 12)


class TestLosses:
    def test_cross_entropy_matches_manual(self, rng):
        logits = rng.normal(size=(6, 4))
        targets = rng.integers(0, 4, size=6)
        loss = nn.cross_entropy(Tensor(logits), targets)
        exp = np.exp(logits - logits.max(axis=1, keepdims=True))
        probs = exp / exp.sum(axis=1, keepdims=True)
        manual = -np.log(probs[np.arange(6), targets]).mean()
        assert np.isclose(loss.item(), manual, atol=1e-6)

    def test_cross_entropy_gradient(self, rng):
        logits = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        targets = rng.integers(0, 3, size=5)
        assert gradcheck(lambda l: nn.cross_entropy(l, targets), [logits])

    def test_softmax_sums_to_one(self, rng):
        out = nn.softmax(Tensor(rng.normal(size=(4, 7))))
        assert np.allclose(out.data.sum(axis=1), 1.0, atol=1e-6)

    def test_log_softmax_consistent(self, rng):
        x = Tensor(rng.normal(size=(3, 5)))
        assert np.allclose(nn.log_softmax(x).data,
                           np.log(nn.softmax(x).data), atol=1e-6)

    def test_mse_l1(self):
        pred = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        target = np.array([0.0, 4.0])
        assert np.isclose(nn.mse_loss(pred, target).item(), 2.5)
        assert np.isclose(nn.l1_loss(pred, target).item(), 1.5)

    def test_bce_with_logits_stable_and_correct(self):
        logits = Tensor(np.array([-100.0, 0.0, 100.0]))
        targets = np.array([0.0, 1.0, 1.0])
        loss = nn.bce_with_logits(logits, targets)
        assert np.isfinite(loss.item())
        assert np.isclose(loss.item(), np.log(2.0) / 3.0, atol=1e-6)


class TestOptimizers:
    def test_sgd_converges_quadratic(self):
        w = nn.Parameter(np.array([5.0], dtype=np.float64))
        opt = nn.SGD([w], lr=0.1)
        for _ in range(100):
            loss = (w * w).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert abs(w.data[0]) < 1e-3

    def test_sgd_momentum_faster_than_plain(self):
        def run(momentum):
            w = nn.Parameter(np.array([5.0], dtype=np.float64))
            opt = nn.SGD([w], lr=0.01, momentum=momentum)
            for _ in range(50):
                loss = (w * w).sum()
                opt.zero_grad()
                loss.backward()
                opt.step()
            return abs(w.data[0])

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks_parameters(self):
        def run(weight_decay):
            w = nn.Parameter(np.array([1.0], dtype=np.float64))
            opt = nn.SGD([w], lr=0.1, weight_decay=weight_decay)
            for _ in range(10):
                loss = (w * 0.0).sum()  # zero task gradient, grad exists
                opt.zero_grad()
                loss.backward()
                opt.step()
            return w.data[0]

        assert run(0.1) < run(0.0) == 1.0

    def test_params_without_grad_skipped(self):
        w = nn.Parameter(np.array([1.0], dtype=np.float64))
        used = nn.Parameter(np.array([1.0], dtype=np.float64))
        opt = nn.SGD([w, used], lr=0.1, weight_decay=0.1)
        loss = (used * used).sum()
        opt.zero_grad()
        loss.backward()
        opt.step()
        assert w.data[0] == 1.0  # never received a gradient
        assert used.data[0] < 1.0

    def test_adam_converges(self):
        w = nn.Parameter(np.array([3.0, -3.0], dtype=np.float64))
        opt = nn.Adam([w], lr=0.1)
        for _ in range(200):
            loss = (w * w).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert np.all(np.abs(w.data) < 1e-2)

    def test_empty_parameters_raises(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)


class TestSchedulers:
    def _opt(self):
        return nn.SGD([nn.Parameter(np.zeros(1))], lr=1.0)

    def test_step_lr(self):
        opt = self._opt()
        sched = nn.StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(4):
            sched.step()
            lrs.append(opt.lr)
        assert np.allclose(lrs, [1.0, 0.1, 0.1, 0.01])

    def test_multistep_lr(self):
        opt = self._opt()
        sched = nn.MultiStepLR(opt, milestones=[1, 3], gamma=0.5)
        lrs = []
        for _ in range(4):
            sched.step()
            lrs.append(opt.lr)
        assert np.allclose(lrs, [0.5, 0.5, 0.25, 0.25])

    def test_cosine_endpoints(self):
        opt = self._opt()
        sched = nn.CosineAnnealingLR(opt, t_max=10, eta_min=0.1)
        for _ in range(10):
            sched.step()
        assert np.isclose(opt.lr, 0.1, atol=1e-9)

    def test_cosine_monotone_decreasing(self):
        opt = self._opt()
        sched = nn.CosineAnnealingLR(opt, t_max=8)
        previous = opt.lr
        for _ in range(8):
            sched.step()
            assert opt.lr <= previous + 1e-12
            previous = opt.lr
