"""Backend parity: every registered backend == reference == eager, bitwise.

The compile pipeline's whole contract is that backend choice is invisible
in the output bits: the reference backend is verified against eager
inference at export, and every other backend is verified against the
reference at compile time plus once per served batch size. This suite
drives all exported model families through every registered backend and
asserts exact equality, and covers the satellite numerics fixes
(activation fake-quant simplification, overflow-free sigmoid).
"""

import warnings

import numpy as np
import pytest

from repro.quant.ste import ActivationQuantizer
from repro.serve import (
    ExecutionPlan,
    InferenceEngine,
    list_backends,
    post_training_quantize,
)
from repro.serve.cli import build_model
from repro.serve.export import build_artifact, eager_forward
from repro.tensor import stable_sigmoid

# One zoo model per exported family named in the paper's tables.
FAMILIES = {
    "resnet": "resnet_tiny",
    "mobilenet_v2": "mobilenet_v2",
    "lstm": "lstm_lm",
    "gru": "gru_speech",
    "yolo_head": "yolo_lite",
}

ALL_BACKENDS = ("reference", "fused", "compiled")
OPTIMIZED_BACKENDS = ("fused", "compiled")


def _require(backend: str) -> None:
    """Skip compiled-backend cases on machines without a C compiler
    (the backend itself would silently degrade to fused there, which is
    covered by its own fallback tests, not parity)."""
    if backend == "compiled":
        from repro.serve.codegen import compiler_probe

        compiler, note = compiler_probe()
        if compiler is None:
            pytest.skip(f"compiled backend needs a C compiler: {note}")


@pytest.fixture(scope="module")
def family_artifacts():
    built = {}
    for family, name in FAMILIES.items():
        model, sample = build_model(name, seed=0)
        rng = np.random.default_rng(11)
        results = post_training_quantize(model, [sample(rng, 8)])
        artifact = build_artifact(model, sample(rng, 4),
                                  layer_results=results, name=name)
        built[family] = (model, artifact, sample)
    return built


class TestBackendParity:
    def test_registry_has_all_backends(self):
        assert set(ALL_BACKENDS) <= set(list_backends())

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("backend", sorted(ALL_BACKENDS))
    def test_backend_bit_identical_to_reference_and_eager(
            self, family, backend, family_artifacts):
        _require(backend)
        model, artifact, sample = family_artifacts[family]
        rng = np.random.default_rng(101)
        batch = sample(rng, 6)
        reference = ExecutionPlan(artifact)
        plan = ExecutionPlan(artifact, backend=backend)
        assert plan.backend == backend
        out = plan.forward(batch)
        assert np.array_equal(out, reference.forward(batch))
        assert np.array_equal(out, eager_forward(model, batch))

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("backend", sorted(OPTIMIZED_BACKENDS))
    def test_optimized_matches_across_batch_sizes(self, family, backend,
                                                  family_artifacts):
        _require(backend)
        _, artifact, sample = family_artifacts[family]
        rng = np.random.default_rng(5)
        reference = ExecutionPlan(artifact)
        optimized = ExecutionPlan(artifact, backend=backend)
        for n in (1, 2, 7, 16):
            batch = sample(rng, n)
            assert np.array_equal(optimized.forward(batch),
                                  reference.forward(batch)), n

    def test_engine_load_accepts_backend(self, family_artifacts, tmp_path):
        _, artifact, sample = family_artifacts["resnet"]
        path = tmp_path / "rt.npz"
        artifact.save(path)
        engine = InferenceEngine.load(path, backend="fused")
        assert engine.backend == "fused"
        rng = np.random.default_rng(3)
        batch = sample(rng, 4)
        assert np.array_equal(engine.infer(batch),
                              ExecutionPlan(artifact).forward(batch))

    @pytest.mark.parametrize("backend", sorted(OPTIMIZED_BACKENDS))
    def test_optimized_outputs_are_stable_across_calls(
            self, backend, family_artifacts):
        # Optimized kernels reuse pooled scratch; returned results must not
        # be aliased into it (a second forward must not corrupt the first's
        # returned array).
        _require(backend)
        _, artifact, sample = family_artifacts["resnet"]
        plan = ExecutionPlan(artifact, backend=backend)
        rng = np.random.default_rng(9)
        a_in, b_in = sample(rng, 4), sample(rng, 4)
        a = plan.forward(a_in)
        a_copy = a.copy()
        plan.forward(b_in)
        assert np.array_equal(a, a_copy)


# ----------------------------------------------------------------------
# Satellite numerics
# ----------------------------------------------------------------------
class TestActQuantSimplification:
    @pytest.mark.parametrize("signed", [False, True])
    def test_quantized_equals_ste_identity(self, signed):
        # The old hot path computed clipped + (quantized - clipped); by
        # Sterbenz's lemma that is exactly `quantized` in float32 — fuzz it.
        rng = np.random.default_rng(0)
        quantizer = ActivationQuantizer(4, signed=signed, alpha=1.37)
        quantizer.calibrating = False
        x = (rng.normal(scale=2.0, size=50_000)).astype(np.float32)
        low = -quantizer.alpha if signed else 0.0
        clipped = np.clip(x, low, quantizer.alpha)
        quantized = np.asarray(quantizer.quantize_array(x),
                               dtype=np.float32)
        legacy = clipped + (quantized - clipped)
        assert np.array_equal(legacy, quantized)


class TestStableSigmoid:
    def test_no_overflow_warning_for_large_negatives(self):
        x = np.array([-200.0, -89.0, -5.0, 0.0, 5.0, 200.0],
                     dtype=np.float32)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            out = stable_sigmoid(x)
        assert out.dtype == np.float32
        assert np.all((out >= 0.0) & (out <= 1.0))
        assert out[0] >= 0.0 and np.isfinite(out).all()

    def test_matches_naive_formula_where_safe(self):
        rng = np.random.default_rng(1)
        x = rng.normal(scale=3.0, size=10_000).astype(np.float32)
        naive = (1.0 / (1.0 + np.exp(-x.astype(np.float64))))
        np.testing.assert_allclose(stable_sigmoid(x), naive,
                                   rtol=1e-6, atol=1e-7)

    def test_rnn_plan_stays_bit_exact(self, family_artifacts):
        # Eager RNN cells and both serving backends share stable_sigmoid,
        # so the export bit-exactness contract holds for RNN plans.
        model, artifact, sample = family_artifacts["gru"]
        rng = np.random.default_rng(2)
        batch = sample(rng, 3)
        for backend in ("reference", "fused"):
            plan = ExecutionPlan(artifact, backend=backend)
            assert np.array_equal(plan.forward(batch),
                                  eager_forward(model, batch))
