"""Splitter suite: cut-point legality on every model family, stage
materialization, the bit-exactness invariant, balanced auto-cuts, the
cost-model helpers, the SearchSpace ``cuts`` axis and the ``check_fits``
partition hint.

Every test runs the real compile path — models come from the serving
zoo, artifacts from ``build_artifact``, stages from ``split_artifact``
(which re-verifies ``np.array_equal`` against the unsplit plan on every
call with ``verify=True``).
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ExportError, ResourceError
from repro.serve.cli import build_model
from repro.serve.export import build_artifact
from repro.serve.ir import lower_artifact, synthetic_batch
from repro.serve.partition import (
    EPILOGUE_KINDS,
    PartitionPlan,
    auto_cuts,
    cut_names,
    legal_cut_points,
    split_artifact,
    stage_workloads,
    transfer_bytes,
    verify_partition,
)
from repro.serve.partition.splitter import (
    GEMM_KINDS,
    _op_tails,
    _validate_cuts,
)
from repro.serve.plan import ExecutionPlan

#: One representative per supported model family (conv chains, residual
#: CNNs, depthwise CNNs, LSTM and GRU language/speech models).
FAMILIES = ("resnet_tiny", "mobilenet_v2", "lstm_lm", "gru_speech",
            "yolo_lite")


def make_artifact(name, seed=0, batch=4):
    rng = np.random.default_rng(seed)
    model, sampler = build_model(name, seed=seed)
    return build_artifact(model, sampler(rng, batch), name=name)


@pytest.fixture(scope="module")
def artifacts():
    return {name: make_artifact(name) for name in FAMILIES}


# ----------------------------------------------------------------------
# Cut-point legality, all five families
# ----------------------------------------------------------------------
class TestCutLegality:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_every_family_has_legal_cuts(self, artifacts, family):
        graph = lower_artifact(artifacts[family])
        points = legal_cut_points(graph)
        assert points, f"{family} must be partitionable"
        indices = [point.op_index for point in points]
        assert indices == sorted(set(indices))

    @pytest.mark.parametrize("family", FAMILIES)
    def test_cuts_never_precede_fused_epilogues(self, artifacts, family):
        # Rule 3: the op after a cut is never a fold-into-GEMM epilogue
        # (cutting there would split a fused kernel across devices).
        graph = lower_artifact(artifacts[family])
        tails = _op_tails(graph)
        for point in legal_cut_points(graph):
            successor = tails[point.op_index + 1]
            assert successor.kind not in EPILOGUE_KINDS

    @pytest.mark.parametrize("family", FAMILIES)
    def test_both_sides_keep_gemm_work(self, artifacts, family):
        # Rule 5: every stage must price and serve real GEMM work.
        graph = lower_artifact(artifacts[family])
        gemm_ops = sorted({node.op_index for node in graph.nodes
                           if node.kind in GEMM_KINDS})
        for point in legal_cut_points(graph):
            assert gemm_ops[0] <= point.op_index
            assert gemm_ops[-1] > point.op_index

    def test_resnet_residual_blocks_are_never_severed(self, artifacts):
        # A residual lowers to several nodes sharing one op index; a cut
        # can only fall between top-level ops, so main branch, shortcut
        # and the add always land in one stage together.
        artifact = artifacts["resnet_tiny"]
        graph = lower_artifact(artifact)
        residual_ops = {node.op_index for node in graph.nodes
                        if node.name == "residual-add"}
        assert residual_ops, "resnet_tiny must contain residual blocks"
        for cut in (point.op_index for point in legal_cut_points(graph)):
            plan = split_artifact(artifact, [cut])
            for op_index in residual_ops:
                owners = [
                    stage_idx
                    for stage_idx, stage in enumerate(plan.stages)
                    for node in lower_artifact(stage).nodes
                    if node.name == "residual-add"
                    and (stage_idx, node.op_index) == (
                        0 if op_index <= cut else 1,
                        op_index if op_index <= cut
                        else op_index - cut - 1)]
                assert len(owners) == 1, \
                    f"residual op {op_index} must live in exactly one stage"

    @pytest.mark.parametrize("family", ("lstm_lm", "gru_speech",
                                        "lstm_sentiment"))
    def test_rnn_cuts_avoid_merged_time_regions(self, family):
        # Rule 4: inside the time-merged region the (N, T, ...) views
        # fold T into the batch; a legal cut never lands there, so the
        # per-request views stay intact across the boundary.
        artifact = make_artifact(family)
        graph = lower_artifact(artifact)
        tails = _op_tails(graph)
        points = legal_cut_points(graph)
        for point in points:
            assert not tails[point.op_index].merged_time
        # ... and splitting at each legal point stays bit-exact, i.e.
        # the downstream stage reconstructs the (N, T, ...) activations
        # identically (split_artifact verifies internally).
        for point in points:
            plan = split_artifact(artifact, [point.op_index])
            assert plan.num_stages == 2

    def test_single_exit_rule_rejects_dangling_shortcut(self, artifacts):
        # Defensive rule 2: fabricate a cross-boundary edge that skips
        # the tail and check the frontier is rejected.
        graph = lower_artifact(artifacts["resnet_tiny"])
        legal_before = {p.op_index for p in legal_cut_points(graph)}
        cut = sorted(legal_before)[0]
        consumer = next(node for node in graph.nodes
                        if node.op_index == cut + 1)
        earlier = next(node for node in graph.nodes
                       if node.op_index == 0)
        consumer.inputs = tuple(consumer.inputs) + (earlier.id,)
        legal_after = {p.op_index for p in legal_cut_points(graph)}
        assert cut not in legal_after

    def test_unindexed_graph_is_rejected(self, artifacts):
        graph = lower_artifact(artifacts["resnet_tiny"])
        for node in graph.nodes:
            node.op_index = None
        with pytest.raises(ExportError, match="no op indices"):
            legal_cut_points(graph)


# ----------------------------------------------------------------------
# Stage materialization + the bit-exactness invariant
# ----------------------------------------------------------------------
class TestSplitArtifact:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_balanced_split_is_bit_exact_everywhere(self, artifacts,
                                                    family):
        # The subsystem's non-negotiable invariant: composed stage plans
        # equal the unsplit plan bitwise. split_artifact(verify=True)
        # asserts it internally; re-check explicitly on a fresh batch.
        artifact = artifacts[family]
        plan = split_artifact(artifact, auto_cuts(artifact, stages=2))
        assert plan.num_stages == 2
        reference = ExecutionPlan(artifact)
        batch = synthetic_batch(reference.graph, n=3, seed=7)
        expected = reference.forward(batch)
        current = batch
        for stage in plan.stages:
            current = ExecutionPlan(stage).forward(current)
        assert np.array_equal(expected, current)

    def test_stage_artifacts_reenter_compile_path_from_disk(self,
                                                            artifacts,
                                                            tmp_path):
        artifact = artifacts["resnet_tiny"]
        plan = split_artifact(artifact, auto_cuts(artifact))
        paths = plan.save(tmp_path / "rt")
        assert [p.endswith(f".stage{i}.npz")
                for i, p in enumerate(paths)] == [True, True]
        from repro.serve.artifact import ServeArtifact

        loaded = [ServeArtifact.load(path) for path in paths]
        reference = ExecutionPlan(artifact)
        batch = synthetic_batch(reference.graph, n=2)
        current = batch
        for stage in loaded:
            current = ExecutionPlan(stage).forward(current)
        assert np.array_equal(reference.forward(batch), current)

    def test_stage_manifest_pipeline_block(self, artifacts):
        artifact = artifacts["yolo_lite"]
        cuts = auto_cuts(artifact, stages=3)
        plan = split_artifact(artifact, cuts)
        assert plan.num_stages == 3
        for index, stage in enumerate(plan.stages):
            block = stage.manifest["pipeline"]
            assert block["stage"] == index
            assert block["stages"] == 3
            assert tuple(block["cut_ops"]) == plan.cuts
            assert stage.manifest["model"] == f"yolo_lite/stage{index}"
        names = plan.stage_names()
        assert names == [f"yolo_lite/stage{i}" for i in range(3)]
        assert "3 stages" in plan.describe()

    def test_stage_arrays_are_subset_and_sufficient(self, artifacts):
        # Each stage carries exactly the arrays its ops reference — no
        # weight tensor is shipped to a device that never reads it.
        artifact = artifacts["resnet_tiny"]
        plan = split_artifact(artifact, auto_cuts(artifact))
        all_keys = set(artifact.arrays)
        stage_keys = [set(stage.arrays) for stage in plan.stages]
        for keys in stage_keys:
            assert keys <= all_keys
        assert stage_keys[0] | stage_keys[1] == all_keys
        assert not stage_keys[0] & stage_keys[1]

    def test_illegal_cut_message_lists_legal_options(self, artifacts):
        artifact = artifacts["resnet_tiny"]
        graph = lower_artifact(artifact)
        legal = [p.op_index for p in legal_cut_points(graph)]
        illegal = next(i for i in range(100) if i not in legal)
        with pytest.raises(ConfigurationError,
                           match="not a legal cut point"):
            split_artifact(artifact, [illegal])
        try:
            _validate_cuts(graph, [illegal])
        except ConfigurationError as error:
            for index in legal:
                assert str(index) in str(error)

    def test_duplicate_and_empty_cuts_rejected(self, artifacts):
        graph = lower_artifact(artifacts["resnet_tiny"])
        legal = [p.op_index for p in legal_cut_points(graph)]
        with pytest.raises(ConfigurationError, match="duplicate"):
            _validate_cuts(graph, [legal[0], legal[0]])
        with pytest.raises(ConfigurationError, match="at least one"):
            _validate_cuts(graph, [])

    def test_verify_partition_detects_corruption(self, artifacts):
        artifact = artifacts["resnet_tiny"]
        plan = split_artifact(artifact, auto_cuts(artifact))
        # Tamper with a stage weight: the invariant check must fire.
        victim = plan.stages[1]
        key = next(iter(victim.arrays))
        victim.arrays[key] = victim.arrays[key] + 1.0
        with pytest.raises(ExportError, match="not bit-identical"):
            verify_partition(artifact, plan)


# ----------------------------------------------------------------------
# Balanced auto-cuts + cost-model helpers
# ----------------------------------------------------------------------
class TestAutoCuts:
    def test_deterministic_and_legal(self, artifacts):
        artifact = artifacts["mobilenet_v2"]
        first = auto_cuts(artifact, stages=2)
        assert first == auto_cuts(artifact, stages=2)
        legal = {p.op_index
                 for p in legal_cut_points(lower_artifact(artifact))}
        assert set(first) <= legal

    def test_balances_stage_macs(self, artifacts):
        # The chosen cut's bottleneck stage must be no worse than any
        # other legal single cut's (that is the definition of the
        # exhaustive minimization).
        artifact = artifacts["yolo_lite"]
        graph = lower_artifact(artifact)
        chosen = auto_cuts(artifact, stages=2)

        def bottleneck(cut):
            stages = stage_workloads(graph, [cut])
            return max(sum(w.rows * w.reduction * w.columns
                           for w in stage) for stage in stages)

        best = min(bottleneck(p.op_index)
                   for p in legal_cut_points(graph))
        assert bottleneck(chosen[0]) == best

    def test_too_many_stages_raises(self, artifacts):
        with pytest.raises(ConfigurationError, match="legal cut points"):
            auto_cuts(artifacts["gru_speech"], stages=5)
        with pytest.raises(ConfigurationError, match=">= 2"):
            auto_cuts(artifacts["gru_speech"], stages=1)


class TestCostHelpers:
    def test_stage_workloads_partition_the_graph(self, artifacts):
        graph = lower_artifact(artifacts["resnet_tiny"])
        cut = legal_cut_points(graph)[0].op_index
        stages = stage_workloads(graph, [cut], batch=2)
        whole = graph.workloads(2)
        merged = [w for stage in stages for w in stage]
        assert sorted(w.name for w in merged) == \
            sorted(w.name for w in whole)
        total = sum(w.rows * w.reduction * w.columns for w in whole)
        split_total = sum(w.rows * w.reduction * w.columns
                          for w in merged)
        assert split_total == total

    def test_transfer_bytes_match_cut_activation(self, artifacts):
        graph = lower_artifact(artifacts["resnet_tiny"])
        points = legal_cut_points(graph)
        cuts = [p.op_index for p in points[:2]]
        measured = transfer_bytes(graph, cuts)
        assert measured == [p.activation_bytes for p in points[:2]]
        assert all(b > 0 for b in measured)
        names = cut_names(graph, cuts)
        assert names == [p.node_name for p in points[:2]]

    def test_pipeline_cost_model_prices_cuts(self, artifacts):
        from repro.autotune.cost import (CandidateEvaluation,
                                         PipelineCostModel)
        from repro.autotune.space import SearchSpace

        graph = lower_artifact(artifacts["resnet_tiny"])
        cut = legal_cut_points(graph)[0].op_index
        model = PipelineCostModel(
            graph.workloads,
            stage_workloads_fn=lambda cuts, b: stage_workloads(
                graph, cuts, batch=b),
            transfer_bytes_fn=lambda cuts: transfer_bytes(graph, cuts),
            cut_names_fn=lambda cuts: cut_names(graph, cuts))
        space = SearchSpace("zu3eg", cuts=((), (cut,)))
        single, piped = list(space.candidates())[:2]
        assert not single.cuts and piped.cuts == (cut,)
        e_single = model.evaluate(single)
        e_piped = model.evaluate(piped)
        # No cuts delegates to the plain cost model (no stage table).
        assert e_single.stages == []
        # The pipelined interval is the max stage, so it beats the sum.
        assert e_piped.latency_ms < e_single.latency_ms
        assert len(e_piped.stages) == 2
        assert e_piped.stages[0]["transfer_ms"] > 0
        assert e_piped.stages[-1]["transfer_ms"] == 0
        assert e_piped.stages[0]["cut"]
        # Stage rows survive the evaluation-cache round trip.
        back = CandidateEvaluation.from_dict(e_piped.to_dict())
        assert back.stages == e_piped.stages

    def test_pipeline_cost_model_rejects_overflowing_stage(self,
                                                           artifacts):
        from repro.autotune.cost import CostModel, PipelineCostModel
        from repro.autotune.space import SearchSpace

        graph = lower_artifact(artifacts["resnet_tiny"])
        cut = legal_cut_points(graph)[0].op_index
        # A geometry that overflows XC7Z020 on every stage: the plan
        # must be rejected exactly like check_fits would reject it.
        space = SearchSpace("7z020", batches=(4,), sp2_columns=(64,),
                            cuts=((cut,),))
        candidate = list(space.candidates())[0]
        assert not CostModel(graph.workloads).evaluate(candidate).fits
        piped = PipelineCostModel(
            graph.workloads,
            stage_workloads_fn=lambda cuts, b: stage_workloads(
                graph, cuts, batch=b),
            transfer_bytes_fn=lambda cuts: transfer_bytes(graph, cuts))
        evaluation = piped.evaluate(candidate)
        assert not evaluation.fits
        assert all(not row["fits"] for row in evaluation.stages)

    def test_stage_devices_map_onto_fleet(self, artifacts):
        from repro.autotune.cost import PipelineCostModel
        from repro.autotune.space import SearchSpace

        graph = lower_artifact(artifacts["resnet_tiny"])
        cut = legal_cut_points(graph)[0].op_index
        model = PipelineCostModel(
            graph.workloads,
            stage_workloads_fn=lambda cuts, b: stage_workloads(
                graph, cuts, batch=b),
            transfer_bytes_fn=lambda cuts: transfer_bytes(graph, cuts),
            stage_devices=["zu3eg", "7z020"])
        space = SearchSpace("zu3eg", cuts=((cut,),))
        evaluation = model.evaluate(list(space.candidates())[0])
        assert [row["device"] for row in evaluation.stages] == \
            ["XCZU3EG", "XC7Z020"]


# ----------------------------------------------------------------------
# SearchSpace cuts axis
# ----------------------------------------------------------------------
class TestSearchSpaceCutsAxis:
    def test_size_and_candidates_multiply(self):
        from repro.autotune.space import SearchSpace

        base = SearchSpace("zu3eg")
        spaced = SearchSpace("zu3eg", cuts=((), (3,), (2, 5)))
        assert spaced.size == base.size * 3
        seen = {c.cuts for c in spaced.candidates()}
        assert seen == {(), (3,), (2, 5)}

    def test_candidate_round_trip_and_describe(self):
        from repro.autotune.space import Candidate, SearchSpace

        candidate = list(SearchSpace("zu3eg",
                                     cuts=((3, 7),)).candidates())[0]
        record = candidate.as_dict()
        assert record["cuts"] == [3, 7]
        assert Candidate.from_dict(record) == candidate
        assert "cut@[3, 7]" in candidate.describe()
        # Old cached records carry no cuts key: tolerated as uncut.
        legacy = candidate.as_dict()
        legacy.pop("cuts")
        assert Candidate.from_dict(legacy).cuts == ()

    def test_neighbors_walk_the_cuts_axis(self):
        from repro.autotune.space import SearchSpace

        space = SearchSpace("zu3eg", cuts=((), (3,), (5,)))
        start = next(c for c in space.candidates() if c.cuts == (3,))
        moves = {n.cuts for n in space.neighbors(start)}
        assert {(), (5,)} <= moves


# ----------------------------------------------------------------------
# check_fits partition hint (the deploy-time nudge)
# ----------------------------------------------------------------------
class TestCheckFitsPartitionHint:
    def test_overflow_names_smallest_whole_fit_device(self):
        from dataclasses import replace

        from repro.fpga.devices import get_device
        from repro.fpga.resources import check_fits, reference_designs

        design = replace(reference_designs()["D2-3"],
                         device=get_device("zu3eg"))
        with pytest.raises(ResourceError) as info:
            check_fits(design)
        message = str(info.value)
        assert "(over)" in message
        assert "would fit whole on XC7Z045" in message

    def test_overflow_everywhere_names_pipeline_split(self):
        from dataclasses import replace

        from repro.fpga.resources import check_fits, reference_designs

        huge = replace(reference_designs()["D2-3"],
                       block_out_fixed=256, block_out_sp2=256)
        with pytest.raises(ResourceError) as info:
            check_fits(huge)
        message = str(info.value)
        assert "-stage pipeline would fit on" in message
        assert "repro.serve.partition" in message

    def test_fitting_design_raises_nothing(self):
        from repro.fpga.resources import check_fits, reference_designs

        for design in reference_designs().values():
            check_fits(design)
