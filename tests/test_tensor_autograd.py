"""Autograd engine: gradients of every op, broadcasting, graph mechanics."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensor import (
    Tensor,
    concatenate,
    maximum,
    minimum,
    no_grad,
    stack,
    where,
)
from repro.tensor.tensor import gradcheck


def t(shape, seed=0, requires_grad=True):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=shape), requires_grad=requires_grad)


class TestElementwiseGradients:
    def test_add_mul_sub_div(self):
        a, b = t((3, 4), 1), t((3, 4), 2)
        assert gradcheck(lambda a, b: ((a + b) * (a - b) / (b * b + 2)).sum(),
                         [a, b])

    def test_pow(self):
        a = t((5,), 3)
        assert gradcheck(lambda a: ((a * a + 1.0) ** 1.5).sum(), [a])

    def test_exp_log(self):
        a = t((4, 2), 4)
        assert gradcheck(lambda a: ((a * a + 0.5).log() + a.exp()).sum(), [a])

    def test_sqrt(self):
        a = t((6,), 5)
        assert gradcheck(lambda a: (a * a + 1.0).sqrt().sum(), [a])

    def test_tanh_sigmoid(self):
        a = t((3, 3), 6)
        assert gradcheck(lambda a: (a.tanh() + a.sigmoid()).sum(), [a])

    def test_relu_masks_gradient(self):
        a = Tensor(np.array([-1.0, 2.0, -3.0, 4.0]), requires_grad=True)
        a.relu().sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0, 0.0, 1.0])

    def test_abs(self):
        a = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        a.abs().sum().backward()
        assert np.allclose(a.grad, [-1.0, 1.0])

    def test_clip_gradient_zero_outside(self):
        a = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        a.clip(-1.0, 1.0).sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0, 0.0])

    def test_neg(self):
        a = t((4,), 7)
        assert gradcheck(lambda a: (-a * 3.0).sum(), [a])


class TestBroadcasting:
    def test_add_broadcast_scalar_and_row(self):
        a, b = t((3, 4), 1), t((4,), 2)
        assert gradcheck(lambda a, b: (a + b + 2.0).sum(), [a, b])

    def test_mul_broadcast_column(self):
        a, b = t((3, 4), 1), t((3, 1), 2)
        assert gradcheck(lambda a, b: (a * b).sum(), [a, b])

    def test_div_broadcast(self):
        a, b = t((2, 3, 4), 1), t((1, 3, 1), 2)
        assert gradcheck(lambda a, b: (a / (b * b + 1.0)).sum(), [a, b])

    def test_unbroadcast_shapes(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((3,)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3,)
        assert np.allclose(b.grad, [2.0, 2.0, 2.0])


class TestMatmul:
    def test_matmul_2d(self):
        a, b = t((3, 4), 1), t((4, 5), 2)
        assert gradcheck(lambda a, b: (a @ b).sum(), [a, b])

    def test_matmul_chain(self):
        a, b, c = t((2, 3), 1), t((3, 4), 2), t((4, 2), 3)
        assert gradcheck(lambda a, b, c: ((a @ b).tanh() @ c).sum(),
                         [a, b, c])


class TestReductions:
    def test_sum_axis_keepdims(self):
        a = t((3, 4, 2), 1)
        assert gradcheck(lambda a: a.sum(axis=1).sum(), [a])
        assert gradcheck(lambda a: (a.sum(axis=(0, 2), keepdims=True)
                                    * 2.0).sum(), [a])

    def test_mean(self):
        a = t((4, 6), 2)
        assert gradcheck(lambda a: (a.mean(axis=0) * a.mean()).sum(), [a])

    def test_var_matches_numpy(self):
        a = t((5, 7), 3)
        assert np.allclose(a.var(axis=1).data, a.data.var(axis=1), atol=1e-6)

    def test_max_gradient_to_argmax(self):
        a = Tensor(np.array([[1.0, 5.0, 2.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        assert np.allclose(a.grad, [[0.0, 1.0, 0.0]])

    def test_max_tie_splits_gradient(self):
        a = Tensor(np.array([[3.0, 3.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        assert np.isclose(a.grad.sum(), 1.0)


class TestShapeOps:
    def test_reshape_transpose(self):
        a = t((2, 3, 4), 1)
        assert gradcheck(
            lambda a: (a.reshape(6, 4).transpose() * 1.5).sum(), [a])

    def test_transpose_axes(self):
        a = t((2, 3, 4), 2)
        out = a.transpose(2, 0, 1)
        assert out.shape == (4, 2, 3)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)

    def test_getitem_slice_and_int(self):
        a = t((4, 5), 1)
        m = Tensor(np.random.default_rng(9).normal(size=(2, 3)))
        assert gradcheck(lambda a: (a[1:3, :3] * m).sum(), [a])

    def test_getitem_integer_array_accumulates(self):
        a = Tensor(np.zeros(3), requires_grad=True)
        idx = np.array([0, 0, 2])
        a[idx].sum().backward()
        assert np.allclose(a.grad, [2.0, 0.0, 1.0])

    def test_flatten(self):
        a = t((2, 3, 4), 3)
        assert a.flatten().shape == (2, 12)

    def test_expand_squeeze(self):
        a = t((3, 4), 4)
        assert a.expand_dims(1).shape == (3, 1, 4)
        assert a.expand_dims(0).squeeze(0).shape == (3, 4)


class TestCombinators:
    def test_concatenate(self):
        a, b = t((2, 3), 1), t((4, 3), 2)
        m = Tensor(np.random.default_rng(8).normal(size=(6, 3)))
        assert gradcheck(lambda a, b: (concatenate([a, b], axis=0) * m).sum(),
                         [a, b])

    def test_stack(self):
        a, b = t((3,), 1), t((3,), 2)
        m = Tensor(np.random.default_rng(8).normal(size=(2, 3)))
        assert gradcheck(lambda a, b: (stack([a, b]) * m).sum(), [a, b])

    def test_where(self):
        a, b = t((4,), 1), t((4,), 2)
        cond = np.array([True, False, True, False])
        out = where(cond, a, b)
        out.sum().backward()
        assert np.allclose(a.grad, cond.astype(float))
        assert np.allclose(b.grad, (~cond).astype(float))

    def test_maximum_minimum(self):
        a, b = t((5,), 3), t((5,), 4)
        assert gradcheck(lambda a, b: (maximum(a, b) + minimum(a, b)).sum(),
                         [a, b])


class TestGraphMechanics:
    def test_grad_accumulates_across_uses(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        (a * a + a * 3.0).backward()
        assert np.allclose(a.grad, [7.0])  # 2x + 3

    def test_no_grad_context(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = a * 2.0
        assert not out.requires_grad

    def test_detach_cuts_graph(self):
        a = Tensor(np.ones(3), requires_grad=True)
        out = (a.detach() * 2.0)
        assert not out.requires_grad

    def test_backward_shape_mismatch_raises(self):
        a = t((3,), 1)
        out = a * 2.0
        with pytest.raises(ShapeError):
            out.backward(np.ones((4,)))

    def test_backward_on_non_grad_tensor_raises(self):
        a = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            a.backward()

    def test_deep_graph_no_recursion_error(self):
        a = Tensor(np.ones(4), requires_grad=True)
        out = a
        for _ in range(3000):
            out = out + 1.0
        out.sum().backward()
        assert np.allclose(a.grad, np.ones(4))

    def test_comparison_returns_ndarray(self):
        a = Tensor(np.array([1.0, -1.0]))
        assert isinstance(a > 0, np.ndarray)

    def test_float32_default_for_lists(self):
        assert Tensor([1.0, 2.0]).dtype == np.float32

    def test_ndarray_dtype_preserved(self):
        assert Tensor(np.zeros(3, dtype=np.float64)).dtype == np.float64
