"""Shift-add arithmetic (Eq. 6, Table I): exactness and op budgets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, QuantizationError
from repro.quant import (
    Scheme,
    SchemeQuantizer,
    encode_sp2,
    fixed_multiply,
    ops_fixed_point,
    ops_sp2,
    shift_add_multiply,
    sp2_frac_bits,
    table1_rows,
)
from repro.quant.arithmetic import lut_cost_per_multiply
from repro.quant.schemes import sp2_levels


class TestShiftAddExactness:
    def test_exact_on_all_levels(self):
        levels = sp2_levels(4)
        code = encode_sp2(levels, 2, 1)
        activations = np.arange(16, dtype=np.int64)
        for i, level in enumerate(levels):
            sub = type(code)(sign=code.sign[i:i + 1], c1=code.c1[i:i + 1],
                             c2=code.c2[i:i + 1], m1=2, m2=1)
            product = shift_add_multiply(activations, sub)
            expected = activations * level * 2 ** sp2_frac_bits(2)
            assert np.allclose(product, expected), level

    @given(seed=st.integers(min_value=0, max_value=10_000),
           act_bits=st.integers(min_value=2, max_value=8))
    @settings(max_examples=50, deadline=None)
    def test_exact_random(self, seed, act_bits):
        rng = np.random.default_rng(seed)
        quantizer = SchemeQuantizer(Scheme.SP2, 4)
        result = quantizer.quantize(rng.normal(0, 0.3, size=64))
        code = encode_sp2(result.unit_values, 2, 1)
        activations = rng.integers(0, 2 ** act_bits, size=64)
        product = shift_add_multiply(activations, code)
        expected = activations * result.unit_values * 2 ** sp2_frac_bits(2)
        assert np.allclose(product, expected, atol=0)

    def test_wider_split_exact(self, rng):
        quantizer = SchemeQuantizer(Scheme.SP2, 6, m1=3, m2=2)
        result = quantizer.quantize(rng.normal(0, 0.3, size=128))
        code = encode_sp2(result.unit_values, 3, 2)
        activations = rng.integers(0, 256, size=128)
        product = shift_add_multiply(activations, code)
        expected = activations * result.unit_values * 2 ** sp2_frac_bits(3)
        assert np.allclose(product, expected, atol=0)

    def test_rejects_float_activations(self):
        code = encode_sp2(np.array([0.5]), 2, 1)
        with pytest.raises(QuantizationError):
            shift_add_multiply(np.array([0.5]), code)

    def test_rejects_negative_activations(self):
        code = encode_sp2(np.array([0.5]), 2, 1)
        with pytest.raises(QuantizationError):
            shift_add_multiply(np.array([-1]), code)

    def test_fixed_multiply_is_plain_product(self):
        out = fixed_multiply(np.array([3, 4]), np.array([-2, 5]))
        assert np.array_equal(out, [-6, 20])

    def test_fixed_multiply_rejects_floats(self):
        with pytest.raises(QuantizationError):
            fixed_multiply(np.array([0.5]), np.array([1]))


class TestOpCounts:
    def test_fixed_4bit_matches_table(self):
        ops = ops_fixed_point(4, 4)
        assert ops.additions == 2        # m - 2
        assert ops.addition_bits == 4    # n

    def test_fixed_dsp_mode(self):
        assert ops_fixed_point(4, 4, use_dsp=True).dsp_multiplies == 1

    def test_sp2_4bit_matches_table(self):
        ops = ops_sp2(4, 4, 2, 1)
        assert ops.shifts == 2
        assert ops.additions == 1
        assert ops.addition_bits == 4 + (2 ** 2 - 1)  # n + 2^m1 - 1

    def test_sp2_invalid_split(self):
        with pytest.raises(ConfigurationError):
            ops_sp2(4, 4, 2, 2)

    def test_table1_rows_structure(self):
        rows = table1_rows(4, 4)
        assert [r["scheme"] for r in rows] == ["fixed", "sp2"]
        assert rows[0]["weight_operand"] == "3-bit integer"

    def test_sp2_needs_single_addition_regardless_of_bits(self):
        """SP2's structural advantage: one addition per multiply vs m-2 for
        a soft-logic fixed-point multiplier — the gap widens with m."""
        for bits, (m1, m2) in ((4, (2, 1)), (6, (3, 2)), (8, (4, 3))):
            assert ops_sp2(bits, bits, m1, m2).additions == 1
            assert ops_fixed_point(bits, bits).additions == bits - 2

    def test_lut_cost_model_returns_positive(self):
        assert lut_cost_per_multiply("fixed", 4, 4) > 0
        assert lut_cost_per_multiply("sp2", 4, 4) > 0

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            lut_cost_per_multiply("ternary", 4, 4)
