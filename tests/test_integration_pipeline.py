"""Integration: the full co-design loop on one small model.

characterize device -> train FP -> ADMM+STE MSQ at the characterized ratio
-> verify row split, level sets, accuracy -> run the quantized weights
through the bit-exact integer kernels -> simulate deployment throughput.
"""

import numpy as np
import pytest

from repro import nn
from repro.fpga import characterize_device, simulate_network
from repro.fpga.bitexact import float_reference, mixed_gemm_bitexact
from repro.fpga.gemm import GemmWorkload
from repro.quant import QATConfig, Scheme, quantize_model, train_fp
from repro.quant.partition import to_gemm_matrix
from repro.quant.quantizers import project_to_levels
from repro.quant.schemes import fixed_point_levels, sp2_levels
from repro.quant.ste import ActivationQuantizer
from repro.tensor import Tensor
from tests.conftest import accuracy_of, make_mlp, make_toy_task


@pytest.fixture(scope="module")
def pipeline():
    characterization = characterize_device("XC7Z045", batch=4)
    ratio = characterization.partition_ratio
    x, y = make_toy_task(n=256, seed=11)
    model = make_mlp(seed=13)

    def make_batches(epoch):
        order = np.random.default_rng(60 + epoch).permutation(len(x))
        for start in range(0, len(order), 64):
            idx = order[start:start + 64]
            yield x[idx], y[idx]

    def loss_fn(m, batch):
        xb, yb = batch
        return nn.cross_entropy(m(Tensor(xb)), yb)

    fp_history = train_fp(model, make_batches, loss_fn, epochs=12, lr=0.1)
    fp_acc = accuracy_of(model, x, y)
    config = QATConfig(scheme=Scheme.MSQ, weight_bits=4, act_bits=4,
                       ratio=f"{ratio.sp2:g}:{ratio.fixed:g}",
                       epochs=6, lr=0.05)
    qat = quantize_model(model, make_batches, loss_fn, config)
    return {
        "characterization": characterization,
        "model": model,
        "qat": qat,
        "fp_acc": fp_acc,
        "task": (x, y),
    }


class TestCoDesignLoop:
    def test_characterized_ratio_is_papers(self, pipeline):
        assert pipeline["characterization"].ratio_string == "1:2"

    def test_row_split_matches_hardware_ratio(self, pipeline):
        target = pipeline["characterization"].design.sp2_fraction
        achieved = pipeline["qat"].sp2_row_fraction()
        assert achieved == pytest.approx(target, abs=0.08)

    def test_every_row_on_its_level_set(self, pipeline):
        for result in pipeline["qat"].layer_results.values():
            matrix = to_gemm_matrix(result.values)
            for row in range(matrix.shape[0]):
                levels = (sp2_levels(4) if result.partition.sp2_mask[row]
                          else fixed_point_levels(4))
                unit = matrix[row] / result.row_alphas[row]
                assert np.allclose(unit, project_to_levels(unit, levels),
                                   atol=1e-9)

    def test_accuracy_preserved(self, pipeline):
        x, y = pipeline["task"]
        q_acc = accuracy_of(pipeline["model"], x, y)
        assert q_acc >= pipeline["fp_acc"] - 0.10

    def test_integer_datapath_matches_model(self, pipeline, rng):
        name, msq = next(iter(pipeline["qat"].layer_results.items()))
        act_quant = ActivationQuantizer(bits=4)
        x = np.abs(rng.normal(size=(8, msq.values.shape[1])))
        act_quant.observe(x)
        integer = mixed_gemm_bitexact(x, msq, act_quant)
        reference = float_reference(x, msq, act_quant)
        assert np.abs(integer["output"] - reference).max() < 1e-9

    def test_deployment_simulation(self, pipeline):
        design = pipeline["characterization"].design
        layers = [GemmWorkload(name, rows=msq.values.shape[0],
                               reduction=int(np.prod(msq.values.shape[1:])),
                               columns=64)
                  for name, msq in pipeline["qat"].layer_results.items()]
        perf = simulate_network(layers, design)
        assert perf.throughput_gops > 0
        assert perf.pe_utilization <= 1.0

    def test_msq_beats_dsp_only_deployment(self, pipeline):
        """The quantized model's own layers run faster on the heterogeneous
        design than on a DSP-only design of the same device."""
        from repro.fpga.resources import GemmDesign

        design = pipeline["characterization"].design
        dsp_only = GemmDesign(design.device, design.batch, design.block_in,
                              design.block_out_fixed, 0)
        # Large column count so tile compute dominates per-layer overhead.
        layers = [GemmWorkload(name, rows=msq.values.shape[0],
                               reduction=int(np.prod(msq.values.shape[1:])),
                               columns=8192)
                  for name, msq in pipeline["qat"].layer_results.items()]
        hetero = simulate_network(layers, design).throughput_gops
        base = simulate_network(layers, dsp_only).throughput_gops
        assert hetero > 1.3 * base
