"""Wire-protocol property/fuzz tests: framing, payload round-trips,
malformed-frame corpus, FIFO under a seeded scheduler.

The protocol surface has three layers, each tested here:

- byte framing (``encode_message``/``decode_message``, SocketTransport
  over a real socketpair, FakeTransport over virtual time) — every
  malformed frame must decode to a *typed* ``FrameError``, never a bare
  parse exception, and never kill the stream before the typed answer;
- numpy payload encoding (``array_to_wire``/``array_from_wire``) —
  byte-exact round trips across dtypes/shapes, with validation errors on
  inconsistent declarations;
- the request/response loop (``serve_protocol``) — every line of a
  malformed-request corpus is answered with its error code in order, and
  per-model FIFO holds under seeded interleaved multi-model traffic.

No sleeps; the only real IO is an AF_UNIX socketpair.
"""

import io
import json
import socket
import struct
import threading
from types import SimpleNamespace

import numpy as np
import pytest

from repro.api import Pipeline, PipelineConfig
from repro.errors import FrameError, TransportClosed
from repro.serve import ModelServer, array_from_wire, array_to_wire
from repro.serve.cli import serve_protocol
from repro.serve.transport import (
    FRAME_ERROR_CODES,
    FRAME_HEADER,
    FakeTransport,
    FrameWriter,
    SocketTransport,
    decode_message,
    encode_message,
    frame_lines,
)
from tests.conftest import make_mlp


def build_deployment(seed=7, batch=4):
    rng = np.random.default_rng(seed + 1000)
    pipeline = Pipeline(PipelineConfig(batch=batch), model=make_mlp(seed))
    pipeline.calibrate([rng.normal(size=(8, 12)).astype(np.float32)])
    return pipeline.deploy(), pipeline.result


@pytest.fixture(scope="module")
def deployed():
    return build_deployment()


def socket_pair():
    left, right = socket.socketpair()
    return SocketTransport(left), SocketTransport(right)


# ----------------------------------------------------------------------
# Framing: encode/decode and both carriers
# ----------------------------------------------------------------------
class TestFraming:
    def test_encode_decode_round_trip(self):
        message = {"id": 7, "model": "m", "input": [1.5, -2.0],
                   "nested": {"a": [1, 2, 3]}}
        framed = encode_message(message)
        (length,) = FRAME_HEADER.unpack(framed[:FRAME_HEADER.size])
        assert length == len(framed) - FRAME_HEADER.size
        assert decode_message(framed[FRAME_HEADER.size:]) == message

    def test_encode_rejects_oversized(self):
        with pytest.raises(FrameError) as excinfo:
            encode_message({"blob": "x" * 64}, max_bytes=32)
        assert excinfo.value.code == "oversized"

    @pytest.mark.parametrize("payload,code", [
        (b"\xff\xfe{}", "bad-utf8"),
        (b"{not json", "bad-json"),
        (b"[1, 2, 3]", "not-object"),
        (b"\"just a string\"", "not-object"),
    ])
    def test_decode_failures_are_typed(self, payload, code):
        with pytest.raises(FrameError) as excinfo:
            decode_message(payload)
        assert excinfo.value.code == code
        assert code in FRAME_ERROR_CODES

    def test_socket_transport_round_trip_and_clean_eof(self):
        router_end, worker_end = socket_pair()
        router_end.send({"id": 1, "op": "infer"})
        router_end.send({"id": 2})
        assert worker_end.recv() == {"id": 1, "op": "infer"}
        assert worker_end.recv() == {"id": 2}
        router_end.close()
        assert worker_end.recv() is None     # clean EOF between frames
        worker_end.close()

    def test_socket_transport_truncated_midframe(self):
        left, right = socket.socketpair()
        reader = SocketTransport(right)
        # a header promising 100 bytes, then only 10, then EOF
        left.sendall(FRAME_HEADER.pack(100) + b"0123456789")
        left.close()
        with pytest.raises(FrameError) as excinfo:
            reader.recv()
        assert excinfo.value.code == "truncated"
        reader.close()

    def test_socket_transport_oversized_keeps_stream_in_sync(self):
        left, right = socket.socketpair()
        writer, reader = SocketTransport(left), SocketTransport(
            right, max_bytes=64)
        big = json.dumps({"blob": "x" * 256}).encode()
        left.sendall(FRAME_HEADER.pack(len(big)) + big)
        writer.send({"id": "after"})
        with pytest.raises(FrameError) as excinfo:
            reader.recv()
        assert excinfo.value.code == "oversized"
        # the offending frame was consumed; the next one parses fine
        assert reader.recv() == {"id": "after"}
        writer.close()
        reader.close()

    def test_fake_transport_is_clock_gated_and_closable(self):
        clock = [0.0]
        router_end, worker_end = FakeTransport.pair(
            clock=lambda: clock[0])
        router_end.send({"id": 1})
        assert worker_end.recv() == {"id": 1}
        assert worker_end.recv() is None     # nothing in flight
        worker_end.close()
        with pytest.raises(TransportClosed):
            router_end.send({"id": 2})
        with pytest.raises(TransportClosed):
            router_end.recv()

    def test_fake_transport_yields_errors_then_lines(self):
        # close() is a reset (drops undelivered frames), so drain first
        router_end, worker_end = FakeTransport.pair()
        router_end.send_raw(b"\xff\xfe broken")
        router_end.send({"id": 1})

        def drain_available():
            # FakeTransport is non-blocking; adapt for frame_lines
            while True:
                try:
                    line = worker_end.recv_line()
                except TransportClosed:
                    return
                except FrameError as error:
                    yield error
                    continue
                if line is None:
                    return
                yield line

        items = list(drain_available())
        assert isinstance(items[0], FrameError)
        assert items[0].code == "bad-utf8"
        assert json.loads(items[1]) == {"id": 1}
        router_end.close()
        with pytest.raises(TransportClosed):
            worker_end.recv_line()

    def test_frame_lines_over_socket(self):
        writer, reader = socket_pair()
        writer.send({"id": 1})
        writer.send_raw(b"not json at all")
        writer.send({"id": 2})
        writer.close()
        items = list(frame_lines(reader))
        assert json.loads(items[0]) == {"id": 1}
        assert isinstance(items[1], str)     # valid utf-8 text line
        assert json.loads(items[2]) == {"id": 2}
        reader.close()


# ----------------------------------------------------------------------
# Property: numpy payloads round-trip byte-exactly
# ----------------------------------------------------------------------
class TestArrayWire:
    DTYPES = ["<f4", "<f8", "<i4", "<i8", "|u1", "<u2", "|b1"]
    SHAPES = [(), (1,), (7,), (2, 3), (4, 1, 2), (0,), (3, 0, 2)]

    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("shape", SHAPES)
    def test_round_trip_exact(self, dtype, shape):
        rng = np.random.default_rng(hash((dtype, shape)) % (2 ** 32))
        array = (rng.random(size=shape) * 100).astype(dtype)
        wire = array_to_wire(array, key="input")
        assert json.loads(json.dumps(wire)) == wire    # JSON-safe
        back = array_from_wire(wire, "input")
        assert back.dtype == np.dtype(dtype)
        assert back.shape == shape
        assert np.array_equal(back, array)

    def test_fuzz_random_dtype_shape_round_trips(self):
        rng = np.random.default_rng(1234)
        for _ in range(50):
            dtype = self.DTYPES[rng.integers(len(self.DTYPES))]
            shape = tuple(int(n) for n in
                          rng.integers(0, 5, size=rng.integers(0, 4)))
            array = (rng.random(size=shape) * 10).astype(dtype)
            back = array_from_wire(array_to_wire(array), "input")
            assert np.array_equal(back, array)
            assert back.dtype == array.dtype

    def test_non_contiguous_input_is_handled(self):
        array = np.arange(24, dtype=np.float32).reshape(4, 6)[:, ::2]
        back = array_from_wire(array_to_wire(array), "input")
        assert np.array_equal(back, array)

    def test_byte_count_mismatch_rejected(self):
        wire = array_to_wire(np.zeros(4, dtype=np.float32))
        wire["shape"] = [5]                 # declares 20 bytes, has 16
        with pytest.raises(ValueError, match="bytes"):
            array_from_wire(wire, "input")

    def test_bad_base64_rejected(self):
        wire = array_to_wire(np.zeros(2, dtype=np.float32))
        wire["input_b64"] = "!!! not base64 !!!"
        with pytest.raises(ValueError, match="base64"):
            array_from_wire(wire, "input")


# ----------------------------------------------------------------------
# serve_protocol: the malformed-request corpus answers typed codes
# ----------------------------------------------------------------------
def run_protocol(server, lines):
    out = io.StringIO()
    served = serve_protocol(server, lines, out)
    return served, [json.loads(line)
                    for line in out.getvalue().splitlines()]


class TestProtocolErrors:
    def test_malformed_corpus_is_answered_in_order(self, deployed):
        server = ModelServer(workers=0, max_batch=4)
        server.add("mlp", deployed[0])
        corpus = [
            (b"\xff\xfe\x00garbage", "bad-utf8"),
            ("{not json", "bad-json"),
            ("[1, 2, 3]", "not-object"),
            ('"a string"', "not-object"),
            ('{"op": "dance"}', "unknown-op"),
            ('{"op": "infer", "model": "mlp"}', "bad-request"),
            ('{"op": "infer", "input": [1]}', "bad-request"),
            ('{"model": "ghost", "input": [1]}', "unknown-model"),
            ('{"model": "mlp", "input": [[1], [1, 2]]}', "bad-request"),
            (FrameError("truncated", "stream ended mid-frame"),
             "truncated"),
        ]
        served, responses = run_protocol(server,
                                         [line for line, _ in corpus])
        server.close()
        assert served == 0                   # nothing actually ran
        assert [r["code"] for r in responses] == \
            [code for _, code in corpus]
        assert all("error" in r for r in responses)

    def test_oversized_line_answered_not_fatal(self, deployed):
        server = ModelServer(workers=0, max_batch=4)
        server.add("mlp", deployed[0])
        x = np.zeros(12, dtype=np.float32)
        lines = ["x" * 4096,
                 json.dumps({"id": 1, "model": "mlp",
                             "input": x.tolist()})]
        out = io.StringIO()
        serve_protocol(server, lines, out, max_line_bytes=1024)
        server.close()
        responses = [json.loads(line)
                     for line in out.getvalue().splitlines()]
        assert responses[0]["code"] == "oversized"
        assert responses[1]["id"] == 1 and "output" in responses[1]

    def test_shape_error_fails_request_not_server(self, deployed):
        server = ModelServer(workers=0, max_batch=4)
        server.add("mlp", deployed[0])
        good = np.zeros(12, dtype=np.float32)
        lines = [json.dumps({"id": 0, "model": "mlp",
                             "input": [1.0, 2.0]}),      # wrong shape
                 json.dumps({"id": 1, "model": "mlp",
                             "input": good.tolist()})]
        served, responses = run_protocol(server, lines)
        server.close()
        by_id = {r["id"]: r for r in responses}
        assert "error" in by_id[0]
        assert "output" in by_id[1]

    def test_mutation_fuzz_only_ever_raises_frame_errors(self):
        # Any byte-level mutation of a valid frame payload must decode
        # to a typed FrameError or a valid message — never anything else.
        rng = np.random.default_rng(99)
        base = json.dumps({"id": 3, "model": "m",
                           "input": [0.0, 1.5]}).encode()
        outcomes = set()
        for _ in range(300):
            data = bytearray(base)
            for _ in range(int(rng.integers(1, 4))):
                data[int(rng.integers(len(data)))] = \
                    int(rng.integers(256))
            try:
                decode_message(bytes(data))
                outcomes.add("ok")
            except FrameError as error:
                assert error.code in FRAME_ERROR_CODES
                outcomes.add(error.code)
        assert "bad-json" in outcomes        # the common corruption

    def test_binary_payload_request_answered_in_kind(self, deployed):
        deployment, quantized = deployed
        server = ModelServer(workers=0, max_batch=4)
        server.add("mlp", deployment)
        x = np.random.default_rng(3).normal(size=(12,)).astype(np.float32)
        lines = [json.dumps({"id": 0, "model": "mlp",
                             **array_to_wire(x)})]
        served, responses = run_protocol(server, lines)
        server.close()
        assert served == 1
        assert "output_b64" in responses[0]
        assert "output" not in responses[0]
        output = array_from_wire(responses[0], "output")
        assert np.array_equal(output, quantized.predict(x[None])[0])

    def test_stats_detail_echoes_id_and_aliases(self, deployed):
        server = ModelServer(workers=0, max_batch=4)
        server.add("mlp@v1", deployed[0])
        server.alias("mlp", "mlp@v1")
        lines = [json.dumps({"op": "stats", "detail": True, "id": 42})]
        _, responses = run_protocol(server, lines)
        server.close()
        payload = responses[0]
        assert payload["id"] == 42
        assert payload["aliases"] == {"mlp": "mlp@v1"}
        assert "mlp@v1" in payload["models"]
        fields = payload["models"]["mlp@v1"]
        # the detail dump is the full mergeable snapshot
        for key in ("requests", "batches", "wall_seconds",
                    "latencies_ms", "max_batch", "backend"):
            assert key in fields


# ----------------------------------------------------------------------
# Oversized responses: typed in-band answers, never unreadable frames
# ----------------------------------------------------------------------
class TestFrameWriterOversized:
    def test_oversized_write_becomes_typed_error_frame(self):
        router_end, worker_end = FakeTransport.pair(max_bytes=128)
        writer = FrameWriter(worker_end)
        writer.write(json.dumps({"id": 5, "blob": "x" * 4096}) + "\n")
        writer.write(json.dumps({"id": 6, "ok": True}) + "\n")
        answer = router_end.recv()
        assert answer["code"] == "oversized"
        assert answer["retryable"] is False
        assert answer["id"] == 5
        # the stream stays in sync: the next frame parses normally
        assert router_end.recv() == {"id": 6, "ok": True}
        router_end.close()

    def test_oversized_unparseable_line_still_answered(self):
        router_end, worker_end = FakeTransport.pair(max_bytes=128)
        FrameWriter(worker_end).write("x" * 4096 + "\n")
        answer = router_end.recv()
        assert answer["code"] == "oversized"
        assert "id" not in answer            # nothing to correlate with
        router_end.close()

    def test_raw_oversized_frame_is_typed_frame_error(self):
        # send_raw bypasses the writer's guard; the receiver still
        # classifies the frame with the same typed code
        router_end, worker_end = FakeTransport.pair(max_bytes=64)
        worker_end.send_raw(b"y" * 4096)
        with pytest.raises(FrameError) as excinfo:
            router_end.recv()
        assert excinfo.value.code == "oversized"
        router_end.close()

    def test_oversized_stats_response_round_trips_typed(self, deployed):
        # A stats detail dump whose latency window outgrows the frame
        # cap must answer a typed oversized error with the echoed id —
        # and the connection must keep serving afterwards.
        server = ModelServer(workers=0, max_batch=4)
        server.add("mlp", deployed[0])
        x = np.zeros(12, dtype=np.float32)
        for _ in range(40):
            server.submit("mlp", x)
        server.drain()
        router_end, worker_end = FakeTransport.pair(max_bytes=512)
        lines = [json.dumps({"op": "stats", "detail": True, "id": 42}),
                 json.dumps({"op": "stats", "id": 43})]
        serve_protocol(server, lines, FrameWriter(worker_end))
        server.close()
        detail = router_end.recv()
        assert detail["code"] == "oversized"
        assert detail["retryable"] is False
        assert detail["id"] == 42
        summary = router_end.recv()
        assert summary["id"] == 43
        assert summary["models"]["mlp"]["requests"] == 40
        router_end.close()


# ----------------------------------------------------------------------
# EOF flush vs worker done-callbacks: no lock-ordering deadlock
# ----------------------------------------------------------------------
class TestEofDrainRace:
    def test_eof_answers_do_not_deadlock_against_worker_flush(self):
        # Regression: drain() returns once the queues are empty, but a
        # worker may still be resolving its last batch — and resolving
        # request A fires a done-callback that flushes through the
        # protocol's wire lock. The EOF loop used to block on request
        # B's future *while holding* that lock, deadlocking against the
        # worker stuck in A's callback. Stage exactly that, with no
        # sleeps: the futures signal the moment the EOF loop blocks in
        # exception(), and only then does the "worker" resolve the
        # batch.
        from repro.serve.futures import InferenceFuture

        record = SimpleNamespace(latency_ms=0.25, batch_id=0,
                                 batch_size=2)
        eof_waiting = threading.Event()

        class SignalingFuture(InferenceFuture):
            def exception(self, timeout=None):
                eof_waiting.set()
                return super().exception(timeout)

        class MidBatchServer:
            def __init__(self):
                self.futures = []
                self.worker = None

            def submit(self, model, payload):
                future = SignalingFuture(model)
                self.futures.append(future)
                return future

            def drain(self):
                def resolve_batch():
                    eof_waiting.wait(10.0)  # EOF loop has blocked
                    for future in self.futures:
                        future._resolve(np.zeros(2, dtype=np.float32),
                                        record)
                self.worker = threading.Thread(target=resolve_batch,
                                               daemon=True)
                self.worker.start()

        server = MidBatchServer()
        out = io.StringIO()
        lines = [json.dumps({"id": i, "model": "m", "input": [0.0, 0.0]})
                 for i in range(2)]
        finished = threading.Event()

        def run():
            serve_protocol(server, lines, out)
            finished.set()

        threading.Thread(target=run, daemon=True).start()
        assert finished.wait(10.0), \
            "EOF flush deadlocked against the worker's done-callback"
        server.worker.join(5.0)
        answers = [json.loads(line)
                   for line in out.getvalue().splitlines()]
        assert sorted(answer["id"] for answer in answers) == [0, 1]
        assert all("output" in answer for answer in answers)


# ----------------------------------------------------------------------
# FIFO under seeded interleaved multi-model traffic
# ----------------------------------------------------------------------
class TestInterleavedFIFO:
    @pytest.mark.parametrize("seed", [0, 1, 17])
    def test_per_model_fifo_holds_under_seeded_interleaving(self, seed,
                                                            deployed):
        rng = np.random.default_rng(seed)
        alpha, _ = deployed
        beta, _ = build_deployment(seed=11, batch=3)
        server = ModelServer(workers=0, max_batch=4)
        server.add("alpha", alpha)
        server.add("beta", beta)
        lines, sent = [], {"alpha": [], "beta": []}
        for i in range(24):
            model = "alpha" if rng.random() < 0.5 else "beta"
            x = rng.normal(size=(12,)).astype(np.float32)
            use_binary = bool(rng.random() < 0.5)
            body = ({"id": i, "model": model, **array_to_wire(x)}
                    if use_binary
                    else {"id": i, "model": model, "input": x.tolist()})
            lines.append(json.dumps(body))
            sent[model].append(i)
        served, responses = run_protocol(server, lines)
        server.close()
        assert served == 24
        answered = [r for r in responses if "id" in r]
        assert all("error" not in r for r in answered)
        for model in ("alpha", "beta"):
            order = [r["id"] for r in answered if r["model"] == model]
            assert order == sent[model]      # FIFO per model, exactly

    def test_protocol_loop_over_fake_transport_matches_direct(self,
                                                              deployed):
        # The framed carrier must be invisible: serving N requests
        # through FrameWriter/recv gives the same answers as a plain
        # list of lines.
        deployment, quantized = deployed
        xs = [np.random.default_rng(i).normal(size=(12,))
              .astype(np.float32) for i in range(5)]
        lines = [json.dumps({"id": i, "model": "mlp",
                             "input": x.tolist()})
                 for i, x in enumerate(xs)]

        server = ModelServer(workers=0, max_batch=4)
        server.add("mlp", deployment)
        router_end, worker_end = FakeTransport.pair()
        for line in lines:
            router_end.send_raw(line.encode())
        collected = []
        while True:
            try:
                line = worker_end.recv_line()
            except TransportClosed:
                break
            if line is None:
                break
            collected.append(line)
        serve_protocol(server, collected, FrameWriter(worker_end))
        server.close()
        framed = []
        while True:
            message = router_end.recv()
            if message is None:
                break
            framed.append(message)
        assert [m["id"] for m in framed] == list(range(5))
        for message, x in zip(framed, xs):
            assert np.allclose(np.asarray(message["output"]),
                               quantized.predict(x[None])[0])
