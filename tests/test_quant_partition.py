"""Row partitioning (Alg. 2) and ratio semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ShapeError
from repro.quant import PartitionRatio, partition_rows, row_variances, to_gemm_matrix
from repro.quant.partition import from_gemm_matrix, partition_summary


class TestGemmMatrix:
    def test_linear_passthrough(self, rng):
        w = rng.normal(size=(8, 16))
        assert to_gemm_matrix(w).shape == (8, 16)

    def test_conv_flattens_filters(self, rng):
        w = rng.normal(size=(8, 4, 3, 3))
        matrix = to_gemm_matrix(w)
        assert matrix.shape == (8, 36)
        assert np.allclose(matrix[2], w[2].reshape(-1))

    def test_roundtrip(self, rng):
        w = rng.normal(size=(6, 2, 3, 3))
        assert np.allclose(from_gemm_matrix(to_gemm_matrix(w), w.shape), w)

    def test_bad_ndim(self, rng):
        with pytest.raises(ShapeError):
            to_gemm_matrix(rng.normal(size=(3,)))

    def test_row_variances(self):
        matrix = np.array([[1.0, 1.0], [0.0, 2.0]])
        assert np.allclose(row_variances(matrix), [0.0, 1.0])


class TestPartitionRatio:
    def test_sp2_fraction(self):
        assert PartitionRatio(2, 1).sp2_fraction == pytest.approx(2 / 3)
        assert PartitionRatio(1, 1).sp2_fraction == 0.5

    def test_from_string_default_order(self):
        ratio = PartitionRatio.from_string("2:1")
        assert ratio.sp2 == 2 and ratio.fixed == 1

    def test_from_string_fixed_first(self):
        ratio = PartitionRatio.from_string("1:1.5", order="fixed:sp2")
        assert ratio.sp2_fraction == pytest.approx(0.6)

    def test_invalid_strings(self):
        with pytest.raises(ConfigurationError):
            PartitionRatio.from_string("abc")
        with pytest.raises(ConfigurationError):
            PartitionRatio.from_string("1:2", order="weird")

    def test_invalid_values(self):
        with pytest.raises(ConfigurationError):
            PartitionRatio(0, 0)
        with pytest.raises(ConfigurationError):
            PartitionRatio(-1, 2)

    def test_half_and_half(self):
        assert PartitionRatio.half_and_half().sp2_fraction == 0.5


class TestPartitionRows:
    def test_low_variance_rows_to_sp2(self, rng):
        tight = rng.normal(0, 0.01, size=(4, 32))
        wide = rng.normal(0, 1.0, size=(4, 32))
        matrix = np.concatenate([wide, tight])
        partition = partition_rows(matrix, sp2_fraction=0.5)
        # The four tight rows (indices 4-7) must be the SP2 rows.
        assert np.array_equal(np.where(partition.sp2_mask)[0], [4, 5, 6, 7])

    def test_exact_count(self, rng):
        matrix = rng.normal(size=(30, 8))
        partition = partition_rows(matrix, sp2_fraction=2 / 3)
        assert partition.num_sp2 == 20
        assert partition.num_fixed == 10

    def test_threshold_separates(self, rng):
        matrix = rng.normal(size=(16, 8)) * \
            rng.uniform(0.1, 2.0, size=(16, 1))
        partition = partition_rows(matrix, sp2_fraction=0.5)
        assert np.all(partition.variances[partition.sp2_mask]
                      <= partition.threshold)

    def test_extremes(self, rng):
        matrix = rng.normal(size=(8, 4))
        assert partition_rows(matrix, 0.0).num_sp2 == 0
        assert partition_rows(matrix, 1.0).num_sp2 == 8

    def test_deterministic_under_ties(self):
        matrix = np.ones((6, 4))  # all variances identical
        a = partition_rows(matrix, 0.5)
        b = partition_rows(matrix, 0.5)
        assert np.array_equal(a.sp2_mask, b.sp2_mask)

    def test_invalid_fraction(self, rng):
        with pytest.raises(ConfigurationError):
            partition_rows(rng.normal(size=(4, 4)), 1.5)

    def test_conv_weight_accepted(self, rng):
        partition = partition_rows(rng.normal(size=(16, 3, 3, 3)), 0.5)
        assert partition.sp2_mask.size == 16

    @given(fraction=st.floats(min_value=0.0, max_value=1.0),
           rows=st.integers(min_value=1, max_value=64))
    @settings(max_examples=50, deadline=None)
    def test_count_matches_rounding(self, fraction, rows):
        matrix = np.random.default_rng(0).normal(size=(rows, 4))
        partition = partition_rows(matrix, fraction)
        assert partition.num_sp2 == int(round(fraction * rows))

    def test_summary_fields(self, rng):
        summary = partition_summary(
            partition_rows(rng.normal(size=(10, 6)), 0.3))
        assert summary["rows"] == 10
        assert summary["sp2_rows"] == 3
        assert summary["mean_var_sp2"] <= summary["mean_var_fixed"]
