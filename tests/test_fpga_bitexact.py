"""Bit-exact integer kernels: the SP2/fixed datapath computes exactly what
the float quantized model computes (the paper's central hardware claim)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuantizationError
from repro.fpga.bitexact import (
    float_reference,
    gemm_fixed_int,
    gemm_sp2_shiftadd,
    mixed_gemm_bitexact,
    sp2_weight_integers,
)
from repro.quant import (
    MixedSchemeQuantizer,
    Scheme,
    SchemeQuantizer,
    encode_sp2,
    shift_add_multiply,
    sp2_frac_bits,
)
from repro.quant.ste import ActivationQuantizer


def _quantized_layer(rng, rows=16, cols=32, ratio="2:1"):
    weights = rng.normal(0, 0.2, size=(rows, cols))
    msq = MixedSchemeQuantizer(bits=4, ratio=ratio).quantize(weights)
    act_quant = ActivationQuantizer(bits=4)
    x = np.abs(rng.normal(0, 1.0, size=(8, cols)))
    act_quant.observe(x)
    return x, msq, act_quant


class TestIntegerKernels:
    def test_fixed_gemm_is_integer_matmul(self, rng):
        acts = rng.integers(0, 16, size=(4, 8))
        weights = rng.integers(-7, 8, size=(5, 8))
        out = gemm_fixed_int(acts, weights)
        assert out.dtype == np.int64
        assert np.array_equal(out, acts @ weights.T)

    def test_fixed_gemm_rejects_floats(self, rng):
        with pytest.raises(QuantizationError):
            gemm_fixed_int(rng.normal(size=(2, 3)), np.ones((2, 3), int))

    def test_sp2_weight_integers_match_shift_add(self, rng):
        """Matrix formulation == per-element shift-add (Eq. 6)."""
        quantizer = SchemeQuantizer(Scheme.SP2, 4)
        result = quantizer.quantize(rng.normal(0, 0.3, size=64))
        code = encode_sp2(result.unit_values, 2, 1)
        acts = rng.integers(0, 16, size=64)
        per_element = shift_add_multiply(acts, code)
        via_ints = acts * sp2_weight_integers(code)
        assert np.array_equal(per_element, via_ints)

    def test_sp2_gemm_scale(self, rng):
        quantizer = SchemeQuantizer(Scheme.SP2, 4)
        result = quantizer.quantize(rng.normal(0, 0.3, size=(6, 16)))
        code = encode_sp2(result.unit_values, 2, 1)
        acts = rng.integers(0, 16, size=(3, 16))
        out = gemm_sp2_shiftadd(acts, code)
        expected = acts @ (result.unit_values * 2 ** sp2_frac_bits(2)).T
        assert np.allclose(out, expected)


class TestMixedGemm:
    def test_matches_float_reference(self, rng):
        x, msq, act_quant = _quantized_layer(rng)
        integer = mixed_gemm_bitexact(x, msq, act_quant)
        reference = float_reference(x, msq, act_quant)
        assert np.abs(integer["output"] - reference).max() < 1e-9

    @pytest.mark.parametrize("ratio", ["1:0", "0:1", "1:1", "2:1"])
    def test_all_ratios_exact(self, rng, ratio):
        x, msq, act_quant = _quantized_layer(rng, ratio=ratio)
        integer = mixed_gemm_bitexact(x, msq, act_quant)
        reference = float_reference(x, msq, act_quant)
        assert np.abs(integer["output"] - reference).max() < 1e-9

    @given(seed=st.integers(min_value=0, max_value=2_000),
           rows=st.integers(min_value=1, max_value=24),
           act_bits=st.integers(min_value=2, max_value=8))
    @settings(max_examples=25, deadline=None)
    def test_exactness_random(self, seed, rows, act_bits):
        rng = np.random.default_rng(seed)
        weights = rng.normal(0, rng.uniform(0.05, 1.0), size=(rows, 16))
        msq = MixedSchemeQuantizer(bits=4, ratio="1:1").quantize(weights)
        act_quant = ActivationQuantizer(bits=act_bits)
        x = np.abs(rng.normal(0, 1.0, size=(4, 16)))
        act_quant.observe(x)
        integer = mixed_gemm_bitexact(x, msq, act_quant)
        reference = float_reference(x, msq, act_quant)
        assert np.abs(integer["output"] - reference).max() < 1e-8

    def test_accumulators_are_integers(self, rng):
        x, msq, act_quant = _quantized_layer(rng)
        integer = mixed_gemm_bitexact(x, msq, act_quant)
        assert integer["acc_fixed"].dtype == np.int64
        assert integer["acc_sp2"].dtype == np.int64

    def test_linear_layer_end_to_end(self, rng, qat_result):
        """The first layer of the QAT-trained MLP, recomputed with the
        integer datapath, matches the float forward exactly."""
        first_name = next(iter(qat_result.layer_results))
        msq = qat_result.layer_results[first_name]
        # Build a calibrated act quantizer over positive inputs.
        act_quant = ActivationQuantizer(bits=4)
        x = np.abs(rng.normal(size=(16, msq.values.shape[1])))
        act_quant.observe(x)
        integer = mixed_gemm_bitexact(x, msq, act_quant)
        reference = float_reference(x, msq, act_quant)
        assert np.abs(integer["output"] - reference).max() < 1e-9
