"""Level sets of Eq. (1), (4), (8) — structure and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.quant import (
    Scheme,
    SchemeSpec,
    default_sp2_split,
    fixed_point_levels,
    levels_for,
    power_of_2_levels,
    sp2_levels,
    sp2_magnitude_terms,
)


class TestFixedPointLevels:
    def test_four_bit_count_and_extremes(self):
        levels = fixed_point_levels(4)
        assert len(levels) == 15  # 2^m - 1
        assert levels[0] == -1.0 and levels[-1] == 1.0
        assert 0.0 in levels

    def test_uniform_spacing(self):
        levels = fixed_point_levels(4)
        gaps = np.diff(levels)
        assert np.allclose(gaps, gaps[0])

    @given(bits=st.integers(min_value=2, max_value=8))
    def test_count_formula(self, bits):
        assert len(fixed_point_levels(bits)) == 2 ** bits - 1

    def test_symmetry(self):
        levels = fixed_point_levels(5)
        assert np.allclose(levels, -levels[::-1])


class TestPowerOf2Levels:
    def test_four_bit_values(self):
        levels = power_of_2_levels(4)
        positives = levels[levels > 0]
        assert np.allclose(positives,
                           [2.0 ** -e for e in range(6, -1, -1)])

    @given(bits=st.integers(min_value=2, max_value=8))
    def test_count_formula(self, bits):
        assert len(power_of_2_levels(bits)) == 2 ** bits - 1

    def test_density_concentrated_near_zero(self):
        """More than half the positive levels sit below 1/8 — the tail
        starvation that motivates SP2 (Fig. 1)."""
        levels = power_of_2_levels(4)
        positives = levels[levels > 0]
        assert (positives <= 0.125).sum() >= len(positives) / 2


class TestSP2Levels:
    def test_default_split(self):
        assert default_sp2_split(4) == (2, 1)
        assert default_sp2_split(5) == (2, 2)
        assert default_sp2_split(8) == (4, 3)

    def test_split_too_few_bits(self):
        with pytest.raises(ConfigurationError):
            default_sp2_split(2)

    def test_magnitude_terms(self):
        # Order is code order (index c <-> 2^-c, index 0 <-> 0).
        assert np.allclose(sorted(sp2_magnitude_terms(2)),
                           [0, 1 / 8, 1 / 4, 1 / 2])
        assert np.allclose(sorted(sp2_magnitude_terms(1)), [0, 1 / 2])

    def test_four_bit_exact_level_set(self):
        """m=4: q1+q2 sums with the documented duplicate collapse -> 13."""
        levels = sp2_levels(4)
        expected = sorted({a + b for a in (0, 1 / 8, 1 / 4, 1 / 2)
                           for b in (0, 1 / 2)})
        expected = sorted({-v for v in expected} | set(expected))
        assert np.allclose(levels, expected)
        assert len(levels) == 13

    def test_level_count_at_most_2m_minus_1(self):
        for bits in range(3, 9):
            assert len(sp2_levels(bits)) <= 2 ** bits - 1

    def test_all_levels_are_dyadic_sums(self):
        levels = sp2_levels(6)
        m1, m2 = default_sp2_split(6)
        q1 = set(sp2_magnitude_terms(m1))
        q2 = set(sp2_magnitude_terms(m2))
        sums = {a + b for a in q1 for b in q2}
        for level in levels:
            assert abs(level) in sums or np.isclose(abs(level),
                                                    min(sums, key=lambda s:
                                                        abs(s - abs(level))))

    def test_invalid_split_rejected(self):
        with pytest.raises(ConfigurationError):
            sp2_levels(4, m1=1, m2=2)   # m1 < m2
        with pytest.raises(ConfigurationError):
            sp2_levels(4, m1=3, m2=3)   # m1+m2+1 != bits

    def test_symmetry(self):
        levels = sp2_levels(5)
        assert np.allclose(levels, -levels[::-1])

    def test_spread_more_even_than_p2(self):
        """SP2's largest gap in (0, 1] is smaller than P2's — the Fig. 1
        tail argument, made quantitative."""
        sp2_pos = sp2_levels(4)
        sp2_pos = sp2_pos[sp2_pos >= 0]
        p2_pos = power_of_2_levels(4)
        p2_pos = p2_pos[p2_pos >= 0]
        assert np.diff(sp2_pos).max() < np.diff(p2_pos).max()


class TestSchemeSpec:
    def test_sp2_spec_fills_split(self):
        spec = SchemeSpec(Scheme.SP2, 4)
        assert (spec.m1, spec.m2) == (2, 1)

    def test_num_levels(self):
        assert SchemeSpec(Scheme.FIXED, 4).num_levels == 15
        assert SchemeSpec(Scheme.SP2, 4).num_levels == 13

    def test_levels_for_dispatch(self):
        assert np.allclose(levels_for(Scheme.FIXED, 4),
                           fixed_point_levels(4))
        with pytest.raises(ConfigurationError):
            levels_for(Scheme.MSQ, 4)

    def test_describe(self):
        assert "SP2" in SchemeSpec(Scheme.SP2, 4).describe()
        assert "m1=2" in SchemeSpec(Scheme.SP2, 4).describe()
