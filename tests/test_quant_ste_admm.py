"""STE fake-quantizers and the ADMM state machine (Alg. 1/2)."""

import numpy as np
import pytest

from repro import nn
from repro.errors import ConfigurationError
from repro.quant import (
    ActivationQuantizer,
    ADMMQuantizer,
    MixedSchemeQuantizer,
    Scheme,
    SchemeQuantizer,
    WeightSTEQuantizer,
    collect_quantizable,
    fake_quant_ste,
    verify_on_levels,
)
from repro.tensor import Tensor
from tests.conftest import make_mlp


class TestSTE:
    def test_forward_is_quantized(self, rng):
        x = Tensor(rng.normal(size=(4, 4)).astype(np.float32),
                   requires_grad=True)
        q = np.round(x.data)
        out = fake_quant_ste(x, q)
        assert np.allclose(out.data, q)

    def test_backward_is_identity(self, rng):
        x = Tensor(rng.normal(size=(4, 4)).astype(np.float32),
                   requires_grad=True)
        out = fake_quant_ste(x, np.round(x.data))
        out.sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_backward_through_clip_masks(self):
        x = Tensor(np.array([-2.0, 0.3, 2.0], dtype=np.float32),
                   requires_grad=True)
        clipped = x.clip(0.0, 1.0)
        out = fake_quant_ste(x, np.round(clipped.data * 3) / 3,
                             pass_through=clipped)
        out.sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0, 0.0])


class TestActivationQuantizer:
    def test_unsigned_levels(self, rng):
        quantizer = ActivationQuantizer(bits=4, alpha=1.0)
        x = rng.uniform(0, 1, size=1000)
        q = quantizer.quantize_array(x)
        codes = np.round(q * 15)
        assert np.allclose(codes, q * 15, atol=1e-9)
        assert q.min() >= 0 and q.max() <= 1.0

    def test_signed_levels(self):
        quantizer = ActivationQuantizer(bits=4, signed=True, alpha=1.0)
        q = quantizer.quantize_array(np.array([-2.0, -0.5, 0.5, 2.0]))
        assert q[0] == -1.0 and q[-1] == 1.0

    def test_calibration_tracks_running_max(self):
        quantizer = ActivationQuantizer(bits=4, momentum=0.5)
        quantizer.observe(np.array([2.0]))
        quantizer.observe(np.array([4.0]))
        assert quantizer.alpha == pytest.approx(3.0)

    def test_freeze_stops_calibration(self, rng):
        quantizer = ActivationQuantizer(bits=4)
        x = Tensor(rng.uniform(0, 1, size=8).astype(np.float32))
        quantizer(x)
        quantizer.calibrating = False
        alpha = quantizer.alpha
        quantizer(Tensor(np.full(8, 100.0, dtype=np.float32)))
        assert quantizer.alpha == alpha

    def test_codes_roundtrip(self, rng):
        quantizer = ActivationQuantizer(bits=4, alpha=2.0)
        x = rng.uniform(0, 2, size=64)
        codes = quantizer.to_codes(x)
        assert np.allclose(codes * quantizer.scale,
                           quantizer.quantize_array(x), atol=1e-12)

    def test_min_bits(self):
        with pytest.raises(ConfigurationError):
            ActivationQuantizer(bits=1)

    def test_uncalibrated_passthrough(self, rng):
        quantizer = ActivationQuantizer(bits=4)
        quantizer.calibrating = False
        x = Tensor(rng.normal(size=4).astype(np.float32))
        assert np.allclose(quantizer(x).data, x.data)


class TestCollectQuantizable:
    def test_mlp_weights_only(self):
        model = make_mlp()
        names = [name for name, _ in collect_quantizable(model)]
        assert names == ["0.weight", "2.weight", "4.weight"]

    def test_rnn_cells_both_matrices(self):
        model = nn.LSTM(4, 6)
        names = [name for name, _ in collect_quantizable(model)]
        assert "cell0.weight_ih" in names and "cell0.weight_hh" in names

    def test_skip_filter(self):
        model = make_mlp()
        names = [name for name, _ in collect_quantizable(model, skip=("0",))]
        assert "0.weight" not in names

    def test_no_quantizable_raises(self):
        with pytest.raises(ConfigurationError):
            collect_quantizable(nn.Sequential(nn.ReLU()))


class TestADMM:
    def _admm(self, model, scheme=Scheme.FIXED):
        factory = lambda name, w: SchemeQuantizer(scheme, 4)
        return ADMMQuantizer(model, factory, rho=1e-2)

    def test_initial_state(self):
        model = make_mlp()
        admm = self._admm(model)
        for entry in admm.entries:
            assert np.allclose(entry.z, entry.param.data)  # Z0 = W
            assert np.allclose(entry.u, 0.0)               # U0 = 0

    def test_epoch_update_invariant(self):
        """After the update, U = W - Z + U_prev (Alg. 1 line 4)."""
        model = make_mlp()
        admm = self._admm(model)
        u_prev = [entry.u.copy() for entry in admm.entries]
        admm.epoch_update()
        for entry, u0 in zip(admm.entries, u_prev):
            w = entry.param.data.astype(np.float64)
            assert np.allclose(entry.u, w - entry.z + u0)

    def test_z_on_level_set(self):
        model = make_mlp()
        admm = self._admm(model)
        admm.epoch_update()
        quantizer = SchemeQuantizer(Scheme.FIXED, 4)
        for entry in admm.entries:
            reprojected = quantizer.quantize(entry.z).values
            assert np.allclose(entry.z, reprojected, atol=1e-9)

    def test_penalty_positive_and_differentiable(self):
        model = make_mlp()
        admm = self._admm(model)
        admm.epoch_update()
        penalty = admm.penalty_loss()
        assert penalty.item() >= 0
        penalty.backward()
        assert admm.entries[0].param.grad is not None

    def test_penalty_pulls_weights_toward_levels(self, toy_task):
        """Training with only the proximal term must shrink ||W - Z||."""
        model = make_mlp()
        admm = self._admm(model)
        admm.epoch_update()

        def distance():
            return float(np.mean([
                np.abs(entry.param.data - entry.z).mean()
                for entry in admm.entries]))

        before = distance()
        optimizer = nn.SGD(model.parameters(), lr=1.0)
        for _ in range(40):
            loss = admm.penalty_loss()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert distance() < before * 0.8

    def test_finalize_projects_weights(self):
        model = make_mlp()
        admm = self._admm(model)
        results = admm.finalize()
        for result in results.values():
            verify_on_levels(result)

    def test_msq_partition_refreshed_per_epoch(self):
        model = make_mlp()
        factory = lambda name, w: MixedSchemeQuantizer(bits=4, ratio="1:1")
        admm = ADMMQuantizer(model, factory)
        admm.epoch_update()
        assert admm.entries[0].partition is not None
        fraction = admm.entries[0].partition.sp2_fraction
        assert fraction == pytest.approx(0.5, abs=0.1)

    def test_factory_none_disables_layer(self):
        model = make_mlp()
        factory = lambda name, w: (SchemeQuantizer(Scheme.FIXED, 4)
                                   if "0" in name else None)
        admm = ADMMQuantizer(model, factory)
        assert admm.layer_names == ["0.weight"]

    def test_all_disabled_raises(self):
        model = make_mlp()
        with pytest.raises(ConfigurationError):
            ADMMQuantizer(model, lambda name, w: None)

    def test_invalid_rho(self):
        model = make_mlp()
        with pytest.raises(ConfigurationError):
            ADMMQuantizer(model, lambda n, w: SchemeQuantizer(Scheme.FIXED, 4),
                          rho=0.0)


class TestWeightSTEQuantizer:
    def test_hook_applies_projection(self, rng):
        layer = nn.Linear(4, 3)
        quantizer = SchemeQuantizer(Scheme.FIXED, 4)
        layer.weight_quant = WeightSTEQuantizer(quantizer)
        x = Tensor(rng.normal(size=(2, 4)).astype(np.float32))
        out_quant = layer(x)
        layer.weight_quant = None
        out_fp = layer(x)
        assert not np.allclose(out_quant.data, out_fp.data)
