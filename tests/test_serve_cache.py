"""Response cache + in-flight dedup: hashing, store semantics, serving.

Four layers, mirroring the request path:

- :mod:`repro.util.hashing` — the consolidated digest primitives must be
  **byte-compatible** with the three ad-hoc helpers they replaced
  (codegen build cache, autotune eval cache, placement hash ring), and
  ``array_digest`` must hash strided views identically to their
  contiguous copies without materializing one;
- :class:`ResponseCache` / :class:`InflightTable` — LRU byte budget,
  lazy TTL against an injected clock, generation invalidation, leader/
  follower bookkeeping: all pure unit tests, no server;
- ``ModelServer`` integration — hits bypass the queue bit-identically,
  concurrent identical submits coalesce onto one batcher slot, a
  crashed batch fails every coalesced future exactly once, and alias
  rollover / unload / re-host can never serve stale bits (the hosting
  generation is part of the key, so staleness is structural);
- a backend x family property sweep — a cache hit returns exactly the
  bits the populating compute produced, on every backend and model
  family. (Bit-equality is defined against the populating batch: BLAS
  picks kernels per batch shape, so re-computing the same payload in a
  *different* batch composition may differ in low-order bits — which is
  precisely why the cache stores, rather than recomputes, the answer.)

No sleeps; every clock in this file is manual.
"""

import hashlib

import numpy as np
import pytest

from repro.api import Pipeline, PipelineConfig
from repro.errors import ConfigurationError
from repro.serve import (
    InferenceEngine,
    InflightTable,
    ModelServer,
    ResponseCache,
    post_training_quantize,
)
from repro.serve.cli import build_model
from repro.serve.codegen.build import _host_key, source_digest
from repro.serve.export import build_artifact
from repro.serve.placement import get_placement
from repro.serve.plan import ExecutionPlan
from repro.serve.server import ModelStats
from repro.util.hashing import array_digest, ring_hash, stable_digest
from tests.conftest import make_mlp


class ManualClock:
    """A clock tests advance explicitly; reading it never moves it."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> "ManualClock":
        self.now += seconds
        return self


def make_deployment(seed=7, batch=4):
    """A small, fast MLP deployment (input shape (12,), 3 logits)."""
    rng = np.random.default_rng(seed + 1000)
    pipeline = Pipeline(PipelineConfig(batch=batch), model=make_mlp(seed))
    pipeline.calibrate([rng.normal(size=(8, 12)).astype(np.float32)])
    return pipeline.deploy(), pipeline.result


def payloads(count, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=(12,)).astype(np.float32)
            for _ in range(count)]


def cached_server(deployment, *, cache_mb=4.0, ttl=None, clock=None,
                  name="mlp", max_batch=4):
    clock = clock or ManualClock()
    server = ModelServer(workers=0, max_batch=max_batch, clock=clock,
                         cache_mb=cache_mb, cache_ttl_s=ttl)
    server.add(name, deployment)
    return server, clock


# ----------------------------------------------------------------------
# Hashing: consolidation must be byte-compatible with what it replaced
# ----------------------------------------------------------------------
class TestHashing:
    def test_bytes_and_text_hash_as_raw_streams(self):
        # The legacy call sites fed hand-built byte strings straight to
        # hashlib.sha256; bare bytes/str must keep those digests.
        assert stable_digest(b"abc") == hashlib.sha256(b"abc").hexdigest()
        assert stable_digest("abc") == stable_digest(b"abc")
        pinned = ("ba7816bf8f01cfea414140de5dae2223"
                  "b00361a396177a9cb410ff61f20015ad")
        assert stable_digest("abc") == pinned
        assert stable_digest("abc", length=24) == pinned[:24]

    def test_source_digest_matches_legacy_formula(self):
        flags = ("-O2", "-fPIC")
        legacy = hashlib.sha256("\0".join(
            ("int main;", "cc", " ".join(flags), _host_key(flags))
        ).encode("utf-8")).hexdigest()[:24]
        assert source_digest("int main;", "cc", flags) == legacy

    def test_containers_are_framed_and_order_insensitive(self):
        assert stable_digest({"a": 1, "b": 2}) == \
            stable_digest({"b": 2, "a": 1})
        assert stable_digest({"a": 1}) != stable_digest({"a": 2})
        assert stable_digest(["ab"]) != stable_digest(["a", "b"])
        assert stable_digest([1, 2]) != stable_digest([12])

    def test_array_digest_strided_views_equal_contiguous_copy(self):
        rng = np.random.default_rng(3)
        base = rng.normal(size=(6, 8, 4)).astype(np.float32)
        for view in (base.transpose(2, 0, 1), base[:, ::2],
                     base[::-1], base[1:5, 2:7, :3]):
            assert not view.flags["C_CONTIGUOUS"]
            assert array_digest(view) == \
                array_digest(np.ascontiguousarray(view))

    def test_array_digest_separates_dtype_shape_and_bytes(self):
        data = np.arange(12, dtype=np.float32)
        assert array_digest(data) == array_digest(data.copy())
        assert array_digest(data) != array_digest(data.reshape(3, 4))
        assert array_digest(data) != array_digest(data.view(np.int32))
        assert array_digest(np.zeros(0, np.float32)) != \
            array_digest(np.zeros(0, np.float64))
        changed = data.copy()
        changed[5] += 1
        assert array_digest(data) != array_digest(changed)

    def test_ring_hash_matches_legacy_md5_and_pinned_values(self):
        for key in ("mlp", "w0#3", "model|payload-digest"):
            assert ring_hash(key) == int.from_bytes(
                hashlib.md5(key.encode("utf-8")).digest()[:8], "big")
        # Pinned: ring positions (-> worker assignments) may never shift.
        assert ring_hash("mlp") == 7647200662382040504
        assert ring_hash("w0#3") == 5725372898175210973

    def test_placement_ring_uses_the_shared_hash(self):
        policy = get_placement("consistent_hash")
        assert policy._hash("anything") == ring_hash("anything")


# ----------------------------------------------------------------------
# ResponseCache: budget, LRU, TTL, generations — pure unit tests
# ----------------------------------------------------------------------
def key_of(tag, generation=1):
    return ("artifact", generation, tag)


class TestResponseCache:
    def test_put_get_round_trip_is_exact_and_read_only(self):
        cache = ResponseCache(max_bytes=1 << 20)
        value = np.arange(6, dtype=np.float32)
        stored = cache.put(key_of("p"), value)
        value[0] = 99.0                      # caller mutates its copy...
        hit = cache.get(key_of("p"))
        assert np.array_equal(hit, [0, 1, 2, 3, 4, 5])   # ...cache doesn't
        assert hit is stored                 # zero-copy hot path
        assert not hit.flags.writeable
        with pytest.raises(ValueError):
            hit[0] = 1.0

    def test_lru_eviction_respects_byte_budget(self):
        entry = np.zeros(8, dtype=np.float32)        # 32 bytes each
        cache = ResponseCache(max_bytes=3 * entry.nbytes)
        for tag in ("a", "b", "c"):
            cache.put(key_of(tag), entry)
        cache.get(key_of("a"))               # refresh: b is now LRU
        cache.put(key_of("d"), entry)
        assert cache.get(key_of("b")) is None
        assert all(cache.get(key_of(tag)) is not None
                   for tag in ("a", "c", "d"))
        assert cache.evictions == 1
        assert cache.current_bytes == 3 * entry.nbytes

    def test_oversized_value_is_refused_not_destructive(self):
        cache = ResponseCache(max_bytes=64)
        cache.put(key_of("small"), np.zeros(4, dtype=np.float32))
        assert cache.put(key_of("huge"),
                         np.zeros(1000, dtype=np.float32)) is None
        assert cache.get(key_of("small")) is not None    # survived
        assert len(cache) == 1

    def test_ttl_expiry_is_lazy_against_injected_clock(self):
        clock = ManualClock()
        cache = ResponseCache(max_bytes=1 << 20, ttl_s=10.0, clock=clock)
        cache.put(key_of("p"), np.ones(3))
        clock.advance(9.9)
        assert cache.get(key_of("p")) is not None
        clock.advance(0.2)
        assert cache.get(key_of("p")) is None
        assert cache.expirations == 1
        assert cache.current_bytes == 0

    def test_replacing_a_key_reaccounts_bytes(self):
        cache = ResponseCache(max_bytes=1 << 20)
        cache.put(key_of("p"), np.zeros(100, dtype=np.float32))
        cache.put(key_of("p"), np.zeros(2, dtype=np.float32))
        assert len(cache) == 1
        assert cache.current_bytes == 8

    def test_generation_invalidation_and_byte_accounting(self):
        cache = ResponseCache(max_bytes=1 << 20)
        cache.put(key_of("p", generation=1), np.zeros(4, np.float32))
        cache.put(key_of("q", generation=1), np.zeros(4, np.float32))
        cache.put(key_of("p", generation=2), np.zeros(4, np.float32))
        assert cache.bytes_for(1) == 32 and cache.bytes_for(2) == 16
        assert cache.invalidate(1) == 2
        assert cache.bytes_for(1) == 0
        assert cache.get(key_of("p", generation=1)) is None
        assert cache.get(key_of("p", generation=2)) is not None
        assert cache.invalidations == 2

    def test_counters_and_stats_shape(self):
        cache = ResponseCache(max_bytes=1 << 20)
        cache.put(key_of("p"), np.ones(2))
        cache.get(key_of("p"))
        cache.get(key_of("miss"))
        assert cache.hit_rate == 0.5
        stats = cache.stats()
        assert stats["hits"] == stats["misses"] == 1
        assert stats["entries"] == 1 and stats["max_bytes"] == 1 << 20
        assert "1 hits / 1 misses" in cache.format()

    def test_configuration_validation(self):
        with pytest.raises(ConfigurationError):
            ResponseCache(max_bytes=0)
        with pytest.raises(ConfigurationError):
            ResponseCache(max_bytes=64, ttl_s=0.0)


class TestInflightTable:
    def test_leader_follower_lifecycle(self):
        table = InflightTable()
        entry = table.begin(key_of("p"), 1, leader="leader-future")
        assert table.get(key_of("p")) is entry
        entry.followers.append(("f", "record"))
        popped = table.pop(key_of("p"))
        assert popped is entry and popped.followers == [("f", "record")]
        assert table.get(key_of("p")) is None
        assert table.pop(key_of("p")) is None    # idempotent

    def test_duplicate_begin_rejected(self):
        table = InflightTable()
        table.begin(key_of("p"), 1, leader="a")
        with pytest.raises(ConfigurationError):
            table.begin(key_of("p"), 1, leader="b")

    def test_pop_generation_detaches_only_that_generation(self):
        table = InflightTable()
        table.begin(key_of("p", 1), 1, leader="a")
        table.begin(key_of("q", 1), 1, leader="b")
        table.begin(key_of("p", 2), 2, leader="c")
        detached = table.pop_generation(1)
        assert {e.leader for e in detached} == {"a", "b"}
        assert len(table) == 1 and table.get(key_of("p", 2)) is not None


# ----------------------------------------------------------------------
# ModelServer integration: hits, coalescing, crash, rollover
# ----------------------------------------------------------------------
class TestServerCache:
    def test_hit_bypasses_queue_bit_identically(self):
        deployment, _ = make_deployment()
        server, _ = cached_server(deployment)
        x = payloads(1)[0]
        cold = server.submit("mlp", x)
        assert not cold.done()               # true miss: queued
        server.drain()
        reference = cold.result(timeout=0)
        hit = server.submit("mlp", x)
        assert hit.done()                    # answered without the queue
        assert hit.cached and not cold.cached
        assert np.array_equal(hit.result(timeout=0), reference)
        assert hit.request.fpga_ms == 0.0
        stats = server.stats()["mlp"]
        assert stats.requests == 1           # engine served once
        assert stats.cache_hits == 1 and stats.cache_bytes > 0
        assert stats.cache_hit_rate == 0.5
        server.close()

    def test_distinct_payloads_never_alias(self):
        deployment, quantized = make_deployment()
        server, _ = cached_server(deployment)
        xs = payloads(6)
        first = [server.submit("mlp", x) for x in xs]
        server.drain()
        again = [server.submit("mlp", x) for x in xs]
        for cold, warm, x in zip(first, again, xs):
            assert warm.cached
            assert np.array_equal(warm.result(timeout=0),
                                  cold.result(timeout=0))
            assert np.allclose(warm.result(timeout=0),
                               quantized.predict(x[None])[0])
        server.close()

    def test_concurrent_identical_submits_coalesce_one_slot(self):
        deployment, _ = make_deployment()
        server, _ = cached_server(deployment)
        x = payloads(1)[0]
        leader = server.submit("mlp", x)
        followers = [server.submit("mlp", x) for _ in range(3)]
        assert all(not f.done() for f in followers)
        served = server.drain()
        assert served == 1                   # one batcher slot for all 4
        reference = leader.result(timeout=0)
        for follower in followers:
            assert follower.coalesced
            assert np.array_equal(follower.result(timeout=0), reference)
            assert follower.request.batch_size == \
                leader.request.batch_size
        stats = server.stats()["mlp"]
        assert stats.requests == 1 and stats.dedup_coalesced == 3
        server.close()

    def test_crashed_batch_fails_every_coalesced_future_exactly_once(self):
        deployment, _ = make_deployment()
        server, _ = cached_server(deployment)
        entry = server._models["mlp"]
        x = payloads(1)[0]
        leader = server.submit("mlp", x)
        followers = [server.submit("mlp", x) for _ in range(2)]
        fail_counts = {id(f): 0 for f in followers}

        def counting_fail(future, original):
            def wrapped(error):
                fail_counts[id(future)] += 1
                original(error)
            return wrapped

        for follower in followers:
            follower._fail = counting_fail(follower, follower._fail)

        def boom(batch):
            raise RuntimeError("kernel died mid-batch")

        entry.engine.infer = boom
        server.drain()
        assert isinstance(leader.exception(timeout=0), RuntimeError)
        for follower in followers:
            assert isinstance(follower.exception(timeout=0), RuntimeError)
            assert fail_counts[id(follower)] == 1
        stats = server.stats()["mlp"]
        assert stats.errors == 1 and stats.cache_hits == 0
        # the failure was not cached and the in-flight entry is gone:
        # a retry recomputes and succeeds
        del entry.engine.infer
        retry = server.submit("mlp", x)
        assert not retry.done()
        server.drain()
        assert retry.exception(timeout=0) is None
        server.close()

    def test_alias_rollover_never_serves_stale_bits(self):
        old, _ = make_deployment(seed=7)
        new, _ = make_deployment(seed=23)
        clock = ManualClock()
        server = ModelServer(workers=0, max_batch=4, clock=clock,
                             cache_mb=4.0)
        server.add("mlp@v1", old)
        server.alias("mlp", "mlp@v1")
        x = payloads(1)[0]
        cold = server.submit("mlp", x)
        server.drain()
        before = cold.result(timeout=0)
        assert server.submit("mlp", x).cached    # warm on v1
        v1_generation = server._models["mlp@v1"].generation

        server.add("mlp@v2", new)
        server.alias("mlp", "mlp@v2")            # rollover
        rolled = server.submit("mlp", x)
        assert not rolled.done()                 # structural miss, no
        server.drain()                           # stale v1 answer
        after = rolled.result(timeout=0)
        assert not np.allclose(before, after)    # genuinely the new model
        warm = server.submit("mlp", x)
        assert warm.cached
        assert np.array_equal(warm.result(timeout=0), after)
        # v1's bytes stay budgeted until it is actually unloaded
        assert server._cache.bytes_for(v1_generation) > 0
        server.unload("mlp@v1")
        assert server._cache.bytes_for(v1_generation) == 0
        server.close()

    def test_unload_and_rehost_mints_fresh_generation(self):
        deployment, _ = make_deployment()
        server, _ = cached_server(deployment)
        x = payloads(1)[0]
        server.submit("mlp", x)
        server.drain()
        assert server.submit("mlp", x).cached
        server.unload("mlp")
        server.add("mlp", deployment)            # same weights, new hosting
        fresh = server.submit("mlp", x)
        assert not fresh.done()                  # digest equal, generation not
        server.drain()
        assert fresh.exception(timeout=0) is None
        assert server.stats()["mlp"].cache_hits == 0
        server.close()

    def test_ttl_expiry_recomputes_through_server(self):
        deployment, _ = make_deployment()
        server, clock = cached_server(deployment, ttl=5.0)
        x = payloads(1)[0]
        server.submit("mlp", x)
        server.drain()
        clock.advance(4.9)
        assert server.submit("mlp", x).cached
        clock.advance(5.1)                       # refreshed entry expires
        expired = server.submit("mlp", x)
        assert not expired.done()
        server.drain()
        assert expired.exception(timeout=0) is None
        server.close()

    def test_cache_off_leaves_submit_path_untouched(self):
        deployment, _ = make_deployment()
        server = ModelServer(workers=0, max_batch=4, clock=ManualClock())
        server.add("mlp", deployment)
        x = payloads(1)[0]
        for _ in range(2):
            future = server.submit("mlp", x)
            assert not future.done()             # no cache: always queued
            server.drain()
            assert not future.cached and not future.coalesced
        assert not server.cache_enabled
        assert server.cache_stats() is None
        stats = server.stats()["mlp"]
        assert stats.requests == 2 and stats.cache_hits == 0
        server.close()

    def test_stats_wire_round_trip_and_merge_carry_cache_counters(self):
        deployment, _ = make_deployment()
        server, _ = cached_server(deployment)
        x, y = payloads(2)
        server.submit("mlp", x)
        server.submit("mlp", x)                  # coalesces
        server.submit("mlp", y)
        server.drain()
        server.submit("mlp", x)                  # hits
        snapshot = server.stats()["mlp"]
        assert (snapshot.cache_hits, snapshot.dedup_coalesced) == (1, 1)
        assert snapshot.cache_bytes > 0
        restored = ModelStats.from_wire(snapshot.to_wire())
        assert restored.cache_hits == 1
        assert restored.dedup_coalesced == 1
        assert restored.cache_bytes == snapshot.cache_bytes
        merged = snapshot.merge(restored)
        assert merged.cache_hits == 2 and merged.dedup_coalesced == 2
        assert "cache 1 hits + 1 coalesced" in snapshot.format()
        detail = server.cache_stats()
        assert detail["models"]["mlp"]["hits"] == 1
        assert detail["cache"]["entries"] == 2
        server.close()

    def test_cache_mb_validation(self):
        with pytest.raises(ConfigurationError):
            ModelServer(workers=0, cache_mb=-1.0)


# ----------------------------------------------------------------------
# Property sweep: hits return the populating compute's exact bits,
# on every backend x model family
# ----------------------------------------------------------------------
FAMILIES = {
    "resnet": "resnet_tiny",
    "mobilenet_v2": "mobilenet_v2",
    "lstm": "lstm_lm",
    "gru": "gru_speech",
    "yolo_head": "yolo_lite",
}
ALL_BACKENDS = ("reference", "fused", "compiled")


def _require(backend: str) -> None:
    if backend == "compiled":
        from repro.serve.codegen import compiler_probe

        compiler, note = compiler_probe()
        if compiler is None:
            pytest.skip(f"compiled backend needs a C compiler: {note}")


@pytest.fixture(scope="module")
def family_artifacts():
    built = {}
    for family, name in FAMILIES.items():
        model, sample = build_model(name, seed=0)
        rng = np.random.default_rng(11)
        results = post_training_quantize(model, [sample(rng, 8)])
        built[family] = (build_artifact(model, sample(rng, 4),
                                        layer_results=results, name=name),
                        sample)
    return built


class TestCacheParityEverywhere:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("backend", sorted(ALL_BACKENDS))
    def test_hits_equal_populating_compute(self, family, backend,
                                           family_artifacts):
        _require(backend)
        artifact, sample = family_artifacts[family]
        clock = ManualClock()
        engine = InferenceEngine(ExecutionPlan(artifact, backend=backend),
                                 clock=clock)
        server = ModelServer(workers=0, max_batch=4, clock=clock,
                             cache_mb=16.0)
        server.add_engine("m", engine)
        batch = sample(np.random.default_rng(101), 6)
        cold = [server.submit("m", row) for row in batch]
        server.drain()
        references = [future.result(timeout=0) for future in cold]
        warm = [server.submit("m", row) for row in batch]
        for future, reference in zip(warm, references):
            assert future.done() and future.cached
            assert np.array_equal(future.result(timeout=0), reference)
        assert server.stats()["m"].cache_hits == len(batch)
        server.close()
