"""Report formatting, the GPU reference point, and the experiment CLI."""

import numpy as np
import pytest

from repro.experiments import runner
from repro.experiments.common import get_scale, optimal_ratio_string
from repro.errors import ConfigurationError
from repro.fpga.gpu_reference import gpu_vs_fpga, jetson_agx_reference
from repro.fpga.report import (
    efficiency_metrics,
    format_table,
    utilization_bar,
)
from repro.fpga.resources import reference_designs


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["a", "long_header"], [["x", 1], ["yy", 22]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long_header" in lines[1]
        # All data rows have equal width.
        assert len(lines[3]) == len(lines[4])

    def test_empty_rows(self):
        text = format_table(["only"], [])
        assert "only" in text


class TestEfficiencyMetrics:
    def test_table9_style_numbers(self):
        design = reference_designs()["D2-3"]
        metrics = efficiency_metrics(design, gops=359.2)
        assert metrics["gops_per_dsp"] == pytest.approx(359.2 / 880, rel=0.01)
        assert metrics["gops_per_klut"] == pytest.approx(
            359.2 / 145.049, rel=0.01)

    def test_utilization_bar_format(self):
        bar = utilization_bar({"lut": 0.76, "dsp": 1.0})
        assert "LUT=76%" in bar and "DSP=100%" in bar


class TestGpuReference:
    def test_published_numbers(self):
        gpu = jetson_agx_reference()
        assert gpu.fps == 78.0
        assert gpu.fps_per_watt == pytest.approx(78.0 / 12.5)

    def test_efficiency_ratio_matches_paper_claim(self):
        """99.1 FPS at 4 W vs 78 FPS at 12.5 W -> ~4x ('more than 3x')."""
        comparison = gpu_vs_fpga(fpga_fps=99.1)
        assert comparison["efficiency_ratio"] > 3.0
        assert comparison["fps_ratio"] == pytest.approx(99.1 / 78.0)


class TestCommonHelpers:
    def test_scales(self):
        assert get_scale("ci").is_ci
        assert not get_scale("full").is_ci
        with pytest.raises(ConfigurationError):
            get_scale("huge")

    def test_scale_passthrough(self):
        scale = get_scale("ci")
        assert get_scale(scale) is scale

    def test_optimal_ratio_is_papers(self):
        """32:16 PE columns == the paper's 2:1 SP2:fixed optimum."""
        from repro.quant import PartitionRatio

        ratio = PartitionRatio.from_string(optimal_ratio_string())
        assert ratio.sp2_fraction == pytest.approx(2 / 3)


class TestRunnerCli:
    def test_list_mode(self, capsys):
        assert runner.main([]) == 0
        out = capsys.readouterr().out
        assert "table8" in out and "Figure 2" in out

    def test_run_fast_experiment(self, capsys):
        assert runner.main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out and "XC7Z045" in out

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            runner.main(["table42"])
