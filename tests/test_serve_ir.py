"""Graph IR: lowering, shape inference, passes, static workload derivation."""

import numpy as np
import pytest

from repro.errors import ExportError
from repro.serve import ExecutionPlan, lower_artifact, post_training_quantize
from repro.serve.backends import compile_graph
from repro.serve.cli import build_model
from repro.serve.export import build_artifact
from repro.serve.ir import synthetic_batch
from repro.serve.passes import run_passes


def make_artifact(name, tmp_path=None, seed=0):
    model, sample = build_model(name, seed=seed)
    rng = np.random.default_rng(seed + 100)
    results = post_training_quantize(model, [sample(rng, 8)])
    return model, build_artifact(model, sample(rng, 4),
                                 layer_results=results, name=name)


# ----------------------------------------------------------------------
# Lowering + shape inference
# ----------------------------------------------------------------------
class TestLowering:
    def test_resnet_lowers_to_flat_dag(self):
        _, artifact = make_artifact("resnet_tiny")
        graph = lower_artifact(artifact)
        kinds = [node.kind for node in graph.nodes]
        # Residual blocks become explicit branch chains joined by add nodes.
        assert kinds.count("add") == 3
        assert "residual" not in kinds
        assert kinds[0] == "input"
        # Every node references only earlier nodes (topological order).
        seen = set()
        for node in graph.nodes:
            assert all(i in seen for i in node.inputs)
            seen.add(node.id)

    def test_shapes_inferred_per_request(self):
        _, artifact = make_artifact("resnet_tiny")
        graph = lower_artifact(artifact)
        by_name = {n.name: n for n in graph.nodes if n.name}
        assert by_name["conv1"].output_shape == (8, 16, 16)
        assert by_name["stages.1.0.conv1"].output_shape == (16, 8, 8)
        assert by_name["fc"].output_shape == (10,)
        assert graph.node(graph.output_id).output_shape == (10,)

    def test_rnn_graph_shapes_and_merge_flag(self):
        _, artifact = make_artifact("lstm_lm")
        graph = lower_artifact(artifact)
        kinds = [n.kind for n in graph.nodes]
        assert kinds == ["input", "embedding", "rnn", "merge_time", "linear"]
        embedding, rnn, merge, decoder = graph.nodes[1:]
        assert embedding.output_shape == (12, 16)
        assert rnn.output_shape == (12, 24)
        assert merge.merged_time
        assert decoder.output_shape == (12, 40)

    def test_token_bound_from_embedding(self):
        _, artifact = make_artifact("lstm_lm")
        graph = lower_artifact(artifact)
        assert graph.token_bound() == 40
        batch = synthetic_batch(graph, n=3)
        assert batch.shape == (3, 12)
        assert batch.dtype == np.int64
        assert batch.max() < 40


# ----------------------------------------------------------------------
# Workloads derived statically (no forward pass)
# ----------------------------------------------------------------------
class TestStaticWorkloads:
    def test_workloads_available_before_any_forward(self, tmp_path):
        _, artifact = make_artifact("resnet_tiny")
        path = tmp_path / "rt.npz"
        artifact.save(path)
        plan = ExecutionPlan.load(path)  # freshly loaded, never run
        workloads = plan.workloads()
        assert len(workloads) == 10
        assert all(w.macs > 0 for w in workloads)

    def test_simulate_on_fresh_plan_is_not_empty(self, tmp_path):
        _, artifact = make_artifact("resnet_tiny")
        path = tmp_path / "rt.npz"
        artifact.save(path)
        plan = ExecutionPlan.load(path)
        report = plan.simulate(batch=1)
        assert report.latency_ms > 0
        assert report.total_cycles > 0

    def test_static_workloads_match_recorded_manifest(self):
        # Export writes the same dims into the manifest as the IR derives.
        _, artifact = make_artifact("resnet_tiny")
        graph = lower_artifact(artifact)
        derived = {w.name: w for w in graph.workloads()}
        for node in graph.nodes:
            if node.kind in ("conv", "linear"):
                recorded = node.spec["workload"]
                workload = derived[node.name]
                assert workload.rows == recorded["rows"]
                assert workload.reduction == recorded["reduction"]
                assert workload.columns == recorded["columns"]

    def test_rnn_recurrent_workloads_sequential(self):
        _, artifact = make_artifact("gru_speech")
        graph = lower_artifact(artifact)
        sequential = [w for w in graph.workloads() if w.sequential_columns]
        assert len(sequential) == 2  # one W_hh GEMM per GRU layer

    def test_columns_scale_with_batch(self):
        _, artifact = make_artifact("resnet_tiny")
        graph = lower_artifact(artifact)
        one = graph.workloads(batch=1)
        sixteen = graph.workloads(batch=16)
        assert all(b.columns == 16 * a.columns for a, b in zip(one, sixteen))


# ----------------------------------------------------------------------
# Passes
# ----------------------------------------------------------------------
class TestPasses:
    def test_fold_batchnorm_attaches_epilogues(self):
        _, artifact = make_artifact("resnet_tiny")
        graph = lower_artifact(artifact)
        before = sum(1 for n in graph.nodes
                     if n.kind.startswith("batchnorm"))
        log = run_passes(graph, ["fold_batchnorm"])
        assert log == [f"fold_batchnorm: folded {before}"]
        assert not any(n.kind.startswith("batchnorm") for n in graph.nodes)
        convs = [n for n in graph.nodes if n.kind == "conv"]
        assert all(n.epilogues and n.epilogues[0]["op"] == "batchnorm2d"
                   for n in convs)

    def test_subsumed_relu_eliminated(self):
        _, artifact = make_artifact("resnet_tiny")
        graph = lower_artifact(artifact)
        run_passes(graph, ["fold_batchnorm", "fuse_activations",
                           "eliminate_subsumed_relu"])
        # A ReLU whose only consumer re-clips to [0, alpha] is dead work;
        # only activations feeding non-quantized ops survive.
        relu_epilogues = sum(1 for n in graph.nodes for e in n.epilogues
                             if e["op"] == "relu")
        standalone = sum(1 for n in graph.nodes if n.kind == "relu")
        assert relu_epilogues + standalone < 3

    def test_passes_preserve_bit_exactness(self):
        # The optimized fused graph must produce the exact reference bits
        # (compile_graph verifies this; run it explicitly here).
        for name in ("resnet_tiny", "mobilenet_v2"):
            _, artifact = make_artifact(name)
            fused = compile_graph(artifact, "fused")      # verifies
            reference = compile_graph(artifact, "reference")
            batch = synthetic_batch(fused.source_graph, n=3, seed=7)
            assert np.array_equal(fused.run(batch), reference.run(batch))

    def test_unknown_pass_rejected(self):
        _, artifact = make_artifact("resnet_tiny")
        graph = lower_artifact(artifact)
        with pytest.raises(ExportError):
            run_passes(graph, ["not_a_pass"])

    def test_scratch_planned_for_convs(self):
        _, artifact = make_artifact("resnet_tiny")
        graph = lower_artifact(artifact)
        run_passes(graph, ["plan_scratch"])
        conv = next(n for n in graph.nodes if n.kind == "conv")
        assert set(conv.scratch) == {"padded", "cols", "gemm_out"}


# ----------------------------------------------------------------------
# Compile-time verification
# ----------------------------------------------------------------------
class TestVerification:
    def test_broken_backend_is_rejected(self, monkeypatch):
        from repro.serve.backends import fused as fused_module

        _, artifact = make_artifact("resnet_tiny")

        class BrokenConv(fused_module.FusedConvKernel):
            def run(self, x):
                out = super().run(x)
                return out + np.float32(1e-3)  # subtly wrong kernel

        monkeypatch.setitem(fused_module._FUSED_KERNELS, "conv", BrokenConv)
        with pytest.raises(ExportError, match="deviates from the reference"):
            compile_graph(artifact, "fused")

    def test_runtime_guardrail_checks_new_batch_sizes(self):
        _, artifact = make_artifact("resnet_tiny")
        model = compile_graph(artifact, "fused")
        assert model.runtime_oracle_factory is not None
        rng = np.random.default_rng(0)
        before = set(model._verified_sizes)
        batch = rng.normal(size=(5, 3, 16, 16)).astype(np.float32)
        model.run(batch)
        assert 5 in model._verified_sizes
        assert model._verified_sizes >= before

    def test_reference_backend_skips_verification(self):
        _, artifact = make_artifact("resnet_tiny")
        model = compile_graph(artifact, "reference")
        assert model.runtime_oracle_factory is None
