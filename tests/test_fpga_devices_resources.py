"""Device catalog (Fig. 2) and calibrated resource model (Tables VII/VIII,
Fig. 4). These tests pin the model to the paper's published numbers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ResourceError
from repro.fpga.devices import Device, get_device, list_devices, \
    resource_ratios
from repro.fpga.resources import (
    GemmDesign,
    bram_per_sp2_mac,
    check_fits,
    design_resources,
    design_utilization,
    dsp_per_mac,
    ff_per_sp2_mac,
    lut_per_sp2_mac,
    max_block_out_fixed,
    peak_throughput_gops,
    reference_designs,
)

PAPER_PEAKS = {"D1-1": 52.8, "D1-2": 105.6, "D1-3": 132.0,
               "D2-1": 208.0, "D2-2": 416.0, "D2-3": 624.0}
PAPER_LUT = {"D1-1": 12_160, "D1-2": 22_912, "D1-3": 28_288,
             "D2-1": 41_830, "D2-2": 93_440, "D2-3": 145_049}
PAPER_FIG4_LUT = {"D1-1": 0.46, "D1-2": 0.66, "D1-3": 0.77,
                  "D2-1": 0.24, "D2-2": 0.48, "D2-3": 0.72}


class TestDeviceCatalog:
    def test_lookup_and_aliases(self):
        assert get_device("XC7Z020").dsp == 220
        assert get_device("7z045").lut == 218_600

    def test_unknown_device(self):
        with pytest.raises(ConfigurationError):
            get_device("XC7Z999")

    def test_figure2_ratios_match_paper(self):
        paper = {
            "XC7Z045": (242.9, 485.8, 21.8),
            "XC7Z020": (241.8, 483.6, 22.9),
            "XCZU2CG": (196.8, 393.6, 22.5),
            "XCZU3CG": (196.0, 392.0, 21.6),
            "XCZU4CG": (120.7, 241.3, 6.3),
            "XCZU5CG": (93.8, 187.7, 4.2),
        }
        ratios = resource_ratios()
        for device, (lut, ff, bram) in paper.items():
            assert ratios[device]["lut_per_dsp"] == pytest.approx(lut, abs=0.1)
            assert ratios[device]["ff_per_dsp"] == pytest.approx(ff, abs=0.1)
            assert ratios[device]["bram_kb_per_dsp"] == pytest.approx(
                bram, abs=0.1)

    def test_catalog_size(self):
        assert len(list_devices()) >= 6


class TestPeakThroughput:
    @pytest.mark.parametrize("name", list(PAPER_PEAKS))
    def test_matches_table7(self, name):
        design = reference_designs()[name]
        assert peak_throughput_gops(design) == pytest.approx(
            PAPER_PEAKS[name], rel=0.005)

    def test_scales_with_frequency(self):
        design = reference_designs()["D1-1"]
        doubled = GemmDesign(design.device, design.batch, design.block_in,
                             design.block_out_fixed, design.block_out_sp2,
                             freq_mhz=200.0)
        assert peak_throughput_gops(doubled) == pytest.approx(
            2 * peak_throughput_gops(design))


class TestResourceModel:
    @pytest.mark.parametrize("name", list(PAPER_LUT))
    def test_lut_matches_table8(self, name):
        design = reference_designs()[name]
        assert design_resources(design).lut == pytest.approx(
            PAPER_LUT[name], rel=0.002)

    @pytest.mark.parametrize("name", list(PAPER_FIG4_LUT))
    def test_figure4_lut_within_2_points(self, name):
        design = reference_designs()[name]
        util = design_utilization(design)
        assert util["lut"] == pytest.approx(PAPER_FIG4_LUT[name], abs=0.02)

    @pytest.mark.parametrize("name", list(PAPER_LUT))
    def test_dsp_pinned_at_100(self, name):
        design = reference_designs()[name]
        assert design_utilization(design)["dsp"] == 1.0

    def test_ff_bram_within_tolerance(self):
        paper_ff = {"D1-1": 9_403, "D1-2": 14_523, "D1-3": 17_083}
        for name, ff in paper_ff.items():
            design = reference_designs()[name]
            assert design_resources(design).ff == pytest.approx(ff, rel=0.1)

    def test_sp2_columns_cost_no_dsp(self):
        base = reference_designs()["D1-1"]
        grown = GemmDesign(base.device, 1, 16, 16, 32)
        assert design_resources(grown).dsp == design_resources(base).dsp

    def test_8bit_weights_double_dsp_cost(self):
        assert dsp_per_mac(8) == pytest.approx(2 * dsp_per_mac(4))

    def test_max_block_out_fixed_reproduces_16(self):
        assert max_block_out_fixed(get_device("XC7Z020"), 1, 16) == 16
        assert max_block_out_fixed(get_device("XC7Z045"), 4, 16) == 16

    def test_max_block_out_halves_at_8bit(self):
        assert max_block_out_fixed(get_device("XC7Z020"), 1, 16,
                                   weight_bits=8) == 8

    def test_check_fits_raises_on_oversized(self):
        device = get_device("XC7Z020")
        with pytest.raises(ResourceError):
            check_fits(GemmDesign(device, 1, 16, 16, 200))

    def test_invalid_design_dimensions(self):
        device = get_device("XC7Z020")
        with pytest.raises(ConfigurationError):
            GemmDesign(device, 0, 16, 16, 0)
        with pytest.raises(ConfigurationError):
            GemmDesign(device, 1, 16, 0, 0)

    def test_ratio_string(self):
        designs = reference_designs()
        assert designs["D1-3"].ratio_string == "1:1.5"
        assert designs["D2-3"].ratio_string == "1:2"

    def test_sp2_fraction_feeds_algorithm2(self):
        assert reference_designs()["D2-3"].sp2_fraction == pytest.approx(2 / 3)


class TestBatchDependentSp2Curves:
    """The per-MAC SP2 cost curves are batch-dependent (more accumulator
    lanes, wider output muxing); these pin the calibrated points and the
    shapes of the LUT/FF/BRAM curves."""

    def test_lut_calibration_points(self):
        assert lut_per_sp2_mac(1) == pytest.approx(42.0)     # Table VIII Bat=1
        assert lut_per_sp2_mac(4) == pytest.approx(50.4)     # Table VIII Bat=4

    def test_ff_calibration_points(self):
        assert ff_per_sp2_mac(1) == pytest.approx(20.0)
        assert ff_per_sp2_mac(4) == pytest.approx(20.0 + 3 * 6.4)

    def test_lut_ff_strictly_increasing_in_batch(self):
        for batch in range(1, 8):
            assert lut_per_sp2_mac(batch + 1) > lut_per_sp2_mac(batch)
            assert ff_per_sp2_mac(batch + 1) > ff_per_sp2_mac(batch)

    def test_bram_decreasing_with_floor(self):
        values = [bram_per_sp2_mac(batch) for batch in range(1, 32)]
        assert all(b >= a for a, b in zip(values[1:], values))   # non-incr
        assert values[0] == pytest.approx(0.044)
        assert bram_per_sp2_mac(100) == pytest.approx(0.01)      # floor

    def test_design_resources_track_the_curves(self):
        """Adding one batch lane to an SP2-heavy design must add exactly
        the per-MAC curve delta times the MAC count."""
        device = get_device("XC7Z045")
        one = GemmDesign(device, 1, 16, 16, 16)
        two = GemmDesign(device, 2, 16, 16, 16)
        # sp2 macs: batch * block_in * block_out_sp2
        lut_delta = (design_resources(two).lut - design_resources(one).lut)
        expected_sp2 = (two.sp2_macs * lut_per_sp2_mac(2)
                        - one.sp2_macs * lut_per_sp2_mac(1))
        expected_fixed = (two.fixed_macs - one.fixed_macs) * 38.6328125
        assert lut_delta == pytest.approx(expected_sp2 + expected_fixed)


class TestMaxBlockOutFixedBoundary:
    """max_block_out_fixed at the exact DSP-budget boundary."""

    def test_exact_budget_boundary(self):
        # 220 DSPs / (220/256 per MAC) = exactly 256 MACs; at
        # batch*block_in = 16 that is exactly 16 columns.
        device = get_device("XC7Z020")
        assert max_block_out_fixed(device, 1, 16) == 16
        # One DSP less and the 16th column no longer fits.
        shy = Device("TESTSHY", lut=device.lut, ff=device.ff,
                     bram36=device.bram36, dsp=device.dsp - 1)
        assert max_block_out_fixed(shy, 1, 16) == 15

    def test_floor_is_one_column(self):
        """Even when not a single column fits the budget, the function
        reports 1 (the caller's check_fits then rejects the design)."""
        tiny = Device("TESTTINY", lut=1000, ff=1000, bram36=10, dsp=4)
        assert max_block_out_fixed(tiny, 4, 64) == 1

    def test_boundary_scales_with_bits(self):
        device = get_device("XC7Z045")
        full = max_block_out_fixed(device, 4, 16, weight_bits=4)
        assert max_block_out_fixed(device, 4, 16, weight_bits=8) == full // 2
        assert max_block_out_fixed(device, 4, 16, weight_bits=16) == full // 4

    def test_budget_shared_across_batch_lanes(self):
        # XC7Z020's budget is exactly 256 MACs, so the column bound
        # divides exactly: 16 columns at Bat=1, 4 at Bat=4.
        device = get_device("XC7Z020")
        assert max_block_out_fixed(device, 1, 16) == 16
        assert max_block_out_fixed(device, 4, 16) == 4
        # On a non-divisible budget the floor is per-configuration
        # (1047 MACs -> 65 columns at Bat=1, not 4 x 16).
        z045 = get_device("XC7Z045")
        assert max_block_out_fixed(z045, 1, 16) == 65
        assert max_block_out_fixed(z045, 4, 16) == 16


class TestUtilizationOnEveryDevice:
    """design_utilization must be sane for the characterized design of
    every cataloged part (not just the two the paper builds)."""

    @pytest.mark.parametrize("name", sorted(list_devices()))
    def test_characterized_design_utilization(self, name):
        from repro.fpga.characterize import characterize_device

        result = characterize_device(name, batch=1)
        util = design_utilization(result.design)
        assert set(util) == {"lut", "ff", "bram36", "dsp"}
        for resource, value in util.items():
            assert 0.0 < value <= 1.0 + 1e-9, (name, resource, value)
        assert util["lut"] <= 0.80 + 1e-9
        check_fits(result.design)        # must not raise

    @pytest.mark.parametrize("name", sorted(list_devices()))
    def test_shell_accounting_monotone(self, name):
        from repro.fpga.characterize import characterize_device

        design = characterize_device(name, batch=1).design
        with_shell = design_utilization(design, include_shell=True)
        without = design_utilization(design, include_shell=False)
        assert with_shell["lut"] > without["lut"]
        assert with_shell["ff"] > without["ff"]
        assert with_shell["dsp"] == without["dsp"]
