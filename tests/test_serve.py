"""The serving engine: artifact round trips, scheduler coalescing, CLI."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ExportError
from repro.quant.encoding import (
    encode_fixed,
    encode_p2,
    pack_fixed,
    pack_p2,
    unpack_fixed,
    unpack_p2,
)
from repro.quant.partition import (
    partition_from_arrays,
    partition_rows,
    partition_to_arrays,
)
from repro.serve import (
    BatchScheduler,
    ExecutionPlan,
    InferenceEngine,
    ServeArtifact,
    export_model,
    post_training_quantize,
)
from repro.serve.cli import MODEL_ZOO, build_model
from repro.serve.cli import main as serve_main
from repro.serve.export import eager_forward


def quantized_plan(name, tmp_path, seed=0, n_check=4):
    """PTQ a zoo model, export, reload; returns (model, plan, check batch)."""
    model, sample = build_model(name, seed=seed)
    rng = np.random.default_rng(seed + 100)
    calibration = [sample(rng, 8) for _ in range(2)]
    results = post_training_quantize(model, calibration)
    batch = sample(rng, n_check)
    path = tmp_path / f"{name}.npz"
    export_model(model, batch, layer_results=results, name=name, path=path)
    return model, ExecutionPlan.load(path), batch


# ----------------------------------------------------------------------
# Encoding / partition export hooks
# ----------------------------------------------------------------------
class TestPackHooks:
    def test_fixed_pack_round_trip(self):
        levels = np.arange(-7, 8, dtype=np.float64) / 7.0
        codes = encode_fixed(levels, 4)
        words = pack_fixed(codes, 4)
        assert words.dtype == np.uint8
        assert np.array_equal(unpack_fixed(words, 4), codes)

    def test_fixed_pack_rejects_out_of_range(self):
        from repro.errors import QuantizationError

        with pytest.raises(QuantizationError):
            pack_fixed(np.array([8]), 4)

    def test_p2_pack_round_trip(self):
        values = np.array([0.0, 1.0, -0.5, 0.25, -0.125])
        sign, codes = encode_p2(values, 4)
        words = pack_p2(sign, codes, 4)
        sign2, codes2 = unpack_p2(words, 4)
        assert np.array_equal(sign, sign2)
        assert np.array_equal(codes, codes2)

    def test_partition_serialization_round_trip(self, rng):
        partition = partition_rows(rng.normal(size=(32, 16)), 2 / 3)
        restored = partition_from_arrays(partition_to_arrays(partition))
        assert np.array_equal(restored.sp2_mask, partition.sp2_mask)
        assert restored.threshold == partition.threshold
        assert np.array_equal(restored.variances, partition.variances)


# ----------------------------------------------------------------------
# Artifact round trips
# ----------------------------------------------------------------------
class TestArtifactRoundTrip:
    @pytest.mark.parametrize("name", ["resnet_tiny", "mobilenet_v2",
                                      "lstm_lm", "gru_speech",
                                      "lstm_sentiment"])
    def test_bit_identical_to_eager(self, name, tmp_path):
        model, plan, batch = quantized_plan(name, tmp_path)
        served = plan.forward(batch)
        reference = eager_forward(model, batch)
        assert np.array_equal(served, reference)

    def test_qat_trained_model_round_trips(self, qat_result, toy_task,
                                           tmp_path):
        x, _ = toy_task
        batch = x[:16]
        path = tmp_path / "mlp.npz"
        export_model(qat_result.model, batch,
                     layer_results=qat_result.layer_results, path=path)
        plan = ExecutionPlan.load(path)
        assert np.array_equal(plan.forward(batch),
                              eager_forward(qat_result.model, batch))

    def test_unquantized_model_exports_raw(self, trained_mlp, toy_task,
                                           tmp_path):
        x, _ = toy_task
        path = tmp_path / "fp.npz"
        export_model(trained_mlp, x[:8], path=path)
        plan = ExecutionPlan.load(path)
        assert np.array_equal(plan.forward(x[:8]),
                              eager_forward(trained_mlp, x[:8]))

    def test_pooling_ops_round_trip(self, tmp_path):
        from repro import nn

        gen = np.random.default_rng(4)
        model = nn.Sequential(
            nn.Conv2d(3, 8, 3, padding=1, rng=gen), nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(8, 8, 3, padding=1, rng=gen), nn.ReLU(),
            nn.AvgPool2d(2), nn.Flatten(),
            nn.Linear(8 * 4 * 4, 5, rng=gen))
        rng = np.random.default_rng(5)
        calibration = [rng.normal(size=(4, 3, 16, 16)).astype(np.float32)]
        results = post_training_quantize(model, calibration)
        batch = rng.normal(size=(3, 3, 16, 16)).astype(np.float32)
        path = tmp_path / "pool.npz"
        export_model(model, batch, layer_results=results, path=path)
        plan = ExecutionPlan.load(path)
        assert np.array_equal(plan.forward(batch),
                              eager_forward(model, batch))

    def test_artifact_stores_packed_words(self, tmp_path):
        _, plan, _ = quantized_plan("resnet_tiny", tmp_path)
        artifact = plan.artifact
        word_arrays = [key for key in artifact.arrays
                       if key.endswith(("fixed_words", "sp2_words"))]
        assert word_arrays, "quantized layers must store packed words"
        assert all(artifact.arrays[key].dtype == np.uint8
                   for key in word_arrays)

    def test_load_rejects_non_artifact(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(ExportError):
            ServeArtifact.load(path)

    def test_plan_rejects_wrong_shape(self, tmp_path):
        from repro.errors import ShapeError

        _, plan, _ = quantized_plan("resnet_tiny", tmp_path)
        with pytest.raises(ShapeError):
            plan.forward(np.zeros((2, 3, 8, 8), dtype=np.float32))


# ----------------------------------------------------------------------
# FPGA cost model integration
# ----------------------------------------------------------------------
class TestPlanSimulation:
    def test_workloads_cover_quantized_layers(self, tmp_path):
        _, plan, _ = quantized_plan("resnet_tiny", tmp_path)
        workloads = plan.workloads()
        # 7 convs (stem + 3 blocks x 2) + 2 downsamples + fc
        assert len(workloads) == 10
        assert all(w.macs > 0 for w in workloads)

    def test_batching_amortizes_fpga_latency(self, tmp_path):
        _, plan, _ = quantized_plan("resnet_tiny", tmp_path)
        single = plan.simulate(batch=1).latency_ms
        batched = plan.simulate(batch=16).latency_ms
        assert single > 0
        # Far better than linear scaling: lanes fill instead of idling.
        assert batched < 8 * single

    def test_rnn_workloads_are_sequential(self, tmp_path):
        _, plan, _ = quantized_plan("lstm_lm", tmp_path)
        sequential = [w for w in plan.workloads() if w.sequential_columns]
        assert len(sequential) == 2  # one W_hh GEMM per LSTM layer

    def test_merged_time_linear_counts_per_request_columns(self, tmp_path):
        # The decoder after merge_time serves T=12 columns per request, not 1.
        _, plan, _ = quantized_plan("lstm_lm", tmp_path)
        decoder = [w for w in plan.workloads() if "decoder" in w.name]
        assert len(decoder) == 1
        assert decoder[0].columns == 12

    def test_partition_recoverable_from_artifact(self, tmp_path):
        from repro.serve.artifact import partition_of_record

        _, plan, _ = quantized_plan("resnet_tiny", tmp_path)
        records = [op["weight"] for op in plan.artifact.manifest["ops"]
                   if isinstance(op.get("weight"), dict)
                   and op["weight"]["mode"] == "msq"]
        partition = partition_of_record(plan.artifact, records[0])
        assert partition.sp2_mask.size == partition.variances.size
        assert 0.0 < partition.sp2_fraction < 1.0


# ----------------------------------------------------------------------
# Batch forming + execution (DynamicBatcher via the legacy facade's
# internals; the async ModelServer surface is covered in
# tests/test_serve_server.py)
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 0.001
        return self.now


class TestBatchServing:
    def make(self, tmp_path, max_batch=4):
        from repro.serve import ModelServer

        _, plan, _ = quantized_plan("resnet_tiny", tmp_path)
        engine = InferenceEngine(plan)
        server = ModelServer(workers=0, clock=FakeClock())
        server.add_engine("model", engine, batch=max_batch)
        return engine, server

    def test_coalesces_fifo_into_micro_batches(self, tmp_path):
        engine, server = self.make(tmp_path, max_batch=4)
        rng = np.random.default_rng(0)
        futures = [server.submit(
            "model", rng.normal(size=(3, 16, 16)).astype(np.float32))
            for _ in range(10)]
        assert server.drain() == 10
        stats = server.stats()["model"]
        assert stats.requests == 10
        assert stats.batches == 3
        assert [f.request.batch_size for f in futures] == [4] * 8 + [2] * 2
        assert [f.request.batch_id for f in futures] == \
            [0] * 4 + [1] * 4 + [2] * 2
        assert stats.queue_depth == 0

    def test_batched_results_match_single_request_inference(self, tmp_path):
        engine, server = self.make(tmp_path, max_batch=8)
        rng = np.random.default_rng(1)
        payloads = [rng.normal(size=(3, 16, 16)).astype(np.float32)
                    for _ in range(6)]
        futures = server.submit_many("model", payloads)
        server.drain()
        for future, payload in zip(futures, payloads):
            expected = engine.plan.forward(payload[None])[0]
            np.testing.assert_allclose(future.result(timeout=0), expected,
                                       rtol=1e-5, atol=1e-5)

    def test_submit_validates_shape_and_coerces_dtype(self, tmp_path):
        from repro.serve import ModelServer

        _, plan, _ = quantized_plan("lstm_lm", tmp_path)
        server = ModelServer(workers=0, clock=FakeClock())
        server.add_engine("lm", InferenceEngine(plan), batch=8)
        rng = np.random.default_rng(2)
        for _ in range(3):
            server.submit("lm",
                          rng.integers(0, 40, size=(12,), dtype=np.int64))
        bad = server.submit("lm",
                            rng.integers(0, 40, size=(9,), dtype=np.int64))
        assert isinstance(bad.exception(), ConfigurationError)
        coerced = server.submit(
            "lm", rng.integers(0, 40, size=(12,)).astype(np.int32))
        server.drain()
        assert coerced.request.payload.dtype == plan.input_dtype
        stats = server.stats()["lm"]
        assert stats.batches == 1 and stats.requests == 4

    def test_latency_and_fpga_accounting(self, tmp_path):
        engine, server = self.make(tmp_path, max_batch=4)
        rng = np.random.default_rng(3)
        futures = [server.submit(
            "model", rng.normal(size=(3, 16, 16)).astype(np.float32))
            for _ in range(4)]
        server.drain()
        stats = server.stats()["model"].to_serve_stats()
        assert all(f.latency_ms > 0 for f in futures)
        assert stats.latency_ms_mean > 0
        assert stats.fpga_ms_total == pytest.approx(
            engine.fpga_latency_ms(4))
        assert "simulated FPGA" in stats.format()

    def test_rejects_batched_payload(self, tmp_path):
        _, server = self.make(tmp_path)
        future = server.submit(
            "model", np.zeros((2, 3, 16, 16), dtype=np.float32))
        with pytest.raises(ConfigurationError):
            future.result(timeout=0)


class TestLegacySchedulerFacade:
    """The deprecated submit/step/run surface still works (and warns)."""

    def test_warns_and_serves(self, tmp_path):
        _, plan, batch = quantized_plan("resnet_tiny", tmp_path)
        engine = InferenceEngine(plan)
        scheduler = BatchScheduler(engine, max_batch=2, clock=FakeClock())
        with pytest.warns(DeprecationWarning, match="BatchScheduler"):
            requests = [scheduler.submit(payload) for payload in batch]
            stats = scheduler.run()
        assert stats.requests == len(batch)
        assert all(r.done for r in requests)
        assert scheduler.pending == 0
        with pytest.warns(DeprecationWarning, match="BatchScheduler.step"):
            assert scheduler.step() == []


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestServeCli:
    def test_export_info_run_smoke(self, tmp_path, capsys):
        path = str(tmp_path / "artifact.npz")
        assert serve_main(["export", "--model", "resnet_tiny",
                           "--out", path]) == 0
        assert serve_main(["info", path]) == 0
        assert serve_main(["run", path, "--requests", "6",
                           "--batch", "3"]) == 0
        out = capsys.readouterr().out
        assert "quantized:    10 layers (msq)" in out
        assert "req/s" in out and "simulated FPGA" in out

    def test_rnn_model_export_and_run(self, tmp_path, capsys):
        path = str(tmp_path / "lm.npz")
        assert serve_main(["export", "--model", "lstm_lm",
                           "--out", path]) == 0
        assert serve_main(["run", path, "--requests", "4",
                           "--batch", "2"]) == 0
        assert "micro-batches:       2" in capsys.readouterr().out

    def test_zoo_covers_paper_model_families(self):
        assert {"resnet_tiny", "mobilenet_v2", "lstm_lm",
                "gru_speech"} <= set(MODEL_ZOO)

    def test_build_model_unknown(self):
        with pytest.raises(ConfigurationError):
            build_model("alexnet")
