"""Shared fixtures.

Heavy artifacts (a trained tiny classifier, a finished QAT run) are session-
scoped so the many tests that inspect them pay the training cost once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


def make_mlp(seed: int = 7) -> nn.Module:
    gen = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Linear(12, 24, rng=gen), nn.ReLU(),
        nn.Linear(24, 24, rng=gen), nn.ReLU(),
        nn.Linear(24, 3, rng=gen),
    )


def make_toy_task(n: int = 256, seed: int = 1):
    gen = np.random.default_rng(seed)
    x = gen.normal(size=(n, 12)).astype(np.float32)
    y = ((x[:, 0] + x[:, 1] * x[:, 2] > 0).astype(np.int64)
         + (x[:, 3] > 1.0).astype(np.int64))
    return x, y


@pytest.fixture(scope="session")
def toy_task():
    return make_toy_task()


@pytest.fixture(scope="session")
def trained_mlp(toy_task):
    """An MLP trained to high accuracy on the toy task (FP baseline)."""
    x, y = toy_task
    model = make_mlp()
    optimizer = nn.SGD(model.parameters(), lr=0.1, momentum=0.9)
    for _ in range(150):
        loss = nn.cross_entropy(model(Tensor(x)), y)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    model.eval()
    return model


@pytest.fixture(scope="session")
def qat_result(toy_task, trained_mlp):
    """A finished MSQ quantization run starting from the FP baseline.

    Runs through the :mod:`repro.api` front door, so the many tests
    inspecting this fixture also exercise the ``QuantizedModel`` handle.
    """
    from repro.api import Pipeline, PipelineConfig

    x, y = toy_task
    model = make_mlp()
    model.load_state_dict(trained_mlp.state_dict())

    def make_batches(epoch):
        order = np.random.default_rng(50 + epoch).permutation(len(x))
        for start in range(0, len(order), 64):
            idx = order[start:start + 64]
            yield x[idx], y[idx]

    def loss_fn(m, batch):
        xb, yb = batch
        return nn.cross_entropy(m(Tensor(xb)), yb)

    config = PipelineConfig(scheme="msq", weight_bits=4, act_bits=4,
                            ratio="2:1", epochs=6, lr=0.05)
    return Pipeline(config, model=model).fit(make_batches, loss_fn)


def accuracy_of(model, x, y) -> float:
    was_training = model.training
    model.eval()
    acc = float((model(Tensor(x)).data.argmax(1) == y).mean())
    model.train(was_training)
    return acc


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "subprocess: spawns real worker subprocesses (cluster smoke "
        "tests; everything else is in-process and deterministic)")
