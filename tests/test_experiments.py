"""Experiment registry and the fast (hardware-side) harnesses.

Training-side harnesses (tables 2-6) are exercised end-to-end by the
benchmark suite; here we run the sub-second ones and validate the registry
contract for all.
"""

import numpy as np
import pytest

from repro.experiments import EXPERIMENTS, get_experiment, list_experiments


class TestRegistry:
    def test_all_paper_artifacts_covered(self):
        artifacts = {e.artifact for e in EXPERIMENTS.values()}
        for required in ("Table I", "Table II", "Table III", "Table IV",
                         "Table V", "Table VI", "Table VII", "Table VIII",
                         "Table IX", "Figure 1", "Figure 2", "Figure 4"):
            assert required in artifacts

    def test_lookup(self):
        assert get_experiment("table7").artifact == "Table VII"
        with pytest.raises(KeyError):
            get_experiment("table99")

    def test_listing(self):
        assert "table8" in list_experiments()

    def test_modules_expose_contract(self):
        for experiment in EXPERIMENTS.values():
            assert callable(experiment.module.run)
            assert callable(experiment.module.format_result)


class TestTable1:
    def test_run_and_format(self):
        experiment = get_experiment("table1")
        result = experiment.run()
        assert result["shift_add_exact"] is True
        text = experiment.format(result)
        assert "sp2" in text and "fixed" in text


class TestFigure2:
    def test_ratios_match_paper_tightly(self):
        result = get_experiment("figure2").run()
        assert result["max_abs_error"] < 0.1


class TestTable7:
    def test_designs_and_search(self):
        result = get_experiment("table7").run()
        for name, row in result["designs"].items():
            assert row["peak_gops"] == pytest.approx(row["paper_peak_gops"],
                                                     rel=0.005)
        for device, char in result["characterized"].items():
            assert char["ratio"] == char["paper_ratio"]


class TestFigure4:
    def test_worst_gap_small(self):
        result = get_experiment("figure4").run()
        assert result["worst_gap_percent"] <= 2.5


class TestTable8:
    def test_within_paper_envelope(self):
        result = get_experiment("table8").run()
        ratios = []
        for per_network in result["table"].values():
            for record in per_network.values():
                ratios.append(record["gops"] / record["paper_gops"])
        ratios = np.asarray(ratios)
        # Every cell within 40% of the paper; most much closer.
        assert ratios.min() > 0.6 and ratios.max() < 1.45
        assert np.median(np.abs(ratios - 1.0)) < 0.10

    def test_speedups_match_claims(self):
        result = get_experiment("table8").run()
        for device, speedups in result["speedups"].items():
            for network, speedup in speedups.items():
                assert 1.9 <= speedup <= 4.2, (device, network)


class TestTable9:
    def test_ours_rows_and_gpu_note(self):
        result = get_experiment("table9").run()
        assert len(result["ours"]) == 4
        for record in result["ours"]:
            assert record["gops"] == pytest.approx(record["paper_gops"],
                                                   rel=0.35)
        gpu = result["gpu_comparison"]
        assert gpu["efficiency_ratio"] > 2.0  # ">3x" in the paper

    def test_efficiency_metrics_comparable_to_prior(self):
        result = get_experiment("table9").run()
        ours_resnet_z045 = next(
            record for record in result["ours"]
            if record["device"] == "XC7Z045" and "resnet" in record["impl"])
        assert 0.2 < ours_resnet_z045["gops_per_dsp"] < 0.6
        assert 1.5 < ours_resnet_z045["gops_per_klut"] < 3.5
