"""Chaos suite for the distributed serving tier.

Every scenario runs a real cluster — router, placement, admission
control, a ``ModelServer`` per worker behind the verbatim PR 4 wire
protocol — entirely in process, on a :class:`FakeTransport` pair per
worker with one injected manual clock. Faults are *scheduled*
(:class:`FaultPlan` keys them by direction + frame index), so worker
crashes mid-batch, dropped/delayed/corrupted frames, refused admission
and overload shed are exact, repeatable events, not race outcomes.
There is no sleeping anywhere in this file (a meta-test enforces it)
and no real socket outside the explicitly-marked subprocess smoke test.
"""

import io
import json
import pathlib
import re

import numpy as np
import pytest

from repro.api import Pipeline, PipelineConfig
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    ServingError,
    WorkerError,
)
from repro.serve import (
    ClusterRouter,
    FaultPlan,
    LocalWorker,
    PlacementPolicy,
    WorkerView,
    get_placement,
    list_placements,
    register_placement,
)
from repro.serve.cli import serve_protocol
from tests.conftest import make_mlp


class ManualClock:
    """A clock tests advance explicitly; reading it never moves it."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> "ManualClock":
        self.now += seconds
        return self


def build_deployment(seed=7, batch=4):
    rng = np.random.default_rng(seed + 1000)
    pipeline = Pipeline(PipelineConfig(batch=batch), model=make_mlp(seed))
    pipeline.calibrate([rng.normal(size=(8, 12)).astype(np.float32)])
    return pipeline.deploy(), pipeline.result


@pytest.fixture(scope="module")
def deployed():
    return build_deployment()


def payloads(count, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=(12,)).astype(np.float32)
            for _ in range(count)]


def make_cluster(deployment, *, workers=2, clock=None, placement="least_loaded",
                 plans=None, max_batch=4, cache_mb=None, **router_kwargs):
    clock = clock or ManualClock()
    plans = plans or {}
    fleet = [LocalWorker(f"w{index}", {"mlp": deployment}, clock=clock,
                         max_batch=max_batch, plan=plans.get(index),
                         cache_mb=cache_mb)
             for index in range(workers)]
    return ClusterRouter(fleet, placement, clock=clock,
                         **router_kwargs), fleet, clock


# ----------------------------------------------------------------------
# Placement policies
# ----------------------------------------------------------------------
def view(name, index, in_flight=0, capacity=8, **kwargs):
    return WorkerView(name=name, index=index, models=frozenset({"m"}),
                      in_flight=in_flight, capacity=capacity, **kwargs)


class TestPlacement:
    def test_least_loaded_orders_by_in_flight_then_index(self):
        policy = get_placement("least_loaded")
        workers = [view("a", 0, in_flight=3), view("b", 1, in_flight=1),
                   view("c", 2, in_flight=1)]
        assert [w.name for w in policy.order("m", workers)] == \
            ["b", "c", "a"]

    def test_replicated_round_robins_per_model(self):
        policy = get_placement("replicated")
        workers = [view("a", 0), view("b", 1), view("c", 2)]
        firsts = [policy.order("m", workers)[0].name for _ in range(4)]
        assert firsts == ["a", "b", "c", "a"]
        # an independent cursor per model
        assert policy.order("other", workers)[0].name == "a"

    def test_consistent_hash_is_sticky_and_complete(self):
        policy = get_placement("consistent_hash")
        workers = [view("a", 0), view("b", 1), view("c", 2)]
        order1 = [w.name for w in policy.order("m", workers)]
        order2 = [w.name for w in policy.order("m", workers)]
        assert order1 == order2              # sticky home + spill order
        assert sorted(order1) == ["a", "b", "c"]   # every worker, once
        # different models spread across homes (not all on one worker)
        homes = {policy.order(f"model-{i}", workers)[0].name
                 for i in range(16)}
        assert len(homes) > 1

    def test_consistent_hash_survives_home_removal(self):
        policy = get_placement("consistent_hash")
        workers = [view("a", 0), view("b", 1), view("c", 2)]
        full = [w.name for w in policy.order("m", workers)]
        without_home = [w for w in workers if w.name != full[0]]
        reduced = [w.name for w in policy.order("m", without_home)]
        # remaining workers keep their relative ring order
        assert reduced == [name for name in full if name != full[0]]

    def test_register_placement_and_fresh_instances(self):
        @register_placement("test_sticky_lowest")
        class StickyLowest(PlacementPolicy):
            """Always the lowest-index worker (test-only)."""

            def order(self, model, workers):
                return sorted(workers, key=lambda w: w.index)

        try:
            assert "test_sticky_lowest" in list_placements()
            assert list_placements()["test_sticky_lowest"].startswith(
                "Always the lowest-index")
            one, two = (get_placement("test_sticky_lowest"),
                        get_placement("test_sticky_lowest"))
            assert one is not two            # per-router instances
            assert one.order("m", [view("b", 1), view("a", 0)])[0].name \
                == "a"
        finally:
            from repro.serve import placement as placement_module

            del placement_module._PLACEMENTS["test_sticky_lowest"]

    def test_registry_rejects_non_policy_and_unknown_name(self):
        with pytest.raises(ConfigurationError):
            register_placement("bogus")(dict)
        with pytest.raises(ConfigurationError, match="unknown placement"):
            get_placement("no-such-policy")


# ----------------------------------------------------------------------
# Healthy-cluster behavior
# ----------------------------------------------------------------------
class TestClusterServing:
    def test_serves_across_workers_correctly(self, deployed):
        deployment, quantized = deployed
        router, fleet, _ = make_cluster(deployment, workers=3)
        xs = payloads(10)
        futures = [router.submit("mlp", x) for x in xs]
        router.drain()
        for future, x in zip(futures, xs):
            assert np.allclose(future.result(timeout=0),
                               quantized.predict(x[None])[0])
        used = {future.request.worker for future in futures}
        assert used == {"w0", "w1", "w2"}    # least-loaded spreads
        stats = router.router_stats()
        assert stats.routed == stats.completed == 10
        assert stats.in_flight == 0
        router.close()

    def test_unknown_model_raises_with_hosted_list(self, deployed):
        router, _, _ = make_cluster(deployed[0])
        with pytest.raises(ServingError, match="unknown model"):
            router.submit("nope", payloads(1)[0])
        router.close()

    def test_worker_validation(self, deployed):
        clock = ManualClock()
        workers = [LocalWorker("same", {"mlp": deployed[0]}, clock=clock),
                   LocalWorker("same", {"mlp": deployed[0]}, clock=clock)]
        with pytest.raises(ConfigurationError, match="unique"):
            ClusterRouter(workers, clock=clock)
        with pytest.raises(ConfigurationError, match="at least one"):
            ClusterRouter([], clock=clock)
        with pytest.raises(ConfigurationError, match="hosts no models"):
            LocalWorker("empty", {}, clock=clock)

    def test_cluster_behind_verbatim_wire_protocol(self, deployed):
        # The router duck-types ModelServer, so the PR 4 protocol loop
        # fronts a whole cluster unchanged.
        deployment, quantized = deployed
        router, _, _ = make_cluster(deployment, workers=2)
        xs = payloads(4)
        lines = [json.dumps({"id": i, "model": "mlp",
                             "input": x.tolist()})
                 for i, x in enumerate(xs)]
        lines.append(json.dumps({"op": "stats", "id": "s"}))
        out = io.StringIO()
        served = serve_protocol(router, lines, out)
        router.close()
        assert served == 4
        responses = [json.loads(line)
                     for line in out.getvalue().splitlines()]
        stats_lines = [r for r in responses if r.get("op") == "stats"]
        assert stats_lines and stats_lines[0]["id"] == "s"
        answers = {r["id"]: r for r in responses if r.get("op") != "stats"}
        assert sorted(answers) == [0, 1, 2, 3]
        for i, x in enumerate(xs):
            assert np.allclose(np.asarray(answers[i]["output"]),
                               quantized.predict(x[None])[0])

    def test_cluster_stats_merge_across_workers(self, deployed):
        deployment, _ = deployed
        clock = ManualClock()
        fleet = [LocalWorker("w0", {"mlp": deployment}, clock=clock,
                             max_batch=2),
                 LocalWorker("w1", {"mlp": deployment}, clock=clock,
                             max_batch=8)]
        router = ClusterRouter(fleet, "replicated", clock=clock)
        futures = [router.submit("mlp", x) for x in payloads(10)]
        router.drain()
        assert all(f.exception(timeout=0) is None for f in futures)
        per_worker = router.worker_stats()
        assert set(per_worker) == {"w0", "w1"}
        # worker stats are re-keyed to the public alias, not name@v1
        assert set(per_worker["w0"]) == {"mlp"}
        merged = router.stats()["mlp"]
        assert merged.requests == 10
        assert merged.requests == sum(
            stats["mlp"].requests for stats in per_worker.values())
        assert merged.batches == sum(
            stats["mlp"].batches for stats in per_worker.values())
        assert merged.max_batch == 8        # merge="max", not sum
        assert len(merged.latencies_ms) == 10   # windows concatenate
        total = router.total_stats()
        assert total is not None and total.requests == 10
        router.close()

    def test_deployment_cluster_helper(self, deployed):
        deployment, quantized = deployed
        clock = ManualClock()
        router = deployment.cluster(name="mlp", workers=2, clock=clock)
        x = payloads(1)[0]
        result = router.predict("mlp", x)
        assert np.allclose(result, quantized.predict(x[None])[0])
        router.close()

    def test_capacity_validation_and_close_idempotent(self, deployed):
        with pytest.raises(ConfigurationError, match="capacity"):
            make_cluster(deployed[0], capacity=0)
        router, _, _ = make_cluster(deployed[0])
        router.close()
        router.close()                       # second close is a no-op
        with pytest.raises(ServingError, match="closed"):
            router.submit("mlp", payloads(1)[0])


# ----------------------------------------------------------------------
# Chaos: every fault is a scheduled, deterministic event
# ----------------------------------------------------------------------
class TestChaos:
    def test_worker_crash_mid_batch_fails_typed_and_reroutes(self,
                                                             deployed):
        deployment, _ = deployed
        # Worker 0 executes its first batch, then dies emitting the
        # first response frame: requests were *served* but never
        # answered — the canonical crash-mid-batch.
        router, fleet, _ = make_cluster(
            deployment, workers=2, placement="consistent_hash",
            plans={0: FaultPlan().kill("to_router", 0)})
        xs = payloads(4)
        futures = [router.submit("mlp", x) for x in xs]
        router.drain()
        victims = [f for f in futures
                   if isinstance(f.exception(timeout=0), WorkerError)]
        survivors = [f for f in futures if f.exception(timeout=0) is None]
        # exactly the requests routed to w0 died, all with a typed,
        # retryable worker error
        assert victims and all(
            e.code == "worker-failed" and e.retryable
            for e in (f.exception(timeout=0) for f in victims))
        assert not fleet[0].alive
        stats = router.router_stats()
        assert stats.worker_failures == 1
        assert stats.workers_alive == 1
        # retrying routes around the corpse
        retry = [router.submit("mlp", x) for x in xs]
        router.drain()
        assert all(f.exception(timeout=0) is None for f in retry)
        assert {f.request.worker for f in retry} == {"w1"}
        assert len(survivors) + len(victims) == 4
        router.close()

    def test_all_workers_dead_fails_future_no_workers(self, deployed):
        router, fleet, _ = make_cluster(
            deployed[0], workers=1,
            plans={0: FaultPlan().kill("to_router", 0)})
        future = router.submit("mlp", payloads(1)[0])
        router.drain()
        assert isinstance(future.exception(timeout=0), WorkerError)
        follow_up = router.submit("mlp", payloads(1)[0])
        error = follow_up.exception(timeout=0)
        assert isinstance(error, WorkerError)
        assert error.code == "no-workers" and error.retryable
        router.close()

    def test_dropped_request_frame_times_out_typed(self, deployed):
        router, _, clock = make_cluster(
            deployed[0], workers=1, max_batch=2,
            plans={0: FaultPlan().drop("to_worker", 1)},
            request_timeout_ms=100.0)
        first, second = (router.submit("mlp", x) for x in payloads(2))
        router.pump()
        assert first.done() and first.exception(timeout=0) is None
        assert not second.done()             # its frame evaporated
        clock.advance(0.2)
        router.pump()
        error = second.exception(timeout=0)
        assert isinstance(error, WorkerError)
        assert error.code == "timeout" and error.retryable
        assert router.router_stats().timeouts == 1
        router.close()

    def test_dropped_frame_without_timeout_fails_lost_on_drain(self,
                                                               deployed):
        router, _, _ = make_cluster(
            deployed[0], workers=1, max_batch=2,
            plans={0: FaultPlan().drop("to_worker", 0)})
        future = router.submit("mlp", payloads(1)[0])
        router.drain()       # cannot hang: no progress -> typed failure
        error = future.exception(timeout=0)
        assert isinstance(error, WorkerError) and error.code == "lost"
        router.close()

    def test_delayed_frame_holds_fifo_until_clock_advances(self,
                                                           deployed):
        router, _, clock = make_cluster(
            deployed[0], workers=1, max_batch=1,
            plans={0: FaultPlan().delay("to_worker", 0, ms=50.0)})
        first, second = (router.submit("mlp", x) for x in payloads(2))
        router.pump()
        # frame 0 is in (virtual) flight and frame 1 queues behind it:
        # FIFO head-of-line, exactly like a TCP stream
        assert not first.done() and not second.done()
        clock.advance(0.049)
        router.pump()
        assert not first.done()
        clock.advance(0.002)
        router.pump()
        assert first.done() and second.done()
        assert first.exception(timeout=0) is None
        assert second.exception(timeout=0) is None
        router.close()

    def test_corrupted_frame_detected_never_misread(self, deployed):
        # Corruption flips the first payload byte -> the worker answers
        # a typed frame error (no id to route), the router counts it,
        # and the request itself times out retryably. Nothing is ever
        # silently mis-decoded.
        router, _, clock = make_cluster(
            deployed[0], workers=1,
            plans={0: FaultPlan().corrupt("to_worker", 0)},
            request_timeout_ms=50.0)
        future = router.submit("mlp", payloads(1)[0])
        router.pump()
        clock.advance(0.1)
        router.pump()
        assert router.router_stats().protocol_errors == 1
        error = future.exception(timeout=0)
        assert isinstance(error, WorkerError) and error.code == "timeout"
        router.close()

    def test_corrupted_response_frame_counted_router_side(self, deployed):
        router, _, clock = make_cluster(
            deployed[0], workers=1,
            plans={0: FaultPlan().corrupt("to_router", 0)},
            request_timeout_ms=50.0)
        future = router.submit("mlp", payloads(1)[0])
        router.pump()
        clock.advance(0.1)
        router.pump()
        assert router.router_stats().protocol_errors == 1
        assert future.exception(timeout=0).code == "timeout"
        router.close()

    def test_refused_admission_routes_to_other_worker(self, deployed):
        router, _, _ = make_cluster(
            deployed[0], workers=2, plans={0: FaultPlan().refuse()})
        futures = [router.submit("mlp", x) for x in payloads(4)]
        router.drain()
        assert all(f.exception(timeout=0) is None for f in futures)
        assert {f.request.worker for f in futures} == {"w1"}
        router.close()

    def test_shed_under_overload_is_retryable(self, deployed):
        router, _, _ = make_cluster(deployed[0], workers=1, capacity=3)
        futures = [router.submit("mlp", x) for x in payloads(5)]
        shed = [f for f in futures if f.done()
                and isinstance(f.exception(timeout=0), AdmissionError)]
        assert len(shed) == 2               # 3 admitted, 2 shed
        assert all(f.exception(timeout=0).retryable
                   and f.exception(timeout=0).code == "shed"
                   for f in shed)
        assert router.router_stats().shed == 2
        router.drain()
        # capacity freed: the retry is admitted and served
        retry = router.submit("mlp", payloads(1)[0])
        router.drain()
        assert retry.exception(timeout=0) is None
        router.close()

    def test_fault_order_is_reproducible(self, deployed):
        # Same plan, same clock, same submissions -> byte-identical
        # outcome classification, twice.
        def run():
            router, _, clock = make_cluster(
                deployed[0], workers=2, max_batch=2,
                placement="replicated",
                plans={0: FaultPlan().drop("to_worker", 0)
                                     .kill("to_router", 1)},
                request_timeout_ms=100.0)
            futures = [router.submit("mlp", x) for x in payloads(6)]
            router.pump()
            clock.advance(0.2)
            router.pump()
            router.drain()
            outcome = [getattr(f.exception(timeout=0), "code", "ok")
                       for f in futures]
            router.close()
            return outcome

        assert run() == run()


# ----------------------------------------------------------------------
# Response cache at the cluster tier: affinity routing, crash, rollover
# ----------------------------------------------------------------------
class TestClusterCache:
    def test_payload_affinity_keeps_repeats_on_the_warm_worker(self,
                                                               deployed):
        deployment, _ = deployed
        router, _, _ = make_cluster(deployment, workers=3,
                                    placement="consistent_hash",
                                    cache_mb=4.0)
        x = payloads(1, seed=9)[0]
        first = router.submit("mlp", x)
        router.drain()
        warm = router.submit("mlp", x)
        router.drain()
        # the repeat landed where the cache is warm and hit it
        assert warm.request.worker == first.request.worker
        assert warm.request.cached and not first.request.cached
        assert np.array_equal(warm.result(timeout=0),
                              first.result(timeout=0))
        # payload-keyed placement spreads distinct payloads across the
        # ring instead of parking every "mlp" request on one home
        spread = [router.submit("mlp", p) for p in payloads(12, seed=1)]
        router.drain()
        assert len({f.request.worker for f in spread}) > 1
        router.close()

    def test_no_cache_fleet_keeps_model_keyed_routing(self, deployed):
        # Without a cache anywhere there is nothing to keep warm, so
        # consistent_hash must stay byte-identical to its legacy
        # model-keyed behavior: one sticky home per model.
        router, _, _ = make_cluster(deployed[0], workers=3,
                                    placement="consistent_hash")
        futures = [router.submit("mlp", p) for p in payloads(6)]
        router.drain()
        assert len({f.request.worker for f in futures}) == 1
        router.close()

    def test_crash_mid_batch_fails_coalesced_requests_exactly_once(
            self, deployed):
        deployment, _ = deployed
        # Three identical submits coalesce onto one batcher slot inside
        # the worker; the worker computes the batch, then dies emitting
        # the first response frame. Every future — leader and followers
        # alike — must fail exactly once with the typed worker error.
        router, fleet, _ = make_cluster(
            deployment, workers=1, placement="consistent_hash",
            cache_mb=4.0, plans={0: FaultPlan().kill("to_router", 0)})
        x = payloads(1)[0]
        futures = [router.submit("mlp", x) for _ in range(3)]
        fail_counts = {id(f): 0 for f in futures}

        def counting_fail(future, original):
            def wrapped(error):
                fail_counts[id(future)] += 1
                original(error)
            return wrapped

        for future in futures:
            future._fail = counting_fail(future, future._fail)
        router.drain()
        for future in futures:
            error = future.exception(timeout=0)
            assert isinstance(error, WorkerError)
            assert error.code == "worker-failed" and error.retryable
            assert fail_counts[id(future)] == 1
        assert not fleet[0].alive
        # a rolling restart revives the worker with a fresh (empty)
        # cache; retries recompute and coalesce normally
        router.rolling_restart()
        retry = [router.submit("mlp", x) for _ in range(2)]
        router.drain()
        assert all(f.exception(timeout=0) is None for f in retry)
        assert retry[1].request.coalesced
        assert np.array_equal(retry[0].result(timeout=0),
                              retry[1].result(timeout=0))
        router.close()

    def test_rolling_restart_never_serves_stale_cache(self, deployed):
        deployment, _ = deployed
        other, other_quantized = build_deployment(seed=23)
        router, _, _ = make_cluster(deployment, workers=2,
                                    placement="consistent_hash",
                                    cache_mb=4.0)
        x = payloads(1, seed=5)[0]
        before = router.predict("mlp", x)
        warm = router.submit("mlp", x)
        router.drain()
        assert warm.request.cached           # the old artifact was cached
        router.rolling_restart(models={"mlp": other})
        after = router.predict("mlp", x)     # zero stale hits across the roll
        assert np.allclose(after, other_quantized.predict(x[None])[0])
        assert not np.allclose(before, after)
        router.close()


# ----------------------------------------------------------------------
# Rolling restart: lossless, alias-backed
# ----------------------------------------------------------------------
class TestRollingRestart:
    def test_restart_is_lossless_with_inflight_requests(self, deployed):
        deployment, quantized = deployed
        router, fleet, _ = make_cluster(deployment, workers=2,
                                        placement="replicated")
        xs = payloads(8)
        futures = [router.submit("mlp", x) for x in xs]
        router.rolling_restart()
        for future, x in zip(futures, xs):
            assert future.exception(timeout=0) is None
            assert np.allclose(future.result(timeout=0),
                               quantized.predict(x[None])[0])
        assert [worker.generation for worker in fleet] == [2, 2]
        # the rollover reused the alias machinery: public name now
        # points at generation 2
        assert fleet[0]._server.aliases() == {"mlp": "mlp@v2"}
        after = [router.submit("mlp", x) for x in xs[:4]]
        router.drain()
        assert all(f.exception(timeout=0) is None for f in after)
        router.close()

    def test_restart_rolls_fleet_onto_new_artifact(self, deployed):
        deployment, quantized = deployed
        other, other_quantized = build_deployment(seed=23)
        router, fleet, _ = make_cluster(deployment, workers=2)
        x = payloads(1, seed=5)[0]
        before = router.predict("mlp", x)
        assert np.allclose(before, quantized.predict(x[None])[0])
        router.rolling_restart(models={"mlp": other})
        after = router.predict("mlp", x)
        assert np.allclose(after, other_quantized.predict(x[None])[0])
        assert not np.allclose(before, after)
        assert fleet[0]._server.aliases() == {"mlp": "mlp@v2"}
        router.close()

    def test_restart_revives_a_crashed_worker(self, deployed):
        router, fleet, _ = make_cluster(
            deployed[0], workers=2,
            plans={0: FaultPlan().kill("to_router", 0)})
        futures = [router.submit("mlp", x) for x in payloads(4)]
        router.drain()
        assert not fleet[0].alive
        # the fault plan applies to the first incarnation only: the
        # restarted worker is healthy and takes traffic again
        router.rolling_restart()
        assert fleet[0].alive and fleet[0].generation == 2
        retry = [router.submit("mlp", x) for x in payloads(6)]
        router.drain()
        assert all(f.exception(timeout=0) is None for f in retry)
        assert {f.request.worker for f in retry} == {"w0", "w1"}
        del futures
        router.close()

    def test_update_models_rejects_unknown_name(self, deployed):
        router, fleet, _ = make_cluster(deployed[0], workers=1)
        with pytest.raises(ConfigurationError, match="does not host"):
            fleet[0].update_models({"other": deployed[0]})
        router.close()


# ----------------------------------------------------------------------
# Determinism guard
# ----------------------------------------------------------------------
class TestNoSleeps:
    def test_no_time_sleep_in_deterministic_suites(self):
        here = pathlib.Path(__file__).parent
        for name in ("test_serve_cluster.py", "test_serve_protocol.py",
                     "test_serve_server.py"):
            source = (here / name).read_text()
            assert not re.search(r"\btime\.sleep\b", source), \
                f"{name} must stay sleep-free (drive the injected clock)"


# ----------------------------------------------------------------------
# Real subprocesses: the 2-worker smoke test (CI cluster job)
# ----------------------------------------------------------------------
@pytest.mark.subprocess
class TestProcessCluster:
    def test_two_worker_subprocess_cluster_end_to_end(self, deployed,
                                                      tmp_path):
        deployment, quantized = deployed
        path = tmp_path / "mlp.npz"
        deployment.save(path)
        router = ClusterRouter.spawn({"mlp": str(path)}, workers=2,
                                     max_batch=4, max_wait_ms=1.0)
        try:
            xs = payloads(16)
            futures = [router.submit("mlp", x) for x in xs]
            router.drain(timeout=120.0)
            for future, x in zip(futures, xs):
                assert future.exception(timeout=0) is None
                # atol loosened: the artifact round-trips through save()
                # and a separate process's BLAS, so near-zero outputs
                # carry ~1e-8 jitter
                assert np.allclose(future.result(timeout=0),
                                   quantized.predict(x[None])[0],
                                   atol=1e-6)
            assert {f.request.worker for f in futures} == {"w0", "w1"}
            merged = router.stats(timeout=60.0)
            assert merged["mlp"].requests == 16
            router.rolling_restart(timeout=120.0)
            retry = [router.submit("mlp", x) for x in xs[:4]]
            router.drain(timeout=120.0)
            assert all(f.exception(timeout=0) is None for f in retry)
        finally:
            router.close()
