"""Synthetic dataset generators: shapes, determinism, learnable signal."""

import numpy as np
import pytest

from repro.data import (
    cifar10_like,
    cifar100_like,
    coco_like,
    imagenet_like,
    imdb_like,
    ptb_like,
    timit_like,
)


class TestVision:
    def test_shapes_and_dtypes(self):
        data = cifar10_like(n_train=64, n_test=16, image_size=12)
        assert data.x_train.shape == (64, 3, 12, 12)
        assert data.x_train.dtype == np.float32
        assert data.y_train.dtype == np.int64
        assert data.num_classes == 10

    def test_deterministic(self):
        a = cifar10_like(n_train=32, n_test=8)
        b = cifar10_like(n_train=32, n_test=8)
        assert np.array_equal(a.x_train, b.x_train)
        assert np.array_equal(a.y_train, b.y_train)

    def test_class_signal_present(self):
        """Same-class images correlate more than cross-class images."""
        data = cifar10_like(n_train=256, n_test=8)
        flattened = data.x_train.reshape(len(data.x_train), -1)
        same, cross = [], []
        for cls in range(3):
            members = flattened[data.y_train == cls][:8]
            others = flattened[data.y_train != cls][:8]
            for i in range(len(members) - 1):
                same.append(np.corrcoef(members[i], members[i + 1])[0, 1])
                cross.append(np.corrcoef(members[i], others[i])[0, 1])
        assert np.mean(same) > np.mean(cross) + 0.1

    def test_batches_cover_all_samples(self):
        data = cifar10_like(n_train=50, n_test=8)
        seen = sum(len(y) for _, y in data.batches(16, epoch=0))
        assert seen == 50

    def test_batches_differ_across_epochs(self):
        data = cifar10_like(n_train=64, n_test=8)
        first = next(iter(data.batches(16, epoch=0)))[1]
        second = next(iter(data.batches(16, epoch=1)))[1]
        assert not np.array_equal(first, second)

    def test_variants(self):
        assert cifar100_like(n_train=16, n_test=4).num_classes == 20
        assert imagenet_like(n_train=16, n_test=4,
                             image_size=20).x_train.shape[-1] == 20


class TestDetection:
    def test_target_format(self):
        data = coco_like(n_train=16, n_test=4)
        for target in data.targets_train:
            assert target.ndim == 2 and target.shape[1] == 5
            assert np.all(target[:, 0] < data.num_classes)
            # Boxes inside the unit square.
            assert np.all(target[:, 1:3] >= 0) and np.all(target[:, 1:3] <= 1)

    def test_object_count_bounds(self):
        data = coco_like(n_train=32, n_test=4, max_objects=2)
        counts = [len(t) for t in data.targets_train]
        assert min(counts) >= 1 and max(counts) <= 2

    def test_shapes_are_drawn_brighter_than_background(self):
        data = coco_like(n_train=8, n_test=2)
        image = data.images_train[0]
        target = data.targets_train[0][0]
        _, cx, cy, w, h = target
        size = image.shape[-1]
        x1, x2 = int((cx - w / 2) * size), int((cx + w / 2) * size)
        y1, y2 = int((cy - h / 2) * size), int((cy + h / 2) * size)
        inside = np.abs(image[:, y1:y2, x1:x2]).mean()
        overall = np.abs(image).mean()
        assert inside > overall

    def test_class_color_coding(self):
        """Class k objects are dominated by channel k."""
        data = coco_like(n_train=64, n_test=2)
        for image, targets in zip(data.images_train[:16],
                                  data.targets_train[:16]):
            for cls, cx, cy, w, h in targets:
                size = image.shape[-1]
                x = int(cx * size)
                y = int(cy * size)
                center = image[:, y, x]
                if cls == 0:  # squares are filled at the center
                    assert center.argmax() == 0


class TestLanguage:
    def test_lm_shapes(self):
        data = ptb_like(n_train=16, n_test=4, seq_len=8)
        assert data.inputs_train.shape == (16, 8)
        assert data.targets_train.shape == (16, 8)

    def test_targets_are_shifted_inputs(self):
        data = ptb_like(n_train=4, n_test=2, seq_len=6)
        assert np.array_equal(data.inputs_train[:, 1:],
                              data.targets_train[:, :-1])

    def test_markov_structure_learnable(self):
        """Bigram statistics beat unigram: the chain has real structure."""
        data = ptb_like(n_train=256, n_test=16, seq_len=12, vocab_size=12)
        tokens = data.inputs_train
        vocab = data.vocab_size
        bigram = np.ones((vocab, vocab))
        for row in tokens:
            for a, b in zip(row[:-1], row[1:]):
                bigram[a, b] += 1
        bigram /= bigram.sum(axis=1, keepdims=True)
        nll = []
        for row in data.inputs_test[:32]:
            for a, b in zip(row[:-1], row[1:]):
                nll.append(-np.log(bigram[a, b]))
        assert np.exp(np.mean(nll)) < vocab * 0.7

    def test_sentiment_labels_balanced(self):
        data = imdb_like(n_train=256, n_test=16)
        positives = data.labels_train.mean()
        assert 0.35 < positives < 0.65

    def test_sentiment_lexicon_signal(self):
        """Positive sequences contain more low-id (positive-lexicon) tokens."""
        data = imdb_like(n_train=256, n_test=16, vocab_size=48)
        third = 48 // 3
        pos_rate = (data.inputs_train[data.labels_train == 1] < third).mean()
        neg_rate = (data.inputs_train[data.labels_train == 0] < third).mean()
        assert pos_rate > neg_rate + 0.2


class TestSpeech:
    def test_shapes(self):
        data = timit_like(n_train=8, n_test=4, num_frames=10)
        assert data.frames_train.shape == (8, 10, 13)
        assert data.frame_labels_train.shape == (8, 10)
        assert len(data.phonemes_train) == 8

    def test_phoneme_sequences_collapsed(self):
        data = timit_like(n_train=16, n_test=4)
        for sequence in data.phonemes_train:
            assert np.all(np.diff(sequence) != 0)

    def test_frame_labels_match_sequence(self):
        data = timit_like(n_train=8, n_test=2)
        from repro.metrics import collapse_repeats

        for labels, sequence in zip(data.frame_labels_train,
                                    data.phonemes_train):
            assert np.array_equal(collapse_repeats(labels), sequence)

    def test_emissions_cluster_by_phoneme(self):
        data = timit_like(n_train=32, n_test=4, noise=0.3)
        frames = data.frames_train.reshape(-1, 13)
        labels = data.frame_labels_train.reshape(-1)
        centroid_0 = frames[labels == 0].mean(axis=0)
        centroid_1 = frames[labels == 1].mean(axis=0)
        spread_0 = frames[labels == 0].std(axis=0).mean()
        assert np.linalg.norm(centroid_0 - centroid_1) > spread_0
