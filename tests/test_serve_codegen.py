"""The ``compiled`` backend's codegen stack: renderer literals, the
build cache, fallback semantics, the CLI, and edge-shape parity.

The heavyweight bit-exactness contract (every model family, every batch
size) lives in ``tests/test_serve_backends.py``; this file covers the
pieces underneath it — exact C literals, the round-half-even magic
constant against the reference quantizer, content-hash cache behaviour,
the typed :class:`~repro.errors.BackendError` vocabulary, and the
``compiled -> fused`` degradation on machines with no C compiler
(including a real PATH-stripped subprocess).
"""

import os
import subprocess
import sys
import textwrap
from ctypes import c_void_p
from pathlib import Path

import numpy as np
import pytest

from repro import nn
from repro.errors import BackendError, CompileError, ConfigurationError
from repro.quant.ste import ActivationQuantizer
from repro.serve import ExecutionPlan
from repro.serve.backends import get_backend, resolve_backend
from repro.serve.codegen import (
    build_library,
    c_array,
    c_float,
    cache_dir,
    cached_libraries,
    clear_cache,
    compiler_probe,
    have_compiler,
    load_library,
    render_module,
)
from repro.serve.codegen.build import _reset_probe_cache
from repro.serve.codegen.renderer import MODULE_PREAMBLE, ActQuantC
from repro.serve.export import build_artifact, eager_forward
from repro.serve.ptq import post_training_quantize

needs_cc = pytest.mark.skipif(
    not have_compiler(),
    reason=f"no C compiler: {compiler_probe()[1]}")


@pytest.fixture
def fresh_cache(tmp_path, monkeypatch):
    """An isolated (initially empty) codegen cache directory."""
    directory = tmp_path / "codegen-cache"
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(directory))
    return directory


@pytest.fixture
def no_compiler(monkeypatch):
    """Make the compiler probe fail for the duration of one test."""
    monkeypatch.setenv("REPRO_CC", "/nonexistent/definitely-not-a-cc")
    _reset_probe_cache()
    yield
    _reset_probe_cache()


# ----------------------------------------------------------------------
# Literals
# ----------------------------------------------------------------------
class TestLiterals:
    def test_c_float_round_trips_exactly(self):
        rng = np.random.default_rng(0)
        values = np.concatenate([
            rng.normal(scale=10.0, size=200).astype(np.float32),
            np.array([1e-42, -1e-42, 2**-149, 1.0, -1.0, 6.0],
                     dtype=np.float32),
        ])
        for value in values:
            token = c_float(value)
            assert token.endswith("f")
            assert np.float32(float.fromhex(token[:-1])) == value

    def test_c_float_specials(self):
        assert c_float(np.float32("nan")) == "NAN"
        assert c_float(np.float32("inf")) == "INFINITY"
        assert c_float(np.float32("-inf")) == "-INFINITY"
        assert c_float(np.float32(0.0)) == "0.0f"
        assert c_float(np.float32(-0.0)) == "-0.0f"

    def test_c_array_emits_every_entry(self):
        values = np.linspace(-1, 1, 37, dtype=np.float32)
        text = c_array("grid", values)
        assert "static const float grid[37]" in text
        assert text.count(",") == 37  # one trailing comma per entry


# ----------------------------------------------------------------------
# Activation fake-quant rendering
# ----------------------------------------------------------------------
class TestActQuantC:
    @pytest.mark.parametrize("signed", [False, True])
    def test_level_grid_matches_reference_quantizer(self, signed):
        quantizer = ActivationQuantizer(4, signed=signed, alpha=0.83)
        quantizer.calibrating = False
        chain = ActQuantC({"alpha": quantizer.alpha, "signed": signed,
                           "bits": 4})
        rng = np.random.default_rng(3)
        x = (rng.normal(scale=1.5, size=8192)).astype(np.float32)
        expected = np.asarray(quantizer.quantize_array(x),
                              dtype=np.float32)
        # Every reference output is exactly one of the renderer's levels.
        assert np.isin(expected, chain.levels).all()
        # The grid itself is a fixed point of the quantizer.
        regrid = np.asarray(quantizer.quantize_array(chain.levels),
                            dtype=np.float32)
        assert np.array_equal(regrid, chain.levels)

    @needs_cc
    @pytest.mark.parametrize("signed", [False, True])
    def test_emitted_chain_is_bitwise_exact(self, signed, fresh_cache):
        quantizer = ActivationQuantizer(4, signed=signed, alpha=1.37)
        quantizer.calibrating = False
        chain = ActQuantC({"alpha": quantizer.alpha, "signed": signed,
                           "bits": 4})
        alpha = np.float32(quantizer.alpha)
        steps = np.float32(chain.steps)
        rng = np.random.default_rng(7)
        x = np.concatenate([
            rng.normal(scale=2.0, size=4096).astype(np.float32),
            # Exact representable tie points, clip edges, signed zeros,
            # denormals and non-finite values.
            ((np.arange(-chain.steps, chain.steps, dtype=np.float32)
              + np.float32(0.5)) / steps * alpha),
            np.array([0.0, -0.0, alpha, -alpha,
                      np.nextafter(alpha, np.float32(np.inf)),
                      np.nextafter(alpha, np.float32(0.0)),
                      1e-42, -1e-42, np.inf, -np.inf, np.nan],
                     dtype=np.float32),
        ]).astype(np.float32)
        n = x.size
        source = (MODULE_PREAMBLE + chain.emit("qfn") + "\n"
                  + "void quant_buf(const float *x, float *r) {\n"
                  + f"  for (int i = 0; i < {n}; ++i) r[i] = qfn(x[i]);\n"
                  + "}\n")
        fn = load_library(build_library(source, tag="test-quant")).quant_buf
        fn.restype = None
        fn.argtypes = [c_void_p, c_void_p]
        got = np.empty_like(x)
        fn(x.ctypes.data, got.ctypes.data)
        expected = np.asarray(quantizer.quantize_array(x),
                              dtype=np.float32)
        # The serving contract: value-exact under np.array_equal (the
        # check every backend is gated on, compile time and runtime).
        valued = ~np.isnan(expected)
        assert np.array_equal(got[valued], expected[valued])
        assert np.isnan(got[~valued]).all()
        # Strictly bitwise on every nonzero output — proves the hex
        # literals and the magic-constant rounding reproduce the numpy
        # ufunc chain exactly. (Zero outputs are excluded: np.clip's
        # signed-zero choice for inputs that round to 0 is a numpy SIMD
        # implementation detail, and -0.0 == 0.0 under the contract.)
        nonzero = valued & (expected != 0.0)
        assert np.array_equal(got[nonzero].view(np.int32),
                              expected[nonzero].view(np.int32))


# ----------------------------------------------------------------------
# Build cache
# ----------------------------------------------------------------------
@needs_cc
class TestBuildCache:
    SOURCE = "float repro_test_fn(float v) { return v + 1.0f; }\n"

    def test_identical_source_reuses_cache_entry(self, fresh_cache):
        first = build_library(self.SOURCE, tag="t")
        stamp = first.stat().st_mtime_ns
        second = build_library(self.SOURCE, tag="t")
        assert second == first
        assert second.stat().st_mtime_ns == stamp  # no rebuild
        assert first.parent == fresh_cache

    def test_different_source_gets_different_entry(self, fresh_cache):
        a = build_library(self.SOURCE, tag="t")
        b = build_library(self.SOURCE.replace("1.0f", "2.0f"), tag="t")
        assert a != b
        assert len(cached_libraries()) == 2

    def test_source_kept_next_to_library(self, fresh_cache):
        library = build_library(self.SOURCE, tag="t")
        assert library.with_suffix(".c").read_text() == self.SOURCE

    def test_clear_cache_counts_and_empties(self, fresh_cache):
        build_library(self.SOURCE, tag="t")
        build_library(self.SOURCE.replace("v +", "v -"), tag="t")
        assert cache_dir() == fresh_cache
        assert clear_cache() == 2
        assert cached_libraries() == []

    def test_rejected_source_raises_compile_error(self, fresh_cache):
        with pytest.raises(CompileError, match="compiler exited"):
            build_library("this is not C\n", tag="t")


# ----------------------------------------------------------------------
# Typed backend errors + fallback semantics
# ----------------------------------------------------------------------
class TestBackendErrors:
    def test_unknown_backend_is_typed_and_names_available(self):
        with pytest.raises(BackendError) as info:
            get_backend("turbo")
        error = info.value
        assert error.requested == "turbo"
        assert {"reference", "fused", "compiled"} <= set(error.available)
        for name in error.available:
            assert name in str(error)
        assert isinstance(error, ConfigurationError)

    def test_autotune_space_rejects_unknown_backend(self):
        from repro.autotune.space import SearchSpace

        with pytest.raises(BackendError, match="turbo"):
            SearchSpace(device="XC7Z045", backends=("fused", "turbo"))

    def test_compiled_resolves_to_fused_without_compiler(self,
                                                         no_compiler):
        with pytest.warns(RuntimeWarning, match="falling back to 'fused'"):
            backend = resolve_backend("compiled")
        assert backend.name == "fused"

    def test_compiled_plan_degrades_to_fused(self, no_compiler, tmp_path,
                                             trained_mlp, toy_task):
        x, _ = toy_task
        path = tmp_path / "mlp.npz"
        build_artifact(trained_mlp, x[:8], name="mlp").save(path)
        with pytest.warns(RuntimeWarning, match="unavailable"):
            plan = ExecutionPlan.load(path, backend="compiled")
        assert plan.backend == "fused"
        assert np.array_equal(plan.forward(x[:8]),
                              eager_forward(trained_mlp, x[:8]))

    @pytest.mark.subprocess
    def test_path_stripped_subprocess_falls_back(self, tmp_path):
        """The real no-compiler machine: an interpreter whose PATH holds
        no compiler at all must serve ``compiled`` requests on fused."""
        empty = tmp_path / "empty-path"
        empty.mkdir()
        code = textwrap.dedent("""\
            import warnings
            from repro.serve.codegen import compiler_probe, have_compiler
            assert not have_compiler(), compiler_probe()
            from repro.serve.backends import resolve_backend
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                backend = resolve_backend("compiled")
            assert backend.name == "fused", backend.name
            assert any(issubclass(w.category, RuntimeWarning)
                       for w in caught)
            print("fallback-ok")
        """)
        env = {key: value for key, value in os.environ.items()
               if key not in ("REPRO_CC",)}
        env["PATH"] = str(empty)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parents[1] / "src")
        proc = subprocess.run([sys.executable, "-c", code], env=env,
                              capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
        assert "fallback-ok" in proc.stdout


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestBackendsCLI:
    def test_lists_backends_with_availability(self, fresh_cache, capsys):
        from repro.serve.cli import main

        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in ("reference", "fused", "compiled"):
            assert name in out
        assert "codegen cache:" in out
        assert str(fresh_cache) in out

    def test_clear_cache_flag(self, fresh_cache, capsys):
        from repro.serve.cli import main

        if have_compiler():
            build_library("float repro_cli_fn(void){return 3.0f;}\n",
                          tag="cli")
        assert main(["backends", "--clear-cache"]) == 0
        assert "cleared" in capsys.readouterr().out
        assert cached_libraries() == []


# ----------------------------------------------------------------------
# Edge-shape parity across all backends
# ----------------------------------------------------------------------
EDGE_MODELS = ("conv_odd_channels", "linear_single_feature",
               "maxpool_tail")


def _edge_model(case: str):
    gen = np.random.default_rng(21)
    if case == "conv_odd_channels":
        # Odd channel counts and odd spatial sizes through conv + pool.
        model = nn.Sequential(
            nn.Conv2d(3, 5, 3, padding=1, rng=gen), nn.ReLU(),
            nn.Conv2d(5, 7, 3, rng=gen), nn.ReLU6(),
            nn.Flatten(), nn.Linear(7 * 7 * 7, 3, rng=gen))
        shape = (3, 9, 9)
    elif case == "linear_single_feature":
        # One-element request tensors end to end.
        model = nn.Sequential(
            nn.Linear(1, 3, rng=gen), nn.ReLU(),
            nn.Linear(3, 1, rng=gen))
        shape = (1,)
    else:
        model = nn.Sequential(
            nn.Conv2d(3, 4, 3, padding=1, rng=gen), nn.ReLU(),
            nn.MaxPool2d(2), nn.Flatten(),
            nn.Linear(4 * 4 * 4, 2, rng=gen))
        shape = (3, 8, 8)
    return model, shape


@pytest.fixture(scope="module")
def edge_artifacts(tmp_path_factory):
    root = tmp_path_factory.mktemp("edge")
    built = {}
    rng = np.random.default_rng(2)
    for case in EDGE_MODELS:
        model, shape = _edge_model(case)
        calibration = [rng.normal(size=(8, *shape)).astype(np.float32)]
        results = post_training_quantize(model, calibration)
        path = root / f"{case}.npz"
        build_artifact(model, calibration[0][:4], layer_results=results,
                       name=case).save(path)
        built[case] = (model, path, shape)
    return built


class TestEdgeShapeParity:
    @pytest.mark.parametrize("case", EDGE_MODELS)
    @pytest.mark.parametrize("backend",
                             ["reference", "fused", "compiled"])
    def test_backends_agree_on_edge_shapes(self, case, backend,
                                           edge_artifacts):
        if backend == "compiled" and not have_compiler():
            pytest.skip("no C compiler")
        model, path, shape = edge_artifacts[case]
        plan = ExecutionPlan.load(path, backend=backend)
        rng = np.random.default_rng(13)
        for n in (1, 3):  # batch 1 is the classic degenerate case
            batch = rng.normal(size=(n, *shape)).astype(np.float32)
            assert np.array_equal(plan.forward(batch),
                                  eager_forward(model, batch)), (case, n)
