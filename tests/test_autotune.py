"""The autotune subsystem: search space, cost model, strategies, cache,
tuner acceptance (Pareto frontier feasibility, end-to-end deploy
bit-exactness, determinism, Table VII rediscovery), API/CLI/server
integration, and the stack-wide latency-unit (ms) convention."""

from __future__ import annotations

import json
import subprocess
import sys

import numpy as np
import pytest

from repro.autotune import (
    Candidate,
    CostModel,
    EvalCache,
    SearchSpace,
    get_accuracy_proxy,
    list_strategies,
    pareto_frontier,
    register_strategy,
    scale_workloads,
    tune,
)
from repro.autotune.cache import (
    evaluation_key,
    model_fingerprint,
    workload_fingerprint,
)
from repro.autotune.strategies import _STRATEGIES
from repro.errors import ConfigurationError, ResourceError
from repro.fpga.characterize import resolve_design
from repro.fpga.gemm import GemmWorkload
from repro.fpga.resources import check_fits, reference_designs
from repro.fpga.workloads import WORKLOADS
from repro.serve.cli import build_model
from repro.serve.export import eager_forward


def tiny_workloads():
    return [
        GemmWorkload("conv1", rows=32, reduction=27, columns=64),
        GemmWorkload("conv2", rows=64, reduction=288, columns=64),
        GemmWorkload("fc", rows=10, reduction=64),
    ]


@pytest.fixture(scope="module")
def resnet_setup():
    model, sample = build_model("resnet_tiny", seed=0)
    x = sample(np.random.default_rng(1), 8)
    return model, x


# ----------------------------------------------------------------------
# Search space
# ----------------------------------------------------------------------
class TestSearchSpace:
    def test_candidates_deterministic(self):
        space = SearchSpace(device="XC7Z020")
        first = [c.key() for c in space.candidates()]
        second = [c.key() for c in space.candidates()]
        assert first == second and first

    def test_sp2_options_respect_lut_cap(self):
        space = SearchSpace(device="XC7Z020", lut_cap=0.80)
        options = space.sp2_options(1, 16, 4, 4)
        assert options == (0, 8, 16, 24)      # D1-1..D1-3 + the 1:0.5 point

    def test_fixed_columns_full_dsp(self):
        space = SearchSpace(device="XC7Z020")
        assert space.fixed_columns(1, 16, 4, 4) == 16
        space45 = SearchSpace(device="XC7Z045")
        assert space45.fixed_columns(4, 16, 4, 4) == 16

    def test_device_alias_normalized(self):
        assert SearchSpace(device="zu3eg").device == "XCZU3EG"

    def test_candidate_ratio_matches_pe_split(self):
        candidate = Candidate(device="XC7Z045", batch=4, block_in=16,
                              block_out_fixed=16, block_out_sp2=32)
        assert candidate.ratio.sp2_fraction == pytest.approx(2 / 3)
        assert candidate.design().ratio_string == "1:2"

    def test_neighbors_stay_in_space(self):
        space = SearchSpace(device="XC7Z020", weight_bits=(4, 8),
                            serve_batches=(1, 16))
        for candidate in space.candidates():
            for neighbor in space.neighbors(candidate):
                options = space.sp2_options(
                    neighbor.batch, neighbor.block_in,
                    neighbor.weight_bits, neighbor.act_bits)
                assert neighbor.block_out_sp2 in options

    def test_random_and_mutate_seeded(self):
        space = SearchSpace(device="XC7Z045", batches=(1, 4),
                            serve_batches=(1, 8, 16))
        a = space.random_candidate(np.random.default_rng(3))
        b = space.random_candidate(np.random.default_rng(3))
        assert a == b
        assert space.mutate(a, np.random.default_rng(4)) == \
            space.mutate(a, np.random.default_rng(4))

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            SearchSpace(device="XC7Z020", batches=())


# ----------------------------------------------------------------------
# Cost model + proxies
# ----------------------------------------------------------------------
class TestCostModel:
    def test_feasibility_honors_lut_cap(self):
        model = CostModel(lambda b: scale_workloads(tiny_workloads(), b),
                          lut_cap=0.80)
        fits = model.evaluate(Candidate("XC7Z020", 1, 16, 16, 24))
        over = model.evaluate(Candidate("XC7Z020", 1, 16, 16, 48))
        assert fits.fits and not over.fits
        assert over.utilization["lut"] > 0.80

    def test_latency_in_ms_and_per_request(self):
        model = CostModel(lambda b: scale_workloads(tiny_workloads(), b))
        one = model.evaluate(Candidate("XC7Z020", 1, 16, 16, 16,
                                       serve_batch=1))
        many = model.evaluate(Candidate("XC7Z020", 1, 16, 16, 16,
                                        serve_batch=16))
        assert one.latency_ms_per_request == pytest.approx(one.latency_ms)
        assert many.latency_ms_per_request == pytest.approx(
            many.latency_ms / 16)
        # Batching amortizes: per-request latency must not get worse.
        assert many.latency_ms_per_request <= one.latency_ms_per_request

    def test_evaluation_roundtrips_through_dict(self):
        from repro.autotune.cost import CandidateEvaluation

        model = CostModel(lambda b: tiny_workloads())
        evaluation = model.evaluate(Candidate("XC7Z020", 1, 16, 16, 8))
        clone = CandidateEvaluation.from_dict(
            json.loads(json.dumps(evaluation.to_dict())))
        assert clone.candidate == evaluation.candidate
        assert clone.latency_ms == evaluation.latency_ms
        assert clone.utilization == evaluation.utilization

    def test_scale_workloads_scales_columns_only(self):
        scaled = scale_workloads(tiny_workloads(), 4)
        for base, new in zip(tiny_workloads(), scaled):
            assert new.columns == base.columns * 4
            assert (new.rows, new.reduction) == (base.rows, base.reduction)


class TestAccuracyProxies:
    def test_mse_proxy_deterministic(self, resnet_setup):
        model, _ = resnet_setup
        proxy_a = get_accuracy_proxy("mse", model=model)
        proxy_b = get_accuracy_proxy("mse", model=model)
        candidate = Candidate("XC7Z020", 1, 16, 16, 16)
        assert proxy_a(candidate) == proxy_b(candidate) > 0

    def test_mse_proxy_does_not_mutate_model(self, resnet_setup):
        model, _ = resnet_setup
        from repro.quant.admm import collect_quantizable

        before = [np.array(p.data, copy=True)
                  for _, p in collect_quantizable(model)]
        get_accuracy_proxy("mse", model=model)(
            Candidate("XC7Z020", 1, 16, 16, 16))
        after = [p.data for _, p in collect_quantizable(model)]
        for b, a in zip(before, after):
            assert np.array_equal(b, a)

    def test_calibration_proxy_restores_weights(self, resnet_setup):
        model, x = resnet_setup
        from repro.quant.admm import collect_quantizable

        before = [np.array(p.data, copy=True)
                  for _, p in collect_quantizable(model)]
        reference = eager_forward(model, x)
        proxy = get_accuracy_proxy("calibration", model=model,
                                   calibration=[x])
        value = proxy(Candidate("XC7Z020", 1, 16, 16, 16))
        assert value > 0
        for b, (_, p) in zip(before, collect_quantizable(model)):
            assert np.array_equal(b, p.data)
        assert np.array_equal(eager_forward(model, x), reference)

    def test_gaussian_proxy_needs_no_model(self):
        proxy = get_accuracy_proxy("gaussian", seed=0)
        assert proxy(Candidate("XC7Z020", 1, 16, 16, 16)) > 0

    def test_unknown_proxy(self):
        with pytest.raises(ConfigurationError):
            get_accuracy_proxy("nope")

    def test_mse_proxy_requires_model(self):
        with pytest.raises(ConfigurationError):
            get_accuracy_proxy("mse")


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
class TestStrategies:
    @pytest.mark.parametrize("strategy", ["grid", "greedy", "random",
                                          "evolutionary"])
    def test_all_find_the_paper_optimum(self, strategy):
        result = tune(device="XC7Z045", workloads=WORKLOADS["resnet18"](),
                      objective="latency", strategy=strategy, budget=40,
                      seed=0, batches=(4,))
        assert result.best.candidate.block_out_sp2 == 32   # D2-3
        assert result.best.candidate.block_out_fixed == 16

    def test_budget_respected(self):
        result = tune(device="XC7Z020", workloads=tiny_workloads(),
                      strategy="grid", budget=2, seed=0)
        assert len(result.evaluations) <= 2

    def test_unknown_strategy(self):
        with pytest.raises(ConfigurationError):
            tune(device="XC7Z020", workloads=tiny_workloads(),
                 strategy="simulated-annealing")

    def test_custom_strategy_registers_and_runs(self):
        name = "test-first-only"

        @register_strategy(name, "evaluate only the first candidate")
        def first_only(space, evaluator, rng):
            evaluator.evaluate(space.candidates()[0])

        try:
            assert name in list_strategies()
            result = tune(device="XC7Z020", workloads=tiny_workloads(),
                          strategy=name, budget=10, seed=0)
            assert len(result.evaluations) == 1
        finally:
            _STRATEGIES.pop(name, None)

    def test_greedy_uses_fig2_seed(self):
        # With budget 1 greedy can only afford its seed — which must be
        # the characterization optimum, not an arbitrary corner.
        result = tune(device="XC7Z020", workloads=WORKLOADS["resnet18"](),
                      strategy="greedy", budget=1, seed=0, batches=(1,))
        assert result.best.candidate.block_out_sp2 == 24   # 1:1.5


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------
class TestEvalCache:
    def test_persistent_roundtrip(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = EvalCache(path)
        cache.put("k1", {"value": 1})
        cache.save()
        reloaded = EvalCache(path)
        assert reloaded.get("k1") == {"value": 1}
        assert reloaded.hits == 1

    def test_retune_hits_cache(self, tmp_path):
        path = str(tmp_path / "cache.json")
        workloads = tiny_workloads()
        cold = tune(device="XC7Z020", workloads=workloads, budget=10,
                    seed=0, cache=path)
        warm = tune(device="XC7Z020", workloads=workloads, budget=10,
                    seed=0, cache=path)
        assert cold.cache_stats["hits"] == 0
        assert warm.cache_stats["hits"] == len(warm.evaluations) > 0
        assert warm.best.candidate == cold.best.candidate
        assert warm.best.from_cache

    def test_key_depends_on_model_weights(self, resnet_setup):
        model, _ = resnet_setup
        fp_a = model_fingerprint(model)
        other, _ = build_model("resnet_tiny", seed=5)
        assert fp_a != model_fingerprint(other)
        candidate = Candidate("XC7Z020", 1, 16, 16, 16)
        assert evaluation_key(candidate, fp_a) != \
            evaluation_key(candidate, model_fingerprint(other))

    def test_key_depends_on_workloads(self):
        a = workload_fingerprint(tiny_workloads())
        b = workload_fingerprint(WORKLOADS["resnet18"]())
        assert a != b

    def test_in_memory_cache_save_is_noop(self):
        cache = EvalCache(None)
        cache.put("k", {"v": 1})
        cache.save()               # must not raise
        assert cache.get("k") == {"v": 1}

    def test_lut_cap_change_invalidates_cache(self, tmp_path):
        """A cached fits= verdict computed under one LUT cap must never
        answer a tune run under a different cap."""
        path = str(tmp_path / "cache.json")
        loose = tune(device="XC7Z020", workloads=tiny_workloads(),
                     budget=10, seed=0, cache=path, lut_cap=1.0,
                     sp2_columns=(0, 8, 16, 24))
        assert loose.best.fits
        tight = tune(device="XC7Z020", workloads=tiny_workloads(),
                     budget=10, seed=0, cache=path, lut_cap=0.5,
                     sp2_columns=(0, 8, 16, 24))
        assert tight.cache_stats["hits"] == 0          # different context
        for evaluation in tight.frontier:
            assert evaluation.utilization["lut"] <= 0.5 + 1e-9

    def test_sim_kwargs_change_invalidates_cache(self, tmp_path):
        path = str(tmp_path / "cache.json")
        base = tune(device="XC7Z020", workloads=tiny_workloads(),
                    budget=10, seed=0, cache=path)
        slower = tune(device="XC7Z020", workloads=tiny_workloads(),
                      budget=10, seed=0, cache=path,
                      sim_kwargs={"dram_gbps": 0.1})
        assert slower.cache_stats["hits"] == 0
        assert slower.best.latency_ms > base.best.latency_ms


# ----------------------------------------------------------------------
# Tuner acceptance
# ----------------------------------------------------------------------
class TestTuneAcceptance:
    @pytest.fixture(scope="class")
    def tuned(self, resnet_setup):
        model, x = resnet_setup
        return tune(model, device="zu3eg", objective="pareto",
                    budget=30, seed=0, sample_input=x,
                    serve_batches=(1, 8))

    def test_frontier_nonempty_and_all_fit(self, tuned):
        assert tuned.frontier
        for evaluation in tuned.frontier:
            assert evaluation.fits
            check_fits(evaluation.candidate.design())   # must not raise

    def test_deterministic_under_seed(self, resnet_setup, tuned):
        model, x = resnet_setup
        again = tune(model, device="zu3eg", objective="pareto",
                     budget=30, seed=0, sample_input=x,
                     serve_batches=(1, 8))
        assert again.best.candidate == tuned.best.candidate
        assert [e.candidate.key() for e in again.evaluations] == \
            [e.candidate.key() for e in tuned.evaluations]
        assert again.layer_ratios == tuned.layer_ratios

    def test_top_candidate_deploys_bit_exact(self, resnet_setup, tuned):
        from repro.api import Pipeline

        model, x = resnet_setup
        pipeline = Pipeline(tuned.config(), model=model)
        pipeline.calibrate([x])
        deployment = pipeline.deploy(batch=x.shape[0])
        outputs = deployment.predict(x)
        assert np.array_equal(outputs, eager_forward(model, x))
        assert deployment.engine.design.device.name == "XCZU3EG"

    def test_result_config_carries_tuned_choices(self, tuned):
        config = tuned.config()
        best = tuned.best.candidate
        assert config.weight_bits == best.weight_bits
        assert config.partition_ratio.sp2_fraction == pytest.approx(
            best.sp2_fraction)
        assert config.design.block_out_sp2 == best.block_out_sp2
        assert config.batch == best.serve_batch

    def test_pareto_frontier_is_nondominated(self, tuned):
        frontier = tuned.frontier
        for a in frontier:
            for b in frontier:
                if a is b:
                    continue
                dominates = (b.latency_ms_per_request
                             <= a.latency_ms_per_request
                             and b.accuracy_proxy <= a.accuracy_proxy
                             and (b.latency_ms_per_request
                                  < a.latency_ms_per_request
                                  or b.accuracy_proxy < a.accuracy_proxy))
                assert not dominates

    def test_rediscovers_table7_designs(self):
        designs = reference_designs()
        for device, batch, expected in (("XC7Z020", 1, "D1-3"),
                                        ("XC7Z045", 4, "D2-3")):
            result = tune(device=device,
                          workloads=WORKLOADS["resnet18"](),
                          objective="latency", budget=50, seed=0,
                          batches=(batch,))
            chosen = result.best.candidate
            reference = designs[expected]
            assert chosen.block_out_fixed == reference.block_out_fixed
            assert chosen.block_out_sp2 == reference.block_out_sp2

    def test_save_report(self, tuned, tmp_path):
        path = tmp_path / "report.json"
        tuned.save_report(path)
        report = json.loads(path.read_text())
        assert report["device"] == "XCZU3EG"
        assert report["frontier"]
        assert report["best"]["fits"] is True

    def test_format_table_mentions_frontier(self, tuned):
        text = tuned.format_table()
        assert "Pareto frontier" in text
        assert "XCZU3EG" in text

    def test_objective_validation(self, resnet_setup):
        model, x = resnet_setup
        with pytest.raises(ConfigurationError):
            tune(model, device="zu3eg", objective="speed", sample_input=x)

    def test_throughput_objective_prefers_batching(self, resnet_setup):
        model, x = resnet_setup
        result = tune(model, device="XC7Z045", objective="throughput",
                      budget=30, seed=0, sample_input=x,
                      serve_batches=(1, 16))
        assert result.best.candidate.serve_batch == 16

    def test_needs_model_or_workloads(self):
        with pytest.raises(ConfigurationError):
            tune(device="XC7Z020")

    def test_infeasible_space_reports_utilization(self):
        with pytest.raises(ConfigurationError, match="LUT"):
            tune(device="XC7Z020", workloads=tiny_workloads(),
                 budget=4, seed=0, sp2_columns=(200,))


# ----------------------------------------------------------------------
# Pipeline / config / server integration
# ----------------------------------------------------------------------
class TestPipelineIntegration:
    def test_pipeline_tune_applies_config(self, resnet_setup):
        from repro.api import Pipeline

        model, x = resnet_setup
        pipeline = Pipeline(model=model)
        result = pipeline.tune("zu3eg", sample_input=x, budget=20, seed=0)
        assert pipeline.tuned is result
        assert pipeline.config.design.device.name == "XCZU3EG"
        pipeline.calibrate([x])
        deployment = pipeline.deploy(batch=x.shape[0])
        assert np.array_equal(deployment.predict(x),
                              eager_forward(model, x))

    def test_pipeline_tune_apply_false(self, resnet_setup):
        from repro.api import Pipeline, PipelineConfig

        model, x = resnet_setup
        config = PipelineConfig()
        pipeline = Pipeline(config, model=model)
        pipeline.tune("zu3eg", sample_input=x, budget=10, seed=0,
                      apply=False)
        assert pipeline.config is config

    def test_from_tuning_overrides(self, resnet_setup):
        from repro.api import PipelineConfig

        model, x = resnet_setup
        result = tune(model, device="zu3eg", budget=10, seed=0,
                      sample_input=x)
        config = PipelineConfig.from_tuning(result, batch=32,
                                            layer_ratios=None)
        assert config.batch == 32
        assert config.layer_ratios is None

    def test_fit_rejects_layer_ratios(self):
        from repro.api import Pipeline, PipelineConfig

        config = PipelineConfig(layer_ratios={"fc": 0.5})
        with pytest.raises(ConfigurationError, match="layer_ratios"):
            Pipeline(config).fit(lambda e: iter(()), lambda m, b: None,
                                 model=build_model("resnet_tiny")[0])

    def test_layer_ratio_overrides_reach_ptq(self, rng):
        from repro.api import Pipeline, PipelineConfig

        model, sample = build_model("resnet_tiny", seed=2)
        x = sample(rng, 4)
        config = PipelineConfig(ratio="2:1", layer_ratios={"fc": 0.0})
        quantized = Pipeline(config, model=model).calibrate([x])
        fc = quantized.layer_results["fc.weight"]
        assert fc.partition.num_sp2 == 0      # override forced all-fixed
        others = [r for name, r in quantized.layer_results.items()
                  if name != "fc.weight"]
        assert any(r.partition.num_sp2 > 0 for r in others)

    def test_config_design_accepts_auto_string(self):
        from repro.api import PipelineConfig

        config = PipelineConfig(design="auto:zu3eg")
        assert config.design == "auto:zu3eg"
        with pytest.raises(ConfigurationError):
            PipelineConfig(design="auto:nonexistent-part")

    def test_config_rejects_malformed_auto_batch_at_construction(self):
        from repro.api import PipelineConfig

        with pytest.raises(ConfigurationError, match="malformed"):
            PipelineConfig(design="auto:zu3eg@garbage")
        with pytest.raises(ConfigurationError):
            PipelineConfig(design="auto:zu3eg@0")
        assert PipelineConfig(design="auto:zu3eg@4").design == \
            "auto:zu3eg@4"

    def test_resolve_design_specs(self):
        assert resolve_design("D2-3").block_out_sp2 == 32
        auto = resolve_design("auto:XC7Z045@4")
        assert (auto.block_out_fixed, auto.block_out_sp2) == (16, 32)
        assert resolve_design(auto) is auto
        with pytest.raises(ConfigurationError):
            resolve_design("D9-9")
        with pytest.raises(ConfigurationError):
            resolve_design("auto:XC7Z045@four")
        with pytest.raises(ConfigurationError):
            resolve_design(42)

    def test_server_load_auto_design(self, resnet_setup, tmp_path, rng):
        from repro.api import Pipeline
        from repro.serve import ModelServer

        model, x = resnet_setup
        pipeline = Pipeline(model=model)
        pipeline.calibrate([x])
        path = str(tmp_path / "model.npz")
        pipeline.deploy(path=path)
        with ModelServer(workers=0) as server:
            server.load("m", path, design="auto:zu3eg")
            engine = server._models["m"].engine
            assert engine.design.device.name == "XCZU3EG"
            assert np.array_equal(server.predict("m", x[0]),
                                  eager_forward(model, x[:1])[0])


# ----------------------------------------------------------------------
# check_fits reporting (satellite)
# ----------------------------------------------------------------------
class TestCheckFitsReporting:
    def test_message_has_all_resources(self):
        design = Candidate("XC7Z020", 1, 16, 16, 200).design()
        with pytest.raises(ResourceError) as info:
            check_fits(design)
        message = str(info.value)
        for resource in ("LUT", "FF", "BRAM36", "DSP"):
            assert resource in message
        assert "%" in message and "(over)" in message

    def test_resource_error_is_configuration_error(self):
        design = Candidate("XC7Z020", 1, 16, 16, 200).design()
        with pytest.raises(ConfigurationError):
            check_fits(design)


# ----------------------------------------------------------------------
# Latency-unit convention (satellite): ms everywhere
# ----------------------------------------------------------------------
class TestLatencyUnitConvention:
    def test_served_fpga_ms_equals_simulate_network(self, resnet_setup):
        from repro.api import Pipeline
        from repro.fpga.accelerator import simulate_network

        model, x = resnet_setup
        pipeline = Pipeline(model=model)
        pipeline.calibrate([x])
        deployment = pipeline.deploy(batch=4)
        payloads = [x[i % x.shape[0]] for i in range(10)]
        stats = deployment.serve(payloads)
        # 10 requests at max_batch 4 -> micro-batches of 4, 4, 2.
        design = deployment.engine.design
        expected = sum(
            simulate_network(deployment.plan.workloads(size),
                             design).latency_ms
            for size in (4, 4, 2))
        assert stats.fpga_ms_total == pytest.approx(expected, rel=1e-12)

    def test_engine_price_is_plan_simulate_ms(self, resnet_setup):
        from repro.api import Pipeline

        model, x = resnet_setup
        pipeline = Pipeline(model=model)
        pipeline.calibrate([x])
        deployment = pipeline.deploy(batch=4)
        engine = deployment.engine
        assert engine.fpga_latency_ms(3) == pytest.approx(
            deployment.plan.simulate(engine.design, batch=3).latency_ms)

    def test_latency_ms_is_milliseconds(self):
        from repro.fpga.accelerator import simulate_network

        design = reference_designs()["D1-1"]
        performance = simulate_network(tiny_workloads(), design)
        # cycles at freq_mhz MHz: ms = cycles / (MHz * 1e3), and fps/GOPS
        # must be consistent with that same ms figure.
        assert performance.latency_ms == pytest.approx(
            performance.total_cycles / (design.freq_mhz * 1e3))
        assert performance.fps == pytest.approx(
            1000.0 / performance.latency_ms)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestTuneCli:
    def test_tune_smoke_writes_report(self, tmp_path):
        from repro.api.cli import main

        out = tmp_path / "report.json"
        code = main(["tune", "--model", "resnet", "--device", "zu3eg",
                     "--budget", "12", "--out", str(out)])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["device"] == "XCZU3EG"
        assert report["frontier"]

    def test_registry_lists_devices_and_designs(self, capsys):
        from repro.api.cli import main

        assert main(["registry"]) == 0
        output = capsys.readouterr().out
        assert "XCZU3EG" in output
        assert "D2-3" in output
        assert "greedy" in output

    def test_tune_unknown_device_fails_cleanly(self, capsys):
        from repro.api.cli import main

        assert main(["tune", "--model", "resnet", "--device", "xyz999",
                     "--budget", "4"]) == 1
        assert "error" in capsys.readouterr().err

    def test_tune_calibration_proxy_from_cli(self, capsys):
        """--accuracy calibration must synthesize its own batches."""
        from repro.api.cli import main

        assert main(["tune", "--model", "lstm", "--device", "XC7Z020",
                     "--budget", "6", "--accuracy", "calibration"]) == 0
        assert "Pareto frontier" in capsys.readouterr().out


def test_pareto_frontier_empty_for_infeasible():
    model = CostModel(lambda b: tiny_workloads(), lut_cap=0.80)
    evaluations = [model.evaluate(Candidate("XC7Z020", 1, 16, 16, 96))]
    assert not evaluations[0].fits
    assert pareto_frontier(evaluations) == []


def test_cli_subprocess_smoke(tmp_path):
    """The documented CI smoke line, end to end in a real process."""
    out = tmp_path / "tune.json"
    result = subprocess.run(
        [sys.executable, "-m", "repro", "tune", "--model", "resnet",
         "--device", "zu3eg", "--budget", "12", "--out", str(out)],
        capture_output=True, text=True, env={"PYTHONPATH": "src"},
        cwd=str(__import__("pathlib").Path(__file__).parent.parent))
    assert result.returncode == 0, result.stderr
    assert "Pareto frontier" in result.stdout
    assert out.exists()
