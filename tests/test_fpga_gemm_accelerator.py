"""GEMM tile model, ISA generator, and the network performance simulator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fpga.accelerator import (
    AcceleratorSim,
    recurrent_efficiency,
    simulate_network,
)
from repro.fpga.gemm import GemmWorkload, simulate_gemm
from repro.fpga.isa import Opcode, generate_layer_program, program_summary
from repro.fpga.resources import GemmDesign, peak_throughput_gops, reference_designs
from repro.fpga.workloads import (
    WORKLOADS,
    lstm_ptb,
    mobilenet_v2_imagenet,
    resnet18_imagenet,
    total_gops,
    yolov3_coco,
)


class TestGemmWorkload:
    def test_ops_is_2x_macs(self):
        workload = GemmWorkload("w", rows=8, reduction=16, columns=10)
        assert workload.ops == 2 * 8 * 16 * 10

    def test_invalid_dims(self):
        with pytest.raises(ConfigurationError):
            GemmWorkload("w", rows=0, reduction=1)


class TestTileModel:
    def _design(self, bs=16):
        return reference_designs()["D1-2" if bs else "D1-1"]

    def test_aligned_dims_full_utilization(self):
        design = reference_designs()["D1-1"]
        workload = GemmWorkload("w", rows=64, reduction=64, columns=128)
        stats = simulate_gemm(workload, design, sp2_fraction=0.0)
        assert stats.pe_utilization == pytest.approx(
            design.block_out_fixed / design.block_out_total, rel=1e-6)

    def test_thin_reduction_starves_lanes(self):
        """3 input channels on 16 lanes -> at most 3/16 utilization."""
        design = reference_designs()["D1-1"]
        workload = GemmWorkload("conv1", rows=64, reduction=3,
                                kernel_positions=49, columns=100)
        stats = simulate_gemm(workload, design, sp2_fraction=0.0)
        assert stats.pe_utilization == pytest.approx(3 / 16, rel=1e-6)

    def test_rows_split_by_fraction(self):
        design = reference_designs()["D2-3"]
        workload = GemmWorkload("w", rows=96, reduction=32, columns=64)
        stats = simulate_gemm(workload, design)  # default 2/3 SP2
        assert stats.rows_sp2 == 64 and stats.rows_fixed == 32

    def test_cores_run_in_parallel(self):
        design = reference_designs()["D1-2"]  # 16 + 16 columns
        workload = GemmWorkload("w", rows=32, reduction=16, columns=10)
        stats = simulate_gemm(workload, design, sp2_fraction=0.5)
        assert stats.cycles == max(stats.cycles_fixed, stats.cycles_sp2)
        assert stats.cycles_fixed == stats.cycles_sp2

    def test_imbalanced_split_wastes_cycles(self):
        """All rows on one core while the other idles doubles the time."""
        design = reference_designs()["D1-2"]
        workload = GemmWorkload("w", rows=32, reduction=16, columns=10)
        balanced = simulate_gemm(workload, design, sp2_fraction=0.5)
        skewed = simulate_gemm(workload, design, sp2_fraction=1.0)
        assert skewed.cycles == 2 * balanced.cycles

    def test_dsp_only_design_forces_fixed(self):
        design = reference_designs()["D1-1"]  # no SP2 core
        workload = GemmWorkload("w", rows=32, reduction=16, columns=10)
        stats = simulate_gemm(workload, design, sp2_fraction=0.9)
        assert stats.rows_sp2 == 0


class TestIsa:
    def test_program_gemm_cycles_match_tile_model(self):
        design = reference_designs()["D1-3"]
        workload = GemmWorkload("w", rows=64, reduction=32,
                                kernel_positions=9, columns=49)
        stats = simulate_gemm(workload, design)
        summary = program_summary(generate_layer_program(workload, design))
        assert summary["gemm_cycles"]["gemm_fixed"] == stats.cycles_fixed
        assert summary["gemm_cycles"]["gemm_sp2"] == stats.cycles_sp2

    def test_every_output_tile_stored(self):
        design = reference_designs()["D1-2"]
        workload = GemmWorkload("w", rows=48, reduction=16, columns=8)
        program = generate_layer_program(workload, design)
        stores = [i for i in program if i.opcode == Opcode.STORE]
        loads = [i for i in program if i.opcode == Opcode.LOAD_WEIGHT]
        assert len(stores) == len(loads)

    def test_gemm_depends_on_load(self):
        design = reference_designs()["D1-1"]
        workload = GemmWorkload("w", rows=16, reduction=16, columns=4)
        program = generate_layer_program(workload, design)
        gemms = [i for i in program if i.opcode == Opcode.GEMM_FIXED]
        assert gemms and all(i.depends_on_load for i in gemms)


class TestWorkloadShapes:
    def test_resnet18_total_ops(self):
        assert total_gops(resnet18_imagenet()) == pytest.approx(3.63, rel=0.03)

    def test_mobilenet_total_ops(self):
        assert total_gops(mobilenet_v2_imagenet()) == pytest.approx(
            0.60, rel=0.05)

    def test_yolov3_total_ops(self):
        assert total_gops(yolov3_coco()) == pytest.approx(39.0, rel=0.05)

    def test_rnn_workloads_sequential_flag(self):
        workloads = lstm_ptb()
        hh = [w for w in workloads if w.name.endswith(".hh")]
        ih = [w for w in workloads if w.name.endswith(".ih")]
        assert all(w.sequential_columns for w in hh)
        assert all(not w.sequential_columns for w in ih)

    def test_lstm_gate_stacking(self):
        workloads = lstm_ptb()
        assert workloads[0].rows == 4 * 256

    def test_gru_gate_stacking(self):
        from repro.fpga.workloads import gru_timit

        assert gru_timit()[0].rows == 3 * 1024

    def test_registry_complete(self):
        assert set(WORKLOADS) == {"resnet18", "mobilenet_v2", "yolov3",
                                  "lstm_ptb", "gru_timit", "lstm_imdb"}


class TestAcceleratorSim:
    def test_throughput_below_peak(self):
        for design in reference_designs().values():
            perf = simulate_network(WORKLOADS["resnet18"](), design)
            assert perf.throughput_gops < peak_throughput_gops(design)

    def test_resnet_d1_1_matches_paper_within_10pct(self):
        perf = simulate_network(WORKLOADS["resnet18"](),
                                reference_designs()["D1-1"])
        assert perf.throughput_gops == pytest.approx(36.0, rel=0.10)

    def test_resnet_latency_points(self):
        designs = reference_designs()
        d11 = simulate_network(WORKLOADS["resnet18"](), designs["D1-1"])
        d13 = simulate_network(WORKLOADS["resnet18"](), designs["D1-3"])
        d23 = simulate_network(WORKLOADS["resnet18"](), designs["D2-3"])
        assert d11.latency_ms == pytest.approx(100.7, rel=0.10)
        assert d13.latency_ms == pytest.approx(47.1, rel=0.10)
        assert d23.latency_ms == pytest.approx(10.1, rel=0.15)

    def test_headline_speedups_in_range(self):
        """Optimal-ratio over DSP-only: the paper claims 2.1x-2.5x for CNNs
        and 2.4x-4.1x for RNNs."""
        designs = reference_designs()
        for network in ("resnet18", "mobilenet_v2", "yolov3"):
            workload = WORKLOADS[network]()
            base = simulate_network(workload, designs["D1-1"]).throughput_gops
            opt = simulate_network(workload, designs["D1-3"]).throughput_gops
            assert 1.9 <= opt / base <= 2.6, network
        for network in ("lstm_ptb", "gru_timit", "lstm_imdb"):
            workload = WORKLOADS[network]()
            base = simulate_network(workload, designs["D2-1"]).throughput_gops
            opt = simulate_network(workload, designs["D2-3"]).throughput_gops
            assert 2.0 <= opt / base <= 4.2, network

    def test_mobilenet_utilization_lowest_of_cnns(self):
        design = reference_designs()["D2-3"]
        utils = {net: simulate_network(WORKLOADS[net](), design).pe_utilization
                 for net in ("resnet18", "mobilenet_v2", "yolov3")}
        assert utils["mobilenet_v2"] == min(utils.values())

    def test_rnn_efficiency_rises_with_batch(self):
        assert recurrent_efficiency(4) > recurrent_efficiency(1)

    def test_fps_consistent_with_latency(self):
        perf = simulate_network(WORKLOADS["mobilenet_v2"](),
                                reference_designs()["D1-3"])
        assert perf.fps == pytest.approx(1000.0 / perf.latency_ms)

    def test_memory_bound_flag(self):
        design = reference_designs()["D1-1"]
        sim = AcceleratorSim(design, dram_gbps=0.01)
        layer = sim.simulate_layer(GemmWorkload("fat", rows=512,
                                                reduction=512, columns=4))
        assert layer.memory_bound

    def test_8bit_design_roughly_halves_throughput(self):
        """§VI-B: the 4-bit optimal design beats the 8-bit DSP-only design
        by ~3.8x (181.3 ms vs 47.1 ms)."""
        from repro.fpga.devices import get_device
        from repro.fpga.resources import max_block_out_fixed

        device = get_device("XC7Z020")
        eight = GemmDesign(device, 1, 16,
                           max_block_out_fixed(device, 1, 16, 8), 0,
                           weight_bits=8, act_bits=8)
        four_opt = reference_designs()["D1-3"]
        workload = WORKLOADS["resnet18"]()
        t8 = simulate_network(workload, eight).latency_ms
        t4 = simulate_network(workload, four_opt).latency_ms
        assert 3.0 <= t8 / t4 <= 4.8
