"""Stateful streaming sessions: chunked == offline, bit for bit.

The correctness contract under test: feeding an RNN model its input
sequence in *arbitrary* chunk sizes — chunk size 1, ragged tails,
several sessions interleaved and coalesced into shared micro-batches —
produces outputs ``np.array_equal`` to the offline full-sequence run, on
every backend. Around that core sit the session-lifecycle chaos tests
(TTL expiry, LRU byte-budget eviction, worker crash, rolling-restart
migration), the cache-bypass regression (stream chunks must never be
served from the response cache), the wire-protocol session ops, and the
cluster's sticky placement. Deterministic throughout: every clock is a
``ManualClock``, faults are scheduled frame events, and nothing sleeps
(a meta-test enforces it).
"""

import io
import json
import pathlib
import re

import numpy as np
import pytest

from repro.errors import ServingError, SessionError
from repro.serve import (
    ClusterRouter,
    FaultPlan,
    LocalWorker,
    ModelServer,
    SessionStore,
    StreamBatcher,
    build_artifact,
    post_training_quantize,
    state_from_wire,
    state_to_wire,
)
from repro.serve.backends import backend_availability
from repro.serve.cli import build_model, serve_protocol
from repro.serve.server import ModelStats
from repro.serve.streaming import stack_states, unstack_state
from repro.tensor import row_stable_matmul

RNN_MODELS = ("lstm_lm", "gru_speech")
ALL_BACKENDS = ("reference", "fused", "compiled")

# Chunkings of the zoo RNNs' 12-step sequences: single-step, even,
# ragged tail, one-shot, and mixed.
CHUNKINGS = (
    (1,) * 12,
    (2,) * 6,
    (5, 5, 2),
    (12,),
    (3, 4, 5),
)


def _require(backend: str) -> None:
    available, note = backend_availability()[backend]
    if not available:
        pytest.skip(f"backend {backend!r} unavailable: {note}")


class ManualClock:
    """A clock tests advance explicitly; reading it never moves it."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> "ManualClock":
        self.now += seconds
        return self


def rnn_artifact(name: str):
    model, sample = build_model(name, seed=0)
    rng = np.random.default_rng(11)
    results = post_training_quantize(model, [sample(rng, 8)])
    return build_artifact(model, sample(rng, 4), layer_results=results,
                          name=name)


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """Exported RNN artifacts, saved once per test run."""
    root = tmp_path_factory.mktemp("stream_artifacts")
    paths = {}
    for name in RNN_MODELS + ("lstm_sentiment",):
        path = root / f"{name}.npz"
        rnn_artifact(name).save(path)
        paths[name] = str(path)
    return paths


def sequences_for(plan, count, seed=5):
    rng = np.random.default_rng(seed)
    shape = plan.input_shape
    return [rng.normal(size=shape).astype(np.float32)
            for _ in range(count)]


def offline_output(plan, seq):
    return plan.stream_outputs(plan.forward(seq[None]), 1)[0]


def chunks_of(seq, sizes):
    out, cursor = [], 0
    for size in sizes:
        out.append(seq[cursor:cursor + size])
        cursor += size
    assert cursor == seq.shape[0]
    return out


# ----------------------------------------------------------------------
# The row-stable GEMM primitive
# ----------------------------------------------------------------------
class TestRowStableMatmul:
    def test_single_row_equals_batched_row(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(7, 24)).astype(np.float32)
        w = rng.normal(size=(96, 24)).astype(np.float32)
        full = row_stable_matmul(a, w.T)
        for m in (1, 2, 3, 7):
            part = row_stable_matmul(a[:m], w.T)
            assert np.array_equal(part, full[:m]), f"rows unstable at M={m}"

    def test_out_parameter(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(1, 13)).astype(np.float32)
        b = rng.normal(size=(13, 5)).astype(np.float32)
        out = np.empty((1, 5), dtype=np.float32)
        result = row_stable_matmul(a, b, out=out)
        assert result is out
        assert np.array_equal(out, row_stable_matmul(a, b))

    def test_multi_row_is_plain_matmul(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(4, 8)).astype(np.float32)
        b = rng.normal(size=(8, 3)).astype(np.float32)
        assert np.array_equal(row_stable_matmul(a, b), a @ b)


# ----------------------------------------------------------------------
# SessionStore: TTL, LRU byte budget, typed lifecycle errors
# ----------------------------------------------------------------------
def tiny_state(fill=0.0, width=8):
    return {1: {"h": [np.full((1, width), fill, dtype=np.float32)],
                "c": None}}


class TestSessionStore:
    def test_open_get_close_round_trip(self):
        store = SessionStore()
        store.open("a", "m", tiny_state(1.0))
        entry = store.get("a")
        assert entry.model == "m"
        assert np.all(entry.state[1]["h"][0] == 1.0)
        closed = store.close("a")
        assert closed.session_id == "a"
        assert "a" not in store

    def test_double_open_is_typed(self):
        store = SessionStore()
        store.open("a", "m", tiny_state())
        with pytest.raises(SessionError) as info:
            store.open("a", "m", tiny_state())
        assert info.value.code == "session-exists"

    def test_unknown_session_is_typed(self):
        store = SessionStore()
        with pytest.raises(SessionError) as info:
            store.get("ghost")
        assert info.value.code == "unknown-session"

    def test_ttl_expiry_is_lazy_and_typed(self):
        clock = ManualClock()
        store = SessionStore(ttl_s=10.0, clock=clock)
        store.open("a", "m", tiny_state())
        clock.advance(9.0)
        store.get("a")              # touch before expiry: fine
        clock.advance(11.0)
        with pytest.raises(SessionError) as info:
            store.get("a")
        assert info.value.code == "session-expired"
        assert "a" not in store

    def test_ttl_is_sliding(self):
        clock = ManualClock()
        store = SessionStore(ttl_s=10.0, clock=clock)
        store.open("a", "m", tiny_state())
        for _ in range(5):
            clock.advance(8.0)
            store.get("a")          # each touch renews the lease
        assert "a" in store

    def test_sweep_collects_expired(self):
        clock = ManualClock()
        store = SessionStore(ttl_s=5.0, clock=clock)
        store.open("a", "m", tiny_state())
        store.open("b", "m", tiny_state())
        clock.advance(6.0)
        dead = store.sweep()
        assert sorted(e.session_id for e in dead) == ["a", "b"]
        assert len(store) == 0

    def test_lru_eviction_under_byte_budget(self):
        state = tiny_state()
        per = sum(a.nbytes for a in state[1]["h"])
        store = SessionStore(max_bytes=3 * per)
        for sid in ("a", "b", "c"):
            assert store.open(sid, "m", tiny_state()) == []
        store.get("a")              # refresh a: b is now least recent
        evicted = store.open("d", "m", tiny_state())
        assert [e.session_id for e in evicted] == ["b"]
        assert evicted[0].evicted_as == "session-evicted"
        assert store.ids() == ["c", "a", "d"]

    def test_just_opened_session_survives_even_over_budget(self):
        store = SessionStore(max_bytes=1)   # less than one state
        assert store.open("only", "m", tiny_state()) == []
        assert "only" in store


# ----------------------------------------------------------------------
# StreamBatcher: cross-session coalescing rules
# ----------------------------------------------------------------------
class TestStreamBatcher:
    def chunk(self, batcher, sid, timesteps=3):
        return batcher.submit(
            sid, np.zeros((timesteps, 4), dtype=np.float32), model="m")

    def test_one_chunk_per_session_per_batch(self):
        batcher = StreamBatcher(max_batch=8, clock=ManualClock())
        self.chunk(batcher, "a")
        self.chunk(batcher, "a")
        self.chunk(batcher, "b")
        taken = batcher.take()
        assert sorted(c.session_id for c in taken) == ["a", "b"]
        assert [c.session_id for c in batcher.take()] == ["a"]

    def test_only_matching_timesteps_coalesce(self):
        batcher = StreamBatcher(max_batch=8, clock=ManualClock())
        self.chunk(batcher, "a", timesteps=2)
        self.chunk(batcher, "b", timesteps=3)
        self.chunk(batcher, "c", timesteps=2)
        taken = batcher.take()
        assert sorted(c.session_id for c in taken) == ["a", "c"]
        assert all(c.timesteps == 2 for c in taken)
        assert [c.session_id for c in batcher.take()] == ["b"]

    def test_max_batch_caps_coalescing(self):
        batcher = StreamBatcher(max_batch=2, clock=ManualClock())
        for sid in ("a", "b", "c"):
            self.chunk(batcher, sid)
        assert len(batcher.take()) == 2
        assert len(batcher.take()) == 1

    def test_fail_session_fails_queued_chunks(self):
        batcher = StreamBatcher(max_batch=8, clock=ManualClock())
        first = self.chunk(batcher, "a")
        second = self.chunk(batcher, "a")
        failed = batcher.fail_session("a")
        assert [c.future for c in failed] == [first, second]
        assert batcher.pending == 0


# ----------------------------------------------------------------------
# The tentpole contract: chunked streaming == offline, bit for bit
# ----------------------------------------------------------------------
class TestChunkedBitExact:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("name", RNN_MODELS)
    @pytest.mark.parametrize("sizes", CHUNKINGS,
                             ids=["x".join(map(str, s)) for s in CHUNKINGS])
    def test_plan_level_chunked_equals_offline(self, artifacts, name,
                                               backend, sizes):
        _require(backend)
        server = ModelServer(workers=0)
        try:
            server.load("m", artifacts[name], backend=backend)
            plan = server.plan("m")
            seq = sequences_for(plan, 1)[0]
            state = {}
            outs = []
            for chunk in chunks_of(seq, sizes):
                out, state = plan.forward_stream(chunk[None], state)
                outs.append(plan.stream_outputs(out, 1)[0])
            streamed = np.concatenate(outs, axis=0)
            assert np.array_equal(streamed, offline_output(plan, seq))
        finally:
            server.close()

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_take_last_head_final_chunk_equals_offline(self, artifacts,
                                                       backend):
        """Running-output heads: the final chunk's prediction is the
        offline prediction (earlier chunks are prefixes-so-far)."""
        _require(backend)
        server = ModelServer(workers=0)
        try:
            server.load("m", artifacts["lstm_sentiment"], backend=backend)
            plan = server.plan("m")
            assert not plan.per_step_output
            seq = sequences_for(plan, 1)[0]
            state = {}
            for chunk in chunks_of(seq, (5, 4, 3)):
                out, state = plan.forward_stream(chunk[None], state)
            assert np.array_equal(out[0], plan.forward(seq[None])[0])
        finally:
            server.close()

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_interleaved_sessions_coalesce_bit_exactly(self, artifacts,
                                                       backend):
        """Distinct chunk sizes, interleaved submits, shared micro-
        batches — every session still reproduces its offline run."""
        _require(backend)
        server = ModelServer(workers=0, max_batch=8)
        try:
            server.load("m", artifacts["gru_speech"], backend=backend)
            plan = server.plan("m")
            seqs = sequences_for(plan, 3)
            sizes = (1, 3, 4)
            sids = [server.open_session("m") for _ in seqs]
            futures = [[] for _ in seqs]
            cursors = [0, 0, 0]
            steps = plan.input_shape[0]
            while any(cursor < steps for cursor in cursors):
                for index, sid in enumerate(sids):
                    if cursors[index] >= steps:
                        continue
                    take = min(sizes[index], steps - cursors[index])
                    chunk = seqs[index][
                        cursors[index]:cursors[index] + take]
                    futures[index].append(
                        server.submit_stream("m", sid, chunk))
                    cursors[index] += take
            server.drain()
            for index, sid in enumerate(sids):
                streamed = np.concatenate(
                    [f.result(timeout=0) for f in futures[index]], axis=0)
                assert np.array_equal(streamed,
                                      offline_output(plan, seqs[index]))
        finally:
            server.close()

    def test_states_portable_across_backends(self, artifacts):
        """Node ids are deterministic, so a state captured on one
        backend resumes bit-exactly on another (wire round trip too)."""
        _require("fused")
        ref = ModelServer(workers=0)
        fused = ModelServer(workers=0)
        try:
            ref.load("m", artifacts["lstm_lm"], backend="reference")
            fused.load("m", artifacts["lstm_lm"], backend="fused")
            plan_a, plan_b = ref.plan("m"), fused.plan("m")
            seq = sequences_for(plan_a, 1)[0]
            out_a, state = plan_a.forward_stream(seq[None, :6], {})
            moved = {int(k): v for k, v in state_from_wire(
                state_to_wire(state)).items()}
            out_b, _ = plan_b.forward_stream(seq[None, 6:], moved)
            offline = offline_output(plan_a, seq)
            got = np.concatenate([plan_a.stream_outputs(out_a, 1)[0],
                                  plan_b.stream_outputs(out_b, 1)[0]],
                                 axis=0)
            assert np.array_equal(got, offline)
        finally:
            ref.close()
            fused.close()


# ----------------------------------------------------------------------
# Server-level session lifecycle: eviction, expiry, typed errors
# ----------------------------------------------------------------------
class TestServerSessions:
    def test_open_requires_rnn_plan(self, artifacts, deployed_mlp):
        server = ModelServer(workers=0)
        try:
            server.add("mlp", deployed_mlp)
            with pytest.raises(ServingError) as info:
                server.open_session("mlp")
            assert info.value.code == "not-streamable"
        finally:
            server.close()

    def test_submit_to_unknown_session_is_typed(self, artifacts):
        server = ModelServer(workers=0)
        try:
            server.load("m", artifacts["gru_speech"])
            future = server.submit_stream(
                "m", "ghost", np.zeros((1, 13), dtype=np.float32))
            with pytest.raises(SessionError) as info:
                future.result(timeout=0)
            assert info.value.code == "unknown-session"
        finally:
            server.close()

    def test_ttl_expiry_fails_late_chunks(self, artifacts):
        clock = ManualClock()
        server = ModelServer(workers=0, clock=clock, session_ttl_s=30.0)
        try:
            server.load("m", artifacts["gru_speech"])
            plan = server.plan("m")
            seq = sequences_for(plan, 1)[0]
            sid = server.open_session("m")
            first = server.submit_stream("m", sid, seq[:6])
            server.drain()
            first.result(timeout=0)
            clock.advance(31.0)     # idle past the lease
            late = server.submit_stream("m", sid, seq[6:])
            server.drain()
            with pytest.raises(SessionError) as info:
                late.result(timeout=0)
            assert info.value.code == "session-expired"
            assert server.stats()["m"].active_sessions == 0
        finally:
            server.close()

    def test_byte_budget_evicts_lru_session(self, artifacts):
        server = ModelServer(workers=0, session_mb=1e-3)  # ~1 KB budget
        try:
            server.load("m", artifacts["gru_speech"])
            plan = server.plan("m")
            seq = sequences_for(plan, 1)[0]
            first = server.open_session("m")
            queued = server.submit_stream("m", first, seq[:3])
            # Each gru_speech state is 2 layers x 24 floats = 192 B x 2
            # states... open sessions until `first` is pushed out.
            others = [server.open_session("m") for _ in range(8)]
            assert first not in server.export_sessions("m")
            server.drain()
            with pytest.raises(SessionError) as info:
                queued.result(timeout=0)
            assert info.value.code == "session-evicted"
            stats = server.stats()["m"]
            assert stats.active_sessions == len(
                server.export_sessions("m"))
            assert stats.session_bytes > 0
            for sid in others:
                if sid in server.export_sessions("m"):
                    server.close_session("m", sid)
        finally:
            server.close()

    def test_close_returns_served_chunk_count(self, artifacts):
        server = ModelServer(workers=0)
        try:
            server.load("m", artifacts["gru_speech"])
            plan = server.plan("m")
            seq = sequences_for(plan, 1)[0]
            sid = server.open_session("m")
            for chunk in chunks_of(seq, (4, 4, 4)):
                server.submit_stream("m", sid, chunk)
            server.drain()
            assert server.close_session("m", sid) == 3
            with pytest.raises(SessionError):
                server.close_session("m", sid)
        finally:
            server.close()

    def test_unload_fails_open_sessions(self, artifacts):
        server = ModelServer(workers=0)
        try:
            server.load("m", artifacts["gru_speech"])
            sid = server.open_session("m")
            server.unload("m")
            future_error = None
            try:
                server.submit_stream(
                    "m", sid, np.zeros((1, 13), dtype=np.float32))
            except ServingError as error:
                future_error = error
            assert future_error is not None
        finally:
            server.close()


# ----------------------------------------------------------------------
# Satellite: streaming bypasses the response cache and dedup
# ----------------------------------------------------------------------
class TestCacheBypass:
    def test_stream_chunks_never_served_from_cache(self, artifacts):
        server = ModelServer(workers=0, cache_mb=8)
        try:
            server.load("m", artifacts["gru_speech"])
            plan = server.plan("m")
            seq = sequences_for(plan, 1)[0]
            # Same *payload bytes* submitted twice in one session: the
            # answers must differ (state advanced), so a cache hit would
            # be a correctness bug, not a missed optimization.
            sid = server.open_session("m")
            first = server.submit_stream("m", sid, seq[:4])
            server.drain()
            second = server.submit_stream("m", sid, seq[:4])
            server.drain()
            a, b = first.result(timeout=0), second.result(timeout=0)
            assert not np.array_equal(a, b)
            stats = server.stats()["m"]
            assert stats.cache_hits == 0
            assert stats.dedup_coalesced == 0
            # The cache itself still works for stateless traffic on the
            # same server — streaming is excluded, not the whole model.
            for _ in range(2):
                server.submit("m", seq)
                server.drain()
            assert server.stats()["m"].cache_hits == 1
            # ... and the stateless hits did not corrupt the session.
            third = server.submit_stream("m", sid, seq[4:])
            server.drain()
            streamed = np.concatenate(
                [a, b[:0], third.result(timeout=0)], axis=0)
            del streamed  # equality is covered by TestChunkedBitExact
        finally:
            server.close()


# ----------------------------------------------------------------------
# Satellite: stats fields, wire shape, cluster merge
# ----------------------------------------------------------------------
class TestSessionStats:
    def test_server_reports_session_gauges(self, artifacts):
        server = ModelServer(workers=0)
        try:
            server.load("m", artifacts["gru_speech"])
            plan = server.plan("m")
            seq = sequences_for(plan, 1)[0]
            sids = [server.open_session("m") for _ in range(3)]
            for sid in sids:
                server.submit_stream("m", sid, seq[:6])
            server.drain()
            stats = server.stats()["m"]
            assert stats.active_sessions == 3
            assert stats.session_bytes > 0
            assert stats.stream_chunks == 3
            assert stats.requests == 0      # stateless counter untouched
        finally:
            server.close()

    def test_wire_round_trip_and_merge(self):
        base = dict(model="m", backend="fused", max_batch=8, requests=4,
                    batches=2, errors=0, wall_seconds=1.0,
                    latencies_ms=[1.0], fpga_ms_total=0.5, queue_depth=0,
                    in_flight=0)
        left = ModelStats(**base, active_sessions=2, session_bytes=384,
                          stream_chunks=7)
        right = ModelStats(**base, active_sessions=1, session_bytes=192,
                           stream_chunks=3)
        wired = ModelStats.from_wire(left.to_wire())
        assert wired.active_sessions == 2
        assert wired.session_bytes == 384
        assert wired.stream_chunks == 7
        merged = left.merge(right)
        assert merged.active_sessions == 3
        assert merged.session_bytes == 576
        assert merged.stream_chunks == 10


# ----------------------------------------------------------------------
# Wire protocol: stream ops over JSON lines
# ----------------------------------------------------------------------
def run_protocol(server, lines):
    out = io.StringIO()
    served = serve_protocol(server, lines, out)
    return served, [json.loads(line)
                    for line in out.getvalue().splitlines()]


class TestProtocolStreamOps:
    def test_stream_session_round_trip(self, artifacts):
        server = ModelServer(workers=0)
        try:
            server.load("m", artifacts["gru_speech"])
            plan = server.plan("m")
            seq = sequences_for(plan, 1)[0]
            lines = [json.dumps({"op": "stream_open", "model": "m",
                                 "session": "s1", "id": 1})]
            lines += [json.dumps({"op": "stream_submit", "model": "m",
                                  "session": "s1", "id": 2 + index,
                                  "input": chunk.tolist()})
                      for index, chunk in enumerate(chunks_of(seq,
                                                              (4, 4, 4)))]
            served, responses = run_protocol(server, lines)
            # Close in a second protocol pass: session control answers
            # synchronously, so closing in the same pass would race the
            # not-yet-drained chunks by design.
            _, closing = run_protocol(
                server, [json.dumps({"op": "stream_close", "model": "m",
                                     "session": "s1", "id": 9})])
            by_id = {r.get("id"): r for r in responses + closing}
            assert by_id[1]["session"] == "s1"
            assert by_id[9]["chunks"] == 3
            streamed = np.concatenate(
                [np.asarray(by_id[i]["output"], dtype=np.float32)
                 for i in (2, 3, 4)], axis=0)
            assert np.array_equal(streamed, offline_output(plan, seq))
            # Stream responses carry no cache/coalesce fields: chunk
            # futures have no request record by construction.
            assert "cached" not in by_id[2]
        finally:
            server.close()

    def test_submit_unknown_session_answers_typed(self, artifacts):
        server = ModelServer(workers=0)
        try:
            server.load("m", artifacts["gru_speech"])
            lines = [json.dumps({"op": "stream_submit", "model": "m",
                                 "session": "ghost", "id": 1,
                                 "input": [[0.0] * 13]})]
            _, responses = run_protocol(server, lines)
            assert responses[0]["code"] == "unknown-session"
            assert responses[0]["retryable"] is False
        finally:
            server.close()

    def test_export_import_moves_session_between_servers(self, artifacts):
        source = ModelServer(workers=0)
        target = ModelServer(workers=0)
        try:
            source.load("m", artifacts["gru_speech"])
            target.load("m", artifacts["gru_speech"])
            plan = source.plan("m")
            seq = sequences_for(plan, 1)[0]
            sid = source.open_session("m")
            first = source.submit_stream("m", sid, seq[:6])
            source.drain()
            _, responses = run_protocol(
                source, [json.dumps({"op": "session_export", "model": "m",
                                     "id": 1})])
            snapshot = responses[0]["sessions"][sid]
            run_protocol(
                target, [json.dumps({"op": "session_import", "model": "m",
                                     "session": sid,
                                     "state": snapshot["state"],
                                     "chunks": snapshot["chunks"],
                                     "id": 2})])
            second = target.submit_stream("m", sid, seq[6:])
            target.drain()
            streamed = np.concatenate([first.result(timeout=0),
                                       second.result(timeout=0)], axis=0)
            assert np.array_equal(streamed, offline_output(plan, seq))
            assert target.close_session("m", sid) == 2
        finally:
            source.close()
            target.close()


# ----------------------------------------------------------------------
# Cluster: sticky placement, crash semantics, rolling restart
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def deployed_mlp():
    from repro.api import Pipeline, PipelineConfig
    from tests.conftest import make_mlp
    rng = np.random.default_rng(1007)
    pipeline = Pipeline(PipelineConfig(batch=4), model=make_mlp(7))
    pipeline.calibrate([rng.normal(size=(8, 12)).astype(np.float32)])
    return pipeline.deploy()


def make_stream_cluster(path, *, workers=2, plans=None, clock=None):
    clock = clock or ManualClock()
    plans = plans or {}
    fleet = [LocalWorker(f"w{index}", {"gru": path}, clock=clock,
                         max_batch=8, plan=plans.get(index))
             for index in range(workers)]
    return ClusterRouter(fleet, "least_loaded", clock=clock), fleet, clock


class TestClusterStreaming:
    def test_sessions_stick_and_reproduce_offline(self, artifacts):
        router, fleet, clock = make_stream_cluster(artifacts["gru_speech"])
        try:
            offline_server = ModelServer(workers=0)
            offline_server.load("gru", artifacts["gru_speech"])
            plan = offline_server.plan("gru")
            seqs = sequences_for(plan, 4)
            offline = [offline_output(plan, seq) for seq in seqs]
            offline_server.close()
            sids = [router.open_session("gru") for _ in seqs]
            owners = {sid: worker
                      for worker, owned in router.sessions().items()
                      for sid in owned}
            assert sorted(owners) == sorted(sids)
            futures = [[] for _ in sids]
            for start in range(0, 12, 3):
                for index, sid in enumerate(sids):
                    futures[index].append(router.submit_stream(
                        "gru", sid, seqs[index][start:start + 3]))
            router.drain()
            for index, sid in enumerate(sids):
                streamed = np.concatenate(
                    [f.result(timeout=0) for f in futures[index]], axis=0)
                assert np.array_equal(streamed, offline[index])
                # Every chunk of a session went to one worker.
                assert owners[sid] in router.sessions()
            assert router.close_session("gru", sids[0]) == 4
        finally:
            router.close()

    def test_worker_crash_fails_only_its_sessions(self, artifacts):
        clock = ManualClock()
        # w0's reply stream dies at frame 1: frame 0 answers the first
        # stream_open, so the kill lands on its first chunk response.
        fleet = [LocalWorker("w0", {"gru": artifacts["gru_speech"]},
                             clock=clock,
                             plan=FaultPlan().kill("to_router", 1)),
                 LocalWorker("w1", {"gru": artifacts["gru_speech"]},
                             clock=clock)]
        router = ClusterRouter(fleet, "least_loaded", clock=clock)
        try:
            rng = np.random.default_rng(9)
            chunk = rng.normal(size=(3, 13)).astype(np.float32)
            doomed = router.open_session("gru")           # idle -> w0
            doomed_chunk = router.submit_stream("gru", doomed, chunk)
            # w0 now has a stream request in flight, so least_loaded
            # places the second session on w1.
            safe = router.open_session("gru")
            safe_chunk = router.submit_stream("gru", safe, chunk)
            owners = {sid: worker
                      for worker, owned in router.sessions().items()
                      for sid in owned}
            assert owners == {doomed: "w0", safe: "w1"}
            router.drain()
            with pytest.raises(SessionError) as info:
                doomed_chunk.result(timeout=0)
            assert info.value.code == "session-lost"
            assert safe_chunk.result(timeout=0).shape == (3, 12)
            # The lost session stays distinguishable from one that never
            # existed: typed session-lost, not unknown-session.
            replay = router.submit_stream("gru", doomed, chunk)
            with pytest.raises(SessionError) as info:
                replay.result(timeout=0)
            assert info.value.code == "session-lost"
            ghost = router.submit_stream("gru", "never-opened", chunk)
            with pytest.raises(SessionError) as info:
                ghost.result(timeout=0)
            assert info.value.code == "unknown-session"
        finally:
            router.close()

    def test_rolling_restart_migrates_sessions_bit_exactly(self,
                                                           artifacts):
        router, fleet, clock = make_stream_cluster(artifacts["gru_speech"])
        try:
            offline_server = ModelServer(workers=0)
            offline_server.load("gru", artifacts["gru_speech"])
            plan = offline_server.plan("gru")
            seqs = sequences_for(plan, 4, seed=21)
            offline = [offline_output(plan, seq) for seq in seqs]
            offline_server.close()
            sids = [router.open_session("gru") for _ in seqs]
            futures = [[router.submit_stream("gru", sid, seqs[i][:6])]
                       for i, sid in enumerate(sids)]
            router.drain()
            router.rolling_restart()
            # Every session survived the restart with its state intact.
            survivors = {sid for owned in router.sessions().values()
                         for sid in owned}
            assert survivors == set(sids)
            for i, sid in enumerate(sids):
                futures[i].append(
                    router.submit_stream("gru", sid, seqs[i][6:]))
            router.drain()
            for i, sid in enumerate(sids):
                streamed = np.concatenate(
                    [f.result(timeout=0) for f in futures[i]], axis=0)
                assert np.array_equal(streamed, offline[i])
        finally:
            router.close()

    def test_cluster_stats_sum_sessions_across_workers(self, artifacts):
        router, fleet, clock = make_stream_cluster(artifacts["gru_speech"])
        try:
            sids = [router.open_session("gru") for _ in range(3)]
            rng = np.random.default_rng(2)
            for sid in sids:
                router.submit_stream(
                    "gru", sid, rng.normal(size=(3, 13)).astype(np.float32))
            router.drain()
            merged = router.stats()["gru"]
            assert merged.active_sessions == 3
            assert merged.stream_chunks == 3
            assert merged.session_bytes > 0
        finally:
            router.close()


# ----------------------------------------------------------------------
# State batching helpers keep per-session layout
# ----------------------------------------------------------------------
class TestStateBatching:
    def test_stack_unstack_round_trip(self):
        rng = np.random.default_rng(0)
        states = []
        for _ in range(3):
            states.append({
                1: {"h": [rng.normal(size=(8,)).astype(np.float32)
                          for _ in range(2)],
                    "c": [rng.normal(size=(8,)).astype(np.float32)
                          for _ in range(2)]},
            })
        stacked = stack_states(states)
        assert stacked[1]["h"][0].shape == (3, 8)
        for index, original in enumerate(states):
            back = unstack_state(stacked, index)
            for layer in range(2):
                assert np.array_equal(back[1]["h"][layer],
                                      original[1]["h"][layer])
                assert np.array_equal(back[1]["c"][layer],
                                      original[1]["c"][layer])


# ----------------------------------------------------------------------
# Meta: determinism — nothing in this file sleeps
# ----------------------------------------------------------------------
class TestNoSleeps:
    def test_no_time_sleep_in_this_file(self):
        source = pathlib.Path(__file__).read_text()
        assert not re.search(r"time\.sleep", source.replace(
            "time_dot_sleep", ""))
