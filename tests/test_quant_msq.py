"""Mixed-scheme quantizer (the paper's core algorithm)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.quant import (
    MixedSchemeQuantizer,
    PartitionRatio,
    Scheme,
    SchemeQuantizer,
    partition_rows,
    project_to_levels,
)
from repro.quant.partition import to_gemm_matrix
from repro.quant.schemes import fixed_point_levels, sp2_levels


class TestRatioCoercion:
    def test_string(self):
        assert MixedSchemeQuantizer(ratio="2:1").sp2_fraction == pytest.approx(2 / 3)

    def test_float(self):
        assert MixedSchemeQuantizer(ratio=0.6).sp2_fraction == pytest.approx(0.6)

    def test_partition_ratio_object(self):
        q = MixedSchemeQuantizer(ratio=PartitionRatio(3, 2))
        assert q.sp2_fraction == pytest.approx(0.6)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            MixedSchemeQuantizer(ratio=1.5)
        with pytest.raises(ConfigurationError):
            MixedSchemeQuantizer(alpha_granularity="channel")


class TestQuantization:
    def test_row_assignment_respected(self, rng):
        w = rng.normal(0, 0.2, size=(12, 32))
        quantizer = MixedSchemeQuantizer(bits=4, ratio="1:1")
        result = quantizer.quantize(w)
        matrix = to_gemm_matrix(result.values)
        sp2 = sp2_levels(4)
        fixed = fixed_point_levels(4)
        for row in range(12):
            unit = matrix[row] / result.row_alphas[row]
            levels = sp2 if result.partition.sp2_mask[row] else fixed
            assert np.allclose(unit, project_to_levels(unit, levels),
                               atol=1e-9)

    def test_sp2_fraction_achieved(self, rng):
        w = rng.normal(size=(30, 16))
        result = MixedSchemeQuantizer(bits=4, ratio="2:1").quantize(w)
        assert result.partition.num_sp2 == 20

    def test_conv_shape_roundtrip(self, rng):
        w = rng.normal(size=(16, 8, 3, 3))
        result = MixedSchemeQuantizer(bits=4, ratio="1:1").quantize(w)
        assert result.values.shape == w.shape

    def test_external_partition_reused(self, rng):
        w = rng.normal(size=(10, 8))
        partition = partition_rows(w, 0.5)
        quantizer = MixedSchemeQuantizer(bits=4, ratio="1:1")
        result = quantizer.quantize(w, partition=partition)
        assert np.array_equal(result.partition.sp2_mask, partition.sp2_mask)

    def test_partition_size_mismatch(self, rng):
        partition = partition_rows(rng.normal(size=(4, 8)), 0.5)
        with pytest.raises(ConfigurationError):
            MixedSchemeQuantizer().quantize(rng.normal(size=(10, 8)),
                                            partition=partition)

    def test_extreme_ratios_degenerate_to_single_scheme(self, rng):
        w = rng.normal(0, 0.2, size=(8, 64))
        all_fixed = MixedSchemeQuantizer(bits=4, ratio=0.0).quantize(w)
        reference = np.stack([
            SchemeQuantizer(Scheme.FIXED, 4).quantize(w[i]).values
            for i in range(8)])
        assert np.allclose(all_fixed.values, reference, atol=1e-12)

    def test_layer_alpha_granularity(self, rng):
        w = rng.normal(0, 0.2, size=(8, 32))
        result = MixedSchemeQuantizer(bits=4, ratio="1:1",
                                      alpha_granularity="layer").quantize(w)
        sp2_alphas = result.row_alphas[result.partition.sp2_mask]
        fixed_alphas = result.row_alphas[~result.partition.sp2_mask]
        assert np.allclose(sp2_alphas, sp2_alphas[0])
        assert np.allclose(fixed_alphas, fixed_alphas[0])

    def test_row_alpha_granularity_varies(self, rng):
        w = rng.normal(size=(8, 32)) * rng.uniform(0.5, 2.0, size=(8, 1))
        result = MixedSchemeQuantizer(bits=4, ratio="1:1").quantize(w)
        assert len(np.unique(np.round(result.row_alphas, 9))) > 1

    def test_mse_between_pure_schemes(self, rng):
        """MSQ error should not exceed the worse of the two pure schemes."""
        w = rng.normal(0, 0.2, size=(16, 64))
        def mse(values):
            return float(np.mean((w - values) ** 2))

        msq = mse(MixedSchemeQuantizer(bits=4, ratio="1:1").quantize(w).values)
        pure = []
        for scheme in (Scheme.FIXED, Scheme.SP2):
            quantized = np.stack([
                SchemeQuantizer(scheme, 4).quantize(w[i]).values
                for i in range(16)])
            pure.append(mse(quantized))
        assert msq <= max(pure) + 1e-12


class TestHardwareEncoding:
    def test_encoding_partitions_rows(self, rng):
        w = rng.normal(0, 0.2, size=(12, 16))
        result = MixedSchemeQuantizer(bits=4, ratio="2:1").quantize(w)
        enc = result.hardware_encoding()
        together = np.sort(np.concatenate([enc["fixed_rows"],
                                           enc["sp2_rows"]]))
        assert np.array_equal(together, np.arange(12))

    def test_encoding_decodes_back(self, rng):
        from repro.quant.encoding import decode_sp2, decode_fixed

        w = rng.normal(0, 0.2, size=(10, 16))
        result = MixedSchemeQuantizer(bits=4, ratio="1:1").quantize(w)
        enc = result.hardware_encoding()
        matrix = to_gemm_matrix(result.values)
        fixed_back = decode_fixed(enc["fixed_codes"], 4)
        for local, row in enumerate(enc["fixed_rows"]):
            assert np.allclose(fixed_back[local] * result.row_alphas[row],
                               matrix[row], atol=1e-12)
        sp2_back = decode_sp2(enc["sp2_codes"])
        for local, row in enumerate(enc["sp2_rows"]):
            assert np.allclose(sp2_back[local] * result.row_alphas[row],
                               matrix[row], atol=1e-12)

    def test_repr_mentions_ratio(self):
        assert "2:1" in repr(MixedSchemeQuantizer(bits=4, ratio="2:1"))
