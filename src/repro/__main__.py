"""``python -m repro`` dispatches to the unified CLI, :mod:`repro.api.cli`
(``quantize | export | serve | experiment | registry``)."""

import sys

from repro.api.cli import main

if __name__ == "__main__":
    sys.exit(main())
