"""Candidate pricing: hardware cost model + pluggable accuracy proxy.

One :class:`CostModel` prices every candidate the strategies propose:

- **hardware** — :func:`repro.fpga.resources.design_utilization` /
  :func:`check_fits` for feasibility (all budgets <= 100% *and* the §VI-A
  routability LUT cap) and :func:`repro.fpga.accelerator.simulate_network`
  for latency/throughput. All latencies are **milliseconds** (the
  stack-wide convention, see :mod:`repro.fpga.accelerator`).
- **accuracy** — a pluggable proxy registered via
  :func:`register_accuracy_proxy`. The default ``"mse"`` proxy is the
  layerwise quantization MSE of projecting the model's weights at the
  candidate's ratio/bits (cheap, no forward passes); ``"calibration"``
  runs the quantized model on calibration batches and scores the output
  error; ``"gaussian"`` needs no model at all (a fixed synthetic Gaussian
  sample — the paper's Fig. 3 weight-distribution argument).

Proxy values are *lower-is-better* and comparable only within one tune
run — they rank candidates, they are not accuracy predictions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.fpga.accelerator import simulate_network
from repro.fpga.devices import get_device
from repro.fpga.gemm import GemmWorkload
from repro.fpga.resources import design_utilization
from repro.autotune.space import Candidate

# ----------------------------------------------------------------------
# Accuracy-proxy registry
# ----------------------------------------------------------------------
_PROXIES: Dict[str, Callable] = {}


def register_accuracy_proxy(name: str) -> Callable:
    """Register a proxy factory: ``factory(model, calibration, seed)`` ->
    ``proxy(candidate) -> float`` (lower is better)."""

    def decorate(factory: Callable) -> Callable:
        _PROXIES[name] = factory
        return factory

    return decorate


def get_accuracy_proxy(name: str, model=None, calibration=None,
                       seed: int = 0) -> Callable:
    if name not in _PROXIES:
        raise ConfigurationError(
            f"unknown accuracy proxy {name!r}; "
            f"available: {sorted(_PROXIES)}")
    return _PROXIES[name](model=model, calibration=calibration, seed=seed)


def list_accuracy_proxies() -> Dict[str, str]:
    return {name: (factory.__doc__ or "").strip().splitlines()[0]
            for name, factory in sorted(_PROXIES.items())}


def _quantize_mse(weights: Sequence, bits: int, ratio) -> float:
    """Size-weighted mean quantization MSE of projecting ``weights``."""
    from repro.api.registry import get_scheme
    from repro.quant.quantizers import quantization_mse

    quantizer = get_scheme("msq").make(bits, ratio=ratio)
    total_error = 0.0
    total_size = 0
    for weight in weights:
        weight = np.asarray(weight, dtype=np.float64)
        result = quantizer.quantize(weight)
        total_error += quantization_mse(weight, result) * weight.size
        total_size += weight.size
    return total_error / total_size if total_size else 0.0


@register_accuracy_proxy("mse")
def layerwise_mse_proxy(model=None, calibration=None, seed: int = 0):
    """Layerwise quantization MSE of the model's weights (the default)."""
    from repro.quant.admm import collect_quantizable

    if model is None:
        raise ConfigurationError(
            "the 'mse' accuracy proxy needs a model; pass model= or use "
            "accuracy='gaussian' for hardware-only tuning")
    weights = [np.array(param.data, dtype=np.float64, copy=True)
               for _, param in collect_quantizable(model)]
    cache: Dict[tuple, float] = {}

    def proxy(candidate: Candidate) -> float:
        key = (candidate.weight_bits, candidate.block_out_sp2,
               candidate.block_out_fixed)
        if key not in cache:
            cache[key] = _quantize_mse(weights, candidate.weight_bits,
                                       candidate.ratio)
        return cache[key]

    return proxy


@register_accuracy_proxy("gaussian")
def gaussian_mse_proxy(model=None, calibration=None, seed: int = 0):
    """Quantization MSE of a fixed synthetic Gaussian sample (no model)."""
    sample = np.random.default_rng(seed).normal(size=(64, 64)) * 0.05
    cache: Dict[tuple, float] = {}

    def proxy(candidate: Candidate) -> float:
        key = (candidate.weight_bits, candidate.block_out_sp2,
               candidate.block_out_fixed)
        if key not in cache:
            cache[key] = _quantize_mse([sample], candidate.weight_bits,
                                       candidate.ratio)
        return cache[key]

    return proxy


@register_accuracy_proxy("calibration")
def calibration_eval_proxy(model=None, calibration=None, seed: int = 0):
    """Output MSE of the weight-quantized model on calibration batches."""
    from repro.quant.admm import collect_quantizable
    from repro.serve.export import eager_forward

    if model is None or not calibration:
        raise ConfigurationError(
            "the 'calibration' accuracy proxy needs model= and "
            "calibration= batches")
    batches = [np.asarray(batch) for batch in calibration]
    params = list(collect_quantizable(model))
    originals = [np.array(param.data, copy=True) for _, param in params]
    reference = [eager_forward(model, batch) for batch in batches]
    cache: Dict[tuple, float] = {}

    def proxy(candidate: Candidate) -> float:
        from repro.api.registry import get_scheme

        key = (candidate.weight_bits, candidate.block_out_sp2,
               candidate.block_out_fixed)
        if key in cache:
            return cache[key]
        quantizer = get_scheme("msq").make(candidate.weight_bits,
                                           ratio=candidate.ratio)
        try:
            for (_, param), original in zip(params, originals):
                param.data = quantizer.quantize(
                    original.astype(np.float64)).values.astype(
                        original.dtype)
            errors = [float(np.mean((eager_forward(model, batch)
                                     - ref) ** 2))
                      for batch, ref in zip(batches, reference)]
        finally:
            for (_, param), original in zip(params, originals):
                param.data = np.array(original, copy=True)
        cache[key] = float(np.mean(errors))
        return cache[key]

    return proxy


# ----------------------------------------------------------------------
# Evaluation record
# ----------------------------------------------------------------------
@dataclass
class CandidateEvaluation:
    """Priced candidate: hardware metrics + accuracy proxy + feasibility.

    ``latency_ms`` is the simulated accelerator time of one serving
    micro-batch (milliseconds); ``latency_ms_per_request`` divides by the
    micro-batch size. ``fits`` requires every resource <= 100% *and* LUT
    under the routability cap — the same constraints the §VI-A
    characterization walk enforces.
    """

    candidate: Candidate
    fits: bool
    utilization: Dict[str, float]
    latency_ms: float
    latency_ms_per_request: float
    throughput_gops: float
    requests_per_second: float
    peak_gops: float
    accuracy_proxy: float
    proxy_name: str
    from_cache: bool = False
    # Per-stage breakdown of a pipeline-partitioned candidate (empty for
    # single-device points): stage index, device, simulated stage ms,
    # outgoing transfer ms, cut node, utilization, fits.
    stages: List[Dict[str, object]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "candidate": self.candidate.as_dict(),
            "fits": self.fits,
            "utilization": dict(self.utilization),
            "latency_ms": self.latency_ms,
            "latency_ms_per_request": self.latency_ms_per_request,
            "throughput_gops": self.throughput_gops,
            "requests_per_second": self.requests_per_second,
            "peak_gops": self.peak_gops,
            "accuracy_proxy": self.accuracy_proxy,
            "proxy_name": self.proxy_name,
            "stages": [dict(stage) for stage in self.stages],
        }

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "CandidateEvaluation":
        record = dict(record)
        candidate = Candidate.from_dict(record.pop("candidate"))
        return cls(candidate=candidate, **record)


class CostModel:
    """Price candidates on one device for one workload set.

    ``workloads_fn(serve_batch)`` returns the GEMM workload list of one
    micro-batch (``ExecutionPlan.workloads`` for a deployed model;
    :func:`scale_workloads` for a static per-request list).
    """

    def __init__(self, workloads_fn: Callable[[int], List[GemmWorkload]],
                 lut_cap: float = 0.80,
                 accuracy_proxy: Optional[Callable] = None,
                 proxy_name: str = "none",
                 sim_kwargs: Optional[dict] = None):
        self.workloads_fn = workloads_fn
        self.lut_cap = lut_cap
        self.accuracy_proxy = accuracy_proxy
        self.proxy_name = proxy_name
        self.sim_kwargs = dict(sim_kwargs or {})
        self.evaluations = 0

    def evaluate(self, candidate: Candidate) -> CandidateEvaluation:
        from repro.fpga.resources import peak_throughput_gops

        self.evaluations += 1
        design = candidate.design()
        util = design_utilization(design)
        fits = (all(value <= 1.0 + 1e-9 for value in util.values())
                and util["lut"] <= self.lut_cap + 1e-9)
        performance = simulate_network(
            self.workloads_fn(candidate.serve_batch), design,
            **self.sim_kwargs)
        latency_ms = performance.latency_ms
        per_request = latency_ms / candidate.serve_batch
        proxy = (self.accuracy_proxy(candidate)
                 if self.accuracy_proxy is not None else 0.0)
        return CandidateEvaluation(
            candidate=candidate,
            fits=fits,
            utilization={name: float(value)
                         for name, value in util.items()},
            latency_ms=float(latency_ms),
            latency_ms_per_request=float(per_request),
            throughput_gops=float(performance.throughput_gops),
            requests_per_second=float(1000.0 / per_request),
            peak_gops=float(peak_throughput_gops(design)),
            accuracy_proxy=float(proxy),
            proxy_name=self.proxy_name,
        )


class PipelineCostModel(CostModel):
    """Pipeline-aware pricing: a candidate with ``cuts`` is a chain of
    stage accelerators, and the objective is the **max-stage** latency
    (the pipelined steady-state interval), with inter-stage transfer
    priced from the cut activation's bytes.

    ``stage_workloads_fn(cuts, serve_batch)`` returns the per-stage GEMM
    workload lists and ``transfer_bytes_fn(cuts)`` the per-request bytes
    crossing each cut (see :mod:`repro.serve.partition.splitter`).
    ``stage_devices`` optionally maps stages onto a heterogeneous fleet
    (entry ``k`` is stage ``k``'s device catalog name, cycled if
    shorter); by default every stage replicates the candidate's device.
    A candidate with no cuts prices exactly like :class:`CostModel`.

    Feasibility is per stage: the plan is rejected (``fits=False``)
    whenever **any** stage's design overflows its device or the LUT
    routability cap — the same ``check_fits`` contract, applied to every
    device in the chain.
    """

    def __init__(self, workloads_fn: Callable[[int], List[GemmWorkload]],
                 *,
                 stage_workloads_fn: Callable[..., List[List[GemmWorkload]]],
                 transfer_bytes_fn: Callable[[Sequence[int]], List[int]],
                 cut_names_fn: Optional[Callable] = None,
                 stage_devices: Optional[Sequence[str]] = None,
                 dram_gbps: float = 4.0,
                 lut_cap: float = 0.80,
                 accuracy_proxy: Optional[Callable] = None,
                 proxy_name: str = "none",
                 sim_kwargs: Optional[dict] = None):
        super().__init__(workloads_fn, lut_cap=lut_cap,
                         accuracy_proxy=accuracy_proxy,
                         proxy_name=proxy_name, sim_kwargs=sim_kwargs)
        self.stage_workloads_fn = stage_workloads_fn
        self.transfer_bytes_fn = transfer_bytes_fn
        self.cut_names_fn = cut_names_fn
        self.stage_devices = tuple(stage_devices) if stage_devices else None
        if dram_gbps <= 0:
            raise ConfigurationError(
                f"dram_gbps must be > 0, got {dram_gbps}")
        self.dram_gbps = float(dram_gbps)

    def _stage_design(self, base_design, index: int):
        if not self.stage_devices:
            return base_design
        name = self.stage_devices[index % len(self.stage_devices)]
        device = get_device(name)
        return replace(base_design, device=device,
                       name=f"tuned:{device.name}")

    def evaluate(self, candidate: Candidate) -> CandidateEvaluation:
        from repro.fpga.resources import peak_throughput_gops

        if not candidate.cuts:
            return super().evaluate(candidate)
        self.evaluations += 1
        base_design = candidate.design()
        stage_workloads = self.stage_workloads_fn(candidate.cuts,
                                                  candidate.serve_batch)
        transfer = self.transfer_bytes_fn(candidate.cuts)
        cut_names = (list(self.cut_names_fn(candidate.cuts))
                     if self.cut_names_fn is not None
                     else [f"op{i}" for i in candidate.cuts])
        num_stages = len(stage_workloads)
        fits = True
        worst_util: Dict[str, float] = {}
        stage_rows: List[Dict[str, object]] = []
        bottleneck_ms = 0.0
        work_gop_ms = 0.0
        peak = 0.0
        for index, workloads in enumerate(stage_workloads):
            design = self._stage_design(base_design, index)
            util = design_utilization(design)
            stage_fits = (all(v <= 1.0 + 1e-9 for v in util.values())
                          and util["lut"] <= self.lut_cap + 1e-9)
            fits = fits and stage_fits
            for name, value in util.items():
                worst_util[name] = max(worst_util.get(name, 0.0),
                                       float(value))
            performance = simulate_network(workloads, design,
                                           **self.sim_kwargs)
            stage_ms = performance.latency_ms
            transfer_ms = 0.0
            if index < num_stages - 1:
                # The cut activation leaves over the inter-stage link
                # once per request in the micro-batch.
                transfer_ms = (transfer[index] * candidate.serve_batch
                               / (self.dram_gbps * 1e9) * 1e3)
            bottleneck_ms = max(bottleneck_ms, stage_ms + transfer_ms)
            work_gop_ms += performance.throughput_gops * stage_ms
            peak += peak_throughput_gops(design)
            stage_rows.append({
                "stage": index,
                "device": design.device.name,
                "latency_ms": float(stage_ms),
                "transfer_ms": float(transfer_ms),
                "cut": cut_names[index] if index < len(cut_names) else "",
                "utilization": {name: float(value)
                                for name, value in util.items()},
                "fits": stage_fits,
            })
        per_request = bottleneck_ms / candidate.serve_batch
        proxy = (self.accuracy_proxy(candidate)
                 if self.accuracy_proxy is not None else 0.0)
        return CandidateEvaluation(
            candidate=candidate,
            fits=fits,
            utilization=worst_util,
            latency_ms=float(bottleneck_ms),
            latency_ms_per_request=float(per_request),
            throughput_gops=float(work_gop_ms / bottleneck_ms
                                  if bottleneck_ms else 0.0),
            requests_per_second=float(1000.0 / per_request
                                      if per_request else 0.0),
            peak_gops=float(peak),
            accuracy_proxy=float(proxy),
            proxy_name=self.proxy_name,
            stages=stage_rows,
        )


def scale_workloads(workloads: Sequence[GemmWorkload],
                    batch: int) -> List[GemmWorkload]:
    """Per-request workloads scaled to a serving micro-batch.

    Batched requests fill additional output-position lanes, so ``columns``
    scales with the micro-batch size — the same rule
    ``serve.ir.Graph.workloads`` applies.
    """
    if batch == 1:
        return list(workloads)
    return [GemmWorkload(name=w.name, rows=w.rows, reduction=w.reduction,
                         kernel_positions=w.kernel_positions,
                         columns=w.columns * batch,
                         sequential_columns=w.sequential_columns,
                         groups=w.groups)
            for w in workloads]
