"""The tuner: hardware-aware design-space exploration, end to end.

:func:`tune` closes the paper's co-design loop automatically: given a
model (or a raw workload list), a target device and an objective, it
searches over per-layer SP2:fixed ratios, weight bits, ``GemmDesign``
block shapes, serving batch size and kernel backend — pricing every
candidate with the calibrated FPGA cost models and a pluggable accuracy
proxy — and returns a ranked :class:`TuneResult` whose best candidate is
directly deployable (``result.config()`` is a ready-to-run
``PipelineConfig`` carrying the tuned ``GemmDesign``).

Determinism contract: with a fixed ``seed`` the search trajectory, the
Pareto frontier and the chosen design are identical run to run (no
wall-clock anywhere in the scoring path), which is what lets the rewired
Table VII experiment *assert* that the tuner rediscovers the paper's
published design points.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from math import ceil
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.fpga.devices import get_device
from repro.fpga.gemm import GemmWorkload
from repro.fpga.report import format_table
from repro.fpga.resources import GemmDesign
from repro.autotune.cache import (
    EvalCache,
    evaluation_key,
    model_fingerprint,
    workload_fingerprint,
)
from repro.autotune.cost import (
    CandidateEvaluation,
    CostModel,
    PipelineCostModel,
    get_accuracy_proxy,
    scale_workloads,
)
from repro.autotune.space import Candidate, SearchSpace
from repro.autotune.strategies import get_strategy

OBJECTIVES = ("latency", "throughput", "pareto")


# ----------------------------------------------------------------------
# Objective ordering + Pareto dominance
# ----------------------------------------------------------------------
def _objective_key(objective: str) -> Callable[[CandidateEvaluation], tuple]:
    """Total order over evaluations: feasible first, then the objective,
    then accuracy proxy, then the candidate key (deterministic ties)."""

    def key(evaluation: CandidateEvaluation) -> tuple:
        primary = (evaluation.latency_ms_per_request
                   if objective in ("latency", "pareto")
                   else -evaluation.requests_per_second)
        return (0 if evaluation.fits else 1, primary,
                evaluation.accuracy_proxy, evaluation.candidate.key())

    return key


def pareto_frontier(evaluations: Sequence[CandidateEvaluation]
                    ) -> List[CandidateEvaluation]:
    """Non-dominated feasible candidates, minimizing
    (latency/request, accuracy proxy); sorted by latency."""
    feasible = [e for e in evaluations if e.fits]
    frontier = []
    for candidate in feasible:
        dominated = any(
            other is not candidate
            and other.latency_ms_per_request <= candidate.latency_ms_per_request
            and other.accuracy_proxy <= candidate.accuracy_proxy
            and (other.latency_ms_per_request < candidate.latency_ms_per_request
                 or other.accuracy_proxy < candidate.accuracy_proxy)
            for other in feasible)
        if not dominated:
            frontier.append(candidate)
    # Identical metric pairs can survive together; keep one per metric
    # point (first in deterministic key order).
    frontier.sort(key=lambda e: (e.latency_ms_per_request,
                                 e.accuracy_proxy, e.candidate.key()))
    deduped: List[CandidateEvaluation] = []
    for evaluation in frontier:
        if deduped and (deduped[-1].latency_ms_per_request,
                        deduped[-1].accuracy_proxy) == (
                            evaluation.latency_ms_per_request,
                            evaluation.accuracy_proxy):
            continue
        deduped.append(evaluation)
    return deduped


class Evaluator:
    """Budgeted, cached, deduplicating front of the cost model.

    The object handed to strategies: owns the unique-candidate budget, the
    persistent cache and the objective ordering. Repeated candidates are
    answered from the in-run table without consuming budget.
    """

    def __init__(self, cost_model: CostModel, cache: EvalCache,
                 context: str, budget: int, objective: str):
        self.cost_model = cost_model
        self.cache = cache
        self.context = context
        self.remaining = int(budget)
        self.sort_key = _objective_key(objective)
        self.evaluations: Dict[str, CandidateEvaluation] = {}

    def evaluate(self, candidate: Candidate
                 ) -> Optional[CandidateEvaluation]:
        key = evaluation_key(candidate, self.context)
        if key in self.evaluations:
            return self.evaluations[key]
        if self.remaining <= 0:
            return None
        record = self.cache.get(key)
        if record is not None:
            evaluation = CandidateEvaluation.from_dict(record)
            evaluation.from_cache = True
        else:
            evaluation = self.cost_model.evaluate(candidate)
            self.cache.put(key, evaluation.to_dict())
        self.remaining -= 1
        self.evaluations[key] = evaluation
        return evaluation

    def ranked(self) -> List[CandidateEvaluation]:
        return sorted(self.evaluations.values(), key=self.sort_key)


# ----------------------------------------------------------------------
# Per-layer ratio refinement (§V-B-guarded)
# ----------------------------------------------------------------------
_REFINE_OFFSETS = (-0.2, -0.1, -0.05, 0.0, 0.05, 0.1, 0.2)


def _layer_tiles(rows: int, sp2_fraction: float, block_out_fixed: int,
                 block_out_sp2: int) -> int:
    """Output-tile count of one layer's row split (the slower core gates)."""
    rows_sp2 = int(round(rows * sp2_fraction))
    rows_fixed = rows - rows_sp2
    tiles_fixed = ceil(rows_fixed / block_out_fixed) if rows_fixed else 0
    tiles_sp2 = (ceil(rows_sp2 / block_out_sp2)
                 if rows_sp2 and block_out_sp2 else
                 (10 ** 9 if rows_sp2 else 0))
    return max(tiles_fixed, tiles_sp2)


def refine_layer_ratios(model, candidate: Candidate) -> Dict[str, float]:
    """Per-layer SP2 fractions around the design's PE ratio.

    For each quantizable layer, try small offsets from the hardware
    fraction and keep the one with the lowest quantization MSE, subject to
    the §V-B balance guard: the layer's output-tile count (the slower
    core's) must not exceed what the design fraction costs — an imbalanced
    split "may result in under-utilization of the certain GEMM core", so
    only latency-neutral refinements are accepted. Returns only the layers
    whose best fraction differs from the design fraction.
    """
    from repro.api.registry import get_scheme
    from repro.quant.admm import collect_quantizable
    from repro.quant.partition import to_gemm_matrix
    from repro.quant.quantizers import quantization_mse

    base = candidate.sp2_fraction
    overrides: Dict[str, float] = {}
    for name, param in collect_quantizable(model):
        weight = np.asarray(param.data, dtype=np.float64)
        rows = to_gemm_matrix(weight).shape[0]
        base_tiles = _layer_tiles(rows, base, candidate.block_out_fixed,
                                  candidate.block_out_sp2)
        best_fraction, best_mse = base, None
        for offset in _REFINE_OFFSETS:
            fraction = min(max(base + offset, 0.0), 1.0)
            if _layer_tiles(rows, fraction, candidate.block_out_fixed,
                            candidate.block_out_sp2) > base_tiles:
                continue
            quantizer = get_scheme("msq").make(candidate.weight_bits,
                                               ratio=fraction)
            mse = quantization_mse(weight, quantizer.quantize(weight))
            # Strict improvement required; ties keep the fraction closest
            # to the hardware ratio (offset 0.0 is evaluated first among
            # equals via the sorted offsets walk below).
            if best_mse is None or mse < best_mse - 1e-18 or (
                    abs(mse - best_mse) <= 1e-18
                    and abs(fraction - base) < abs(best_fraction - base)):
                best_fraction, best_mse = fraction, mse
        if abs(best_fraction - base) > 1e-12:
            overrides[name] = float(best_fraction)
    return overrides


# ----------------------------------------------------------------------
# Result handle
# ----------------------------------------------------------------------
@dataclass
class TuneResult:
    """Everything one tune run produced, ranked and deployable."""

    device: str
    objective: str
    strategy: str
    seed: int
    budget: int
    proxy: str
    evaluations: List[CandidateEvaluation]   # ranked, best first
    frontier: List[CandidateEvaluation]      # Pareto, by latency
    best: CandidateEvaluation
    layer_ratios: Dict[str, float] = field(default_factory=dict)
    cache_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def design(self) -> GemmDesign:
        """The winning accelerator design, ready for deployment."""
        return self.best.candidate.design()

    @property
    def backend(self) -> str:
        return self.best.candidate.backend

    def config(self, **overrides):
        """A ready-to-run :class:`~repro.api.config.PipelineConfig`."""
        from repro.api.config import PipelineConfig

        return PipelineConfig.from_tuning(self, **overrides)

    # ------------------------------------------------------------------
    def format_table(self, limit: Optional[int] = 10) -> str:
        """The frontier (and top candidates) as a plain-text table."""
        def rows_of(evaluations):
            return [[e.candidate.describe(),
                     e.candidate.ratio.describe(),
                     f"{e.latency_ms_per_request:.3f}",
                     f"{e.requests_per_second:.1f}",
                     f"{e.accuracy_proxy:.2e}",
                     f"{e.utilization['lut']:.0%}",
                     "yes" if e.fits else "NO"]
                    for e in evaluations]

        headers = ["candidate", "ratio", "ms/req", "req/s", "proxy",
                   "LUT", "fits"]
        out = [format_table(headers, rows_of(self.frontier),
                            title=f"Pareto frontier — {self.device} "
                                  f"({self.objective}, {self.strategy})")]
        ranked = self.evaluations[:limit] if limit else self.evaluations
        out.append(format_table(headers, rows_of(ranked),
                                title=f"Top candidates "
                                      f"({len(self.evaluations)} evaluated)"))
        if self.best.stages:
            design = self.best.candidate.design()
            geometry = (f"{design.batch}x{design.block_in}x"
                        f"{design.block_out_fixed}+{design.block_out_sp2}")
            stage_rows = [[str(row["stage"]),
                           str(row["device"]),
                           geometry,
                           str(row.get("cut") or "(sink)"),
                           f"{row['latency_ms']:.3f}",
                           f"{row['transfer_ms']:.3f}",
                           "yes" if row["fits"] else "NO"]
                          for row in self.best.stages]
            out.append(format_table(
                ["stage", "device", "geometry", "cut node", "stage ms",
                 "xfer ms", "fits"],
                stage_rows,
                title=f"Winning pipeline — {len(self.best.stages)} stages "
                      f"(bottleneck {self.best.latency_ms:.3f} ms)"))
        return "\n\n".join(out)

    def to_json(self) -> Dict[str, object]:
        """JSON-ready report (what ``repro tune --out`` writes)."""
        return {
            "device": self.device,
            "objective": self.objective,
            "strategy": self.strategy,
            "seed": self.seed,
            "budget": self.budget,
            "accuracy_proxy": self.proxy,
            "best": self.best.to_dict(),
            "frontier": [e.to_dict() for e in self.frontier],
            "evaluations": [e.to_dict() for e in self.evaluations],
            "layer_ratios": dict(self.layer_ratios),
            "cache": dict(self.cache_stats),
        }

    def save_report(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2)


# ----------------------------------------------------------------------
# Workload derivation
# ----------------------------------------------------------------------
def _graph_from_model(model, sample_input, layer_results=None):
    """Lower the model once; workload dims depend only on layer shapes.

    Returns the lowered graph itself (not just ``.workloads``) so the
    pipeline cost model can slice it at candidate cut points.
    """
    from repro.serve.export import build_artifact
    from repro.serve.ir import lower_artifact

    if sample_input is None:
        raise ConfigurationError(
            "tune() needs a sample input to derive the model's GEMM "
            "workloads; pass sample_input= (or workloads=)")
    artifact = build_artifact(model, np.asarray(sample_input),
                              layer_results=layer_results or {},
                              verify=False)
    return lower_artifact(artifact)


# ----------------------------------------------------------------------
# The front door
# ----------------------------------------------------------------------
def tune(model=None, *, device, workloads=None, objective: str = "latency",
         strategy: Optional[str] = None, budget: int = 64, seed: int = 0,
         cache=None, accuracy: Optional[str] = None, calibration=None,
         sample_input=None, layer_results=None,
         space: Optional[SearchSpace] = None,
         refine_layers: Optional[bool] = None,
         sim_kwargs: Optional[dict] = None,
         stage_devices: Optional[Sequence[str]] = None,
         **space_overrides) -> TuneResult:
    """Search quantization config x FPGA design for one model and device.

    Parameters
    ----------
    model:
        The model to tune for (weights feed the accuracy proxy, layer
        shapes the cost model). Omit it to tune hardware-only from an
        explicit ``workloads`` list.
    device:
        Catalog device name (``"XC7Z045"``, ``"zu3eg"``, ...) or
        :class:`~repro.fpga.devices.Device`.
    workloads:
        Per-request :class:`GemmWorkload` list (network-scale shape
        tables, e.g. ``repro.fpga.workloads.WORKLOADS``); derived from
        ``model`` + ``sample_input`` when omitted.
    objective:
        ``"latency"`` | ``"throughput"`` | ``"pareto"`` (latency vs.
        accuracy-proxy frontier; the frontier is reported for every
        objective, the objective decides the *ranking*).
    strategy:
        Registered strategy name; default picks ``"grid"`` when the space
        fits the budget, else ``"greedy"``.
    budget:
        Maximum number of *unique* candidates priced.
    cache:
        ``EvalCache``, path string, or ``None`` (in-memory only).
        Persistent caches make re-tunes incremental.
    accuracy:
        Proxy name (``"mse"`` | ``"calibration"`` | ``"gaussian"``).
        Default: ``"mse"`` with a model, ``"gaussian"`` without.
    refine_layers:
        Per-layer ratio refinement of the winner (default: on when a
        model is available).
    space / space_overrides:
        A prebuilt :class:`SearchSpace`, or keyword overrides for the
        default one (``batches=(1, 4)``, ``serve_batches=...``, ...).
        A ``cuts`` axis (tuples of IR op indices, ``()`` = no split)
        turns on the pipeline co-search: cut points x per-stage device x
        geometry x quant config, priced by :class:`PipelineCostModel`
        with max-stage latency as the objective, rejecting plans where
        any stage fails ``check_fits``. Needs ``model`` +
        ``sample_input`` (cut indices address the lowered IR).
    stage_devices:
        Device catalog names for pipeline stages (entry ``k`` hosts
        stage ``k``, cycled when shorter); default replicates ``device``
        on every stage. Only meaningful with a ``cuts`` axis.
    """
    if objective not in OBJECTIVES:
        raise ConfigurationError(
            f"unknown objective {objective!r}; use one of {OBJECTIVES}")
    device_name = device.name if hasattr(device, "name") \
        else get_device(device).name
    if space is None:
        space = SearchSpace(device=device_name, **space_overrides)
    elif space_overrides:
        raise ConfigurationError(
            "pass either space= or space overrides, not both")
    if space.device != device_name:
        raise ConfigurationError(
            f"space is for {space.device}, tune target is {device_name}")

    # Workload source ---------------------------------------------------
    graph = None
    if workloads is None:
        if model is None:
            raise ConfigurationError(
                "tune() needs a model (for workload derivation and the "
                "accuracy proxy) or an explicit workloads= list")
        graph = _graph_from_model(model, sample_input, layer_results)
        workloads_fn = graph.workloads
    elif callable(workloads):
        workloads_fn = workloads
    else:
        base = list(workloads)
        workloads_fn = lambda batch: scale_workloads(base, batch)  # noqa: E731

    pipelined = any(cuts for cuts in space.cuts) or bool(stage_devices)
    if pipelined and graph is None:
        raise ConfigurationError(
            "the pipeline co-search (a cuts axis or stage_devices=) needs "
            "the lowered model graph; pass model= and sample_input= "
            "instead of an explicit workloads= list")

    # Accuracy proxy ----------------------------------------------------
    proxy_name = accuracy if accuracy is not None else (
        "mse" if model is not None else "gaussian")
    proxy = get_accuracy_proxy(proxy_name, model=model,
                               calibration=calibration, seed=seed)

    # Cache + context fingerprint --------------------------------------
    # Everything that changes what evaluate() would compute must be in
    # the context: device, proxy, workload dims, model weights, the
    # feasibility cap and simulator overrides — a cached record is only
    # reused when it would be recomputed identically.
    if not isinstance(cache, EvalCache):
        cache = EvalCache(cache)
    context_parts = [
        device_name, proxy_name,
        f"lut_cap={space.lut_cap:g}",
        "sim=" + json.dumps(sim_kwargs or {}, sort_keys=True, default=str),
        workload_fingerprint(workloads_fn(1)),
        model_fingerprint(model) if model is not None else "no-model",
    ]
    if stage_devices:
        context_parts.append(
            "stages=" + ",".join(get_device(name).name
                                 for name in stage_devices))
    context = "|".join(context_parts)

    if pipelined:
        from repro.serve.partition.splitter import (
            cut_names, stage_workloads, transfer_bytes)

        cost_model = PipelineCostModel(
            workloads_fn,
            stage_workloads_fn=lambda cuts, batch: stage_workloads(
                graph, cuts, batch=batch),
            transfer_bytes_fn=lambda cuts: transfer_bytes(graph, cuts),
            cut_names_fn=lambda cuts: cut_names(graph, cuts),
            stage_devices=stage_devices,
            lut_cap=space.lut_cap, accuracy_proxy=proxy,
            proxy_name=proxy_name, sim_kwargs=sim_kwargs)
    else:
        cost_model = CostModel(workloads_fn, lut_cap=space.lut_cap,
                               accuracy_proxy=proxy, proxy_name=proxy_name,
                               sim_kwargs=sim_kwargs)
    evaluator = Evaluator(cost_model, cache, context, budget, objective)

    # Search ------------------------------------------------------------
    if strategy is None:
        strategy = "grid" if space.size <= budget else "greedy"
    rng = np.random.default_rng(seed)
    get_strategy(strategy)(space, evaluator, rng)
    cache.save()

    ranked = evaluator.ranked()
    if not ranked:
        raise ConfigurationError("the search evaluated no candidates "
                                 "(budget must be >= 1)")
    frontier = pareto_frontier(ranked)
    if not frontier:
        worst = ranked[0]
        breakdown = ", ".join(f"{k.upper()} {v:.1%}"
                              for k, v in worst.utilization.items())
        raise ConfigurationError(
            f"no feasible design for {device_name} within the search "
            f"space (closest: {worst.candidate.describe()} at {breakdown})")
    best = ranked[0]

    # Per-layer refinement ---------------------------------------------
    if refine_layers is None:
        refine_layers = model is not None
    layer_ratios = (refine_layer_ratios(model, best.candidate)
                    if refine_layers and model is not None else {})

    return TuneResult(
        device=device_name, objective=objective, strategy=strategy,
        seed=seed, budget=budget, proxy=proxy_name,
        evaluations=ranked, frontier=frontier, best=best,
        layer_ratios=layer_ratios, cache_stats=dict(cache.stats))
