"""Search strategies behind the ``@register_strategy`` registry.

A strategy decides *which* candidates to price; the evaluator handed to it
owns budget accounting, deduplication, the persistent cache and the
objective ordering. The contract:

- ``evaluator.evaluate(candidate)`` prices one candidate (or returns the
  existing evaluation for a repeat, consuming no budget) and returns
  ``None`` once the budget is exhausted — strategies just stop then;
- ``evaluator.remaining`` is the unused budget;
- ``evaluator.sort_key(evaluation)`` is the objective ordering (lower is
  better; infeasible candidates always rank last) — what greedy descent
  and evolutionary selection optimize.

Three built-ins cover the space-size regimes:

- ``grid`` — exhaustive enumeration, the right tool for small spaces;
- ``greedy`` — resource-guided hill climbing seeded from the device's
  §VI-A characterization optimum (the Fig.-2 ratio), the paper's own
  walk generalized to every axis;
- ``random`` (alias ``evolutionary``) — seeded random sampling plus
  mutation of the elite, for spaces too big to enumerate.

Writing a new strategy is one function + one decorator; see
``docs/architecture.md`` ("writing a new search strategy").
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError

_STRATEGIES: Dict[str, "StrategyEntry"] = {}


class StrategyEntry:
    """One registered search strategy."""

    def __init__(self, name: str, func: Callable, description: str):
        self.name = name
        self.func = func
        self.description = description

    def __call__(self, space, evaluator, rng):
        return self.func(space, evaluator, rng)


def register_strategy(name: str, description: str = "",
                      aliases: tuple = ()) -> Callable:
    """Decorator registering a search strategy under ``name``."""

    def decorate(func: Callable) -> Callable:
        entry = StrategyEntry(name, func, description
                              or (func.__doc__ or "").strip().splitlines()[0])
        _STRATEGIES[name] = entry
        for alias in aliases:
            _STRATEGIES[alias] = entry
        return func

    return decorate


def get_strategy(name: str) -> StrategyEntry:
    if name not in _STRATEGIES:
        raise ConfigurationError(
            f"unknown search strategy {name!r}; "
            f"available: {sorted(_STRATEGIES)}")
    return _STRATEGIES[name]


def list_strategies() -> Dict[str, str]:
    """Canonical name -> description (aliases folded in)."""
    return {entry.name: entry.description
            for entry in {id(e): e for e in _STRATEGIES.values()}.values()}


# ----------------------------------------------------------------------
# Built-in strategies
# ----------------------------------------------------------------------
@register_strategy("grid", "exhaustive enumeration (small spaces)")
def grid_search(space, evaluator, rng) -> None:
    """Evaluate the whole grid in deterministic order, budget permitting."""
    for candidate in space.candidates():
        if evaluator.evaluate(candidate) is None:
            return


@register_strategy("greedy",
                   "resource-guided hill climb from the Fig.-2 ratio seed")
def greedy_search(space, evaluator, rng) -> None:
    """Hill-climb from the device's characterization optimum.

    Seeds every (batch, bits) geometry at the ratio the §VI-A walk picks
    for the device, then repeatedly moves to the best improving neighbor
    (single-field moves) until a local optimum or budget exhaustion.
    """
    best = None
    for seed in space.seed_candidates():
        evaluation = evaluator.evaluate(seed)
        if evaluation is None:
            return
        if best is None or evaluator.sort_key(evaluation) \
                < evaluator.sort_key(best):
            best = evaluation
    while best is not None and evaluator.remaining > 0:
        improved = None
        for neighbor in space.neighbors(best.candidate):
            evaluation = evaluator.evaluate(neighbor)
            if evaluation is None:
                return
            if evaluator.sort_key(evaluation) < evaluator.sort_key(
                    improved if improved is not None else best):
                improved = evaluation
        if improved is None:
            return          # local optimum
        best = improved


@register_strategy("random",
                   "seeded random sampling + elite mutation (large spaces)",
                   aliases=("evolutionary",))
def random_search(space, evaluator, rng) -> None:
    """Random population, then evolutionary refinement of the elite.

    Half the budget samples the space uniformly; the rest mutates the
    current elite (best quartile) one field at a time. Fully determined
    by the tuner's seed.
    """
    population: List = []
    sample_budget = max(evaluator.remaining // 2, 1)
    for _ in range(sample_budget):
        evaluation = evaluator.evaluate(space.random_candidate(rng))
        if evaluation is None:
            return
        population.append(evaluation)
    # Repeats cost no budget, so bound total attempts too — a small space
    # can be exhausted with budget left over.
    attempts = 0
    max_attempts = evaluator.remaining * 4 + 16
    while evaluator.remaining > 0 and population and attempts < max_attempts:
        attempts += 1
        population.sort(key=evaluator.sort_key)
        elite = population[:max(len(population) // 4, 1)]
        parent = elite[int(rng.integers(len(elite)))]
        child = space.mutate(parent.candidate, rng)
        evaluation = evaluator.evaluate(child)
        if evaluation is None:
            return
        population.append(evaluation)
