"""Hardware-aware design-space exploration (the paper's loop, automated).

The paper's central claim is that the SP2:fixed ratio should be chosen to
*match the target FPGA's resource profile* (Fig. 2, Tables VII-IX). This
package closes that loop automatically::

    from repro.autotune import tune

    result = tune(model, device="zu3eg", objective="latency",
                  sample_input=x, budget=50, seed=0)
    print(result.format_table())          # Pareto frontier + top candidates
    config = result.config()              # ready-to-run PipelineConfig
    design = result.design                # the tuned GemmDesign

or, one level up, ``Pipeline.tune(...)`` (:mod:`repro.api`) and
``python -m repro tune`` (CLI).

Pieces:

- :class:`SearchSpace` / :class:`Candidate` (:mod:`.space`) — the design
  space: accelerator geometry, bits, serving batch, backend;
- :class:`CostModel` (:mod:`.cost`) — feasibility (``check_fits`` + the
  §VI-A LUT cap) and simulated latency/throughput via the calibrated FPGA
  models, plus a pluggable accuracy proxy
  (``@register_accuracy_proxy``: ``mse`` | ``calibration`` | ``gaussian``);
- :mod:`.strategies` — ``@register_strategy`` registry with ``grid``,
  ``greedy`` (seeded from the device's Fig.-2 characterization ratio) and
  ``random``/``evolutionary`` built in;
- :class:`EvalCache` (:mod:`.cache`) — persistent, content-hash-keyed
  evaluation store, so re-tunes are incremental;
- :func:`tune` / :class:`TuneResult` (:mod:`.tuner`) — the front door:
  deterministic seeded search, Pareto frontier, deployable result.
"""

from repro.autotune.cache import EvalCache
from repro.autotune.cost import (
    CandidateEvaluation,
    CostModel,
    get_accuracy_proxy,
    list_accuracy_proxies,
    register_accuracy_proxy,
    scale_workloads,
)
from repro.autotune.space import Candidate, SearchSpace
from repro.autotune.strategies import (
    get_strategy,
    list_strategies,
    register_strategy,
)
from repro.autotune.tuner import (
    OBJECTIVES,
    TuneResult,
    pareto_frontier,
    refine_layer_ratios,
    tune,
)

__all__ = [
    "Candidate",
    "CandidateEvaluation",
    "CostModel",
    "EvalCache",
    "OBJECTIVES",
    "SearchSpace",
    "TuneResult",
    "get_accuracy_proxy",
    "get_strategy",
    "list_accuracy_proxies",
    "list_strategies",
    "pareto_frontier",
    "refine_layer_ratios",
    "register_accuracy_proxy",
    "register_strategy",
    "scale_workloads",
    "tune",
]
