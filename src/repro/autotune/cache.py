"""Persistent evaluation cache: re-tunes are incremental.

Every candidate evaluation is keyed by a content hash of the candidate
*and* its evaluation context (device, workload dimensions, accuracy-proxy
name, model-weight digest), so a cache entry is only ever reused when it
would be recomputed identically. The store is one human-readable JSON
file; writes are atomic (tmp + rename) so an interrupted tune never
corrupts it.

A second tune over the same model/device answers every repeated candidate
from the cache — ``benchmarks/bench_tune.py`` gates the cached re-tune at
>= 5x the cold search.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, Sequence

import numpy as np

from repro.util.hashing import stable_digest

CACHE_FORMAT = "repro-autotune-cache/1"


def workload_fingerprint(workloads) -> str:
    """Digest of the GEMM workload dimensions (per-request shapes).

    Byte-compatible with the pre-consolidation helper: the same repr
    tuples are concatenated and fed to sha256 via
    :func:`repro.util.hashing.stable_digest`, so existing cache files
    keep hitting.
    """
    payload = b"".join(
        repr((w.name, w.rows, w.reduction, w.kernel_positions,
              w.columns, w.sequential_columns, w.groups)).encode()
        for w in workloads)
    return stable_digest(payload, length=16)


def model_fingerprint(model) -> str:
    """Digest of the model's quantizable weights (the proxy's input).

    Byte-compatible with the pre-consolidation helper (same name /
    shape-string / element-bytes stream)."""
    from repro.quant.admm import collect_quantizable

    chunks = []
    for name, param in collect_quantizable(model):
        array = np.ascontiguousarray(np.asarray(param.data))
        chunks.append(name.encode())
        chunks.append(str(array.shape).encode())
        chunks.append(array.tobytes())
    return stable_digest(b"".join(chunks), length=16)


def evaluation_key(candidate, context: str) -> str:
    """Cache key of one candidate in one evaluation context."""
    return stable_digest(context + candidate.key(), length=32)


class EvalCache:
    """On-disk (or in-memory, ``path=None``) evaluation store."""

    def __init__(self, path: Optional[str] = None):
        self.path = os.fspath(path) if path is not None else None
        self._entries: Dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        if self.path is not None and os.path.exists(self.path):
            self.load()

    def __len__(self) -> int:
        return len(self._entries)

    def load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("format") == CACHE_FORMAT:
            self._entries = dict(payload.get("entries", {}))

    def get(self, key: str) -> Optional[dict]:
        record = self._entries.get(key)
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, key: str, record: dict) -> None:
        self._entries[key] = record

    def save(self) -> None:
        """Atomically persist the store (no-op for in-memory caches)."""
        if self.path is None:
            return
        payload = {"format": CACHE_FORMAT, "entries": self._entries}
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        tmp_path = self.path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp_path, self.path)

    @property
    def stats(self) -> Dict[str, int]:
        return {"entries": len(self._entries), "hits": self.hits,
                "misses": self.misses}
