"""The design space: what the autotuner is allowed to pick.

A :class:`Candidate` is one fully-specified point of the co-search —
accelerator geometry (``Bat``/``Blk_in``/``Blk_out,fixed``/``Blk_out,sp2``),
quantization bit-widths, serving micro-batch size and kernel backend. The
candidate's PE-column ratio *is* the SP2:fixed quantization ratio handed to
Algorithm 2, which is the paper's central co-design rule (§V-B: "the PE
ratio is used as the desired SP2/fixed-point ratio").

A :class:`SearchSpace` enumerates candidates for one device. The fixed
core is sized by the §VI-A rule (full DSP budget, shrunk until the BRAM/FF
buffer budget fits — :meth:`SearchSpace.fixed_columns`), and the SP2 core
grows in register-array tiles under the routability LUT cap — exactly the
constraints :mod:`repro.fpga.characterize` walks, generalized to a
multi-dimensional space the strategies can search.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import BackendError, ConfigurationError
from repro.fpga.characterize import DEFAULT_LUT_CAP, SP2_COLUMN_STEP
from repro.fpga.devices import get_device
from repro.fpga.resources import GemmDesign
from repro.quant.partition import PartitionRatio
from repro.serve.backends import DEFAULT_BACKEND, list_backends


@dataclass(frozen=True)
class Candidate:
    """One point of the design space: accelerator + quantization + serving.

    ``block_out_sp2 / block_out_fixed`` doubles as the SP2:fixed row ratio
    Algorithm 2 trains/projects at (the co-design contract), so a candidate
    fully determines both the FPGA design and the quantization config.
    """

    device: str                  # catalog name (e.g. "XC7Z045")
    batch: int                   # Bat (hardware lanes)
    block_in: int                # Blk_in
    block_out_fixed: int         # Blk_out,fixed (DSP core columns)
    block_out_sp2: int           # Blk_out,sp2 (LUT core columns)
    weight_bits: int = 4
    act_bits: int = 4
    serve_batch: int = 1         # serving micro-batch size
    backend: str = DEFAULT_BACKEND   # serving kernel backend
    freq_mhz: float = 100.0
    # Pipeline-partition cut points (top-level manifest op indices, see
    # repro.serve.partition). () = single-device, the classic search.
    cuts: Tuple[int, ...] = ()

    def design(self) -> GemmDesign:
        """The :class:`GemmDesign` this candidate describes."""
        return GemmDesign(
            get_device(self.device), self.batch, self.block_in,
            self.block_out_fixed, self.block_out_sp2,
            weight_bits=self.weight_bits, act_bits=self.act_bits,
            freq_mhz=self.freq_mhz,
            name=f"tuned:{self.device}")

    @property
    def ratio(self) -> PartitionRatio:
        """SP2:fixed row ratio implied by the PE-column split."""
        return PartitionRatio(sp2=float(self.block_out_sp2),
                              fixed=float(self.block_out_fixed))

    @property
    def sp2_fraction(self) -> float:
        total = self.block_out_fixed + self.block_out_sp2
        return self.block_out_sp2 / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "device": self.device, "batch": self.batch,
            "block_in": self.block_in,
            "block_out_fixed": self.block_out_fixed,
            "block_out_sp2": self.block_out_sp2,
            "weight_bits": self.weight_bits, "act_bits": self.act_bits,
            "serve_batch": self.serve_batch, "backend": self.backend,
            "freq_mhz": self.freq_mhz,
            "cuts": list(self.cuts),
        }

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "Candidate":
        record = dict(record)
        cuts = record.pop("cuts", ()) or ()
        return cls(cuts=tuple(int(i) for i in cuts), **record)

    def key(self) -> str:
        """Stable identity string (cache key component, tie-breaker)."""
        return json.dumps(self.as_dict(), sort_keys=True)

    def describe(self) -> str:
        return (f"{self.device} Bat={self.batch} Blkin={self.block_in} "
                f"Blkout={self.block_out_fixed}+{self.block_out_sp2} "
                f"W{self.weight_bits}A{self.act_bits} "
                f"b={self.serve_batch} [{self.backend}]"
                + (f" cut@{list(self.cuts)}" if self.cuts else ""))


@dataclass(frozen=True)
class SearchSpace:
    """Enumerable design space for one device.

    ``sp2_columns=None`` (default) bounds the SP2 axis per
    (batch, block_in, bits) combination at the largest column count that
    fits under ``lut_cap`` — the §VI-A routability constraint — stepping
    in register-array tiles of ``sp2_step``. The fixed core is always
    sized by :meth:`fixed_columns` (full-DSP, buffer-shrunk), matching
    how the paper sizes its Table VII points.
    """

    device: str
    batches: Tuple[int, ...] = (1,)
    block_ins: Tuple[int, ...] = (16,)
    weight_bits: Tuple[int, ...] = (4,)
    act_bits: Tuple[int, ...] = (4,)
    serve_batches: Tuple[int, ...] = (1,)
    backends: Tuple[str, ...] = (DEFAULT_BACKEND,)
    sp2_columns: Optional[Tuple[int, ...]] = None
    sp2_step: int = SP2_COLUMN_STEP
    lut_cap: float = DEFAULT_LUT_CAP
    freq_mhz: float = 100.0
    # Pipeline-partition axis: each entry is one cut-point tuple the
    # search may pick (() = no partition). tune() prices non-empty cuts
    # with PipelineCostModel, co-searching cut placement with geometry.
    cuts: Tuple[Tuple[int, ...], ...] = ((),)

    def __post_init__(self):
        object.__setattr__(self, "device", get_device(self.device).name)
        for label in ("batches", "block_ins", "weight_bits", "act_bits",
                      "serve_batches", "backends"):
            values = tuple(getattr(self, label))
            if not values:
                raise ConfigurationError(f"search space {label} is empty")
            object.__setattr__(self, label, values)
        # Fail the backend axis at construction, not deep inside a search
        # run: every entry must name a registered serving backend.
        for backend in self.backends:
            if backend not in list_backends():
                raise BackendError(backend, available=list_backends())
        if self.sp2_columns is not None:
            object.__setattr__(self, "sp2_columns",
                               tuple(sorted(set(self.sp2_columns))))
        cut_axis = tuple(tuple(int(i) for i in option)
                         for option in self.cuts)
        if not cut_axis:
            raise ConfigurationError("search space cuts is empty")
        object.__setattr__(self, "cuts", cut_axis)
        if not 0.0 < self.lut_cap <= 1.0:
            raise ConfigurationError(
                f"lut_cap must be in (0, 1], got {self.lut_cap}")
        # Per-geometry memo (not a dataclass field: hashing/equality stay
        # value-based; the cache is just an attribute on the frozen
        # instance).
        object.__setattr__(self, "_geometry_cache", {})

    # ------------------------------------------------------------------
    # Geometry rules — delegated to the one §VI-A walk in
    # repro.fpga.characterize, so the tuner's space can never diverge
    # from the characterization search it mirrors. Memoized per
    # (batch, block_in, bits) geometry.
    # ------------------------------------------------------------------
    def _characterized(self, batch: int, block_in: int, weight_bits: int,
                       act_bits: int):
        from repro.fpga.characterize import characterize_device

        key = (batch, block_in, weight_bits, act_bits)
        cache = self._geometry_cache
        if key not in cache:
            result = characterize_device(
                self.device, batch=batch, block_in=block_in,
                weight_bits=weight_bits, act_bits=act_bits,
                lut_cap=self.lut_cap, sp2_step=self.sp2_step,
                freq_mhz=self.freq_mhz)
            options = tuple(c["block_out_sp2"] for c in result.candidates
                            if c["fits"])
            cache[key] = (result.design.block_out_fixed,
                          options or (0,),
                          result.design.block_out_sp2)
        return cache[key]

    def fixed_columns(self, batch: int, block_in: int,
                      weight_bits: int, act_bits: int) -> int:
        """Fixed-core column count: full DSP budget, shrunk to fit buffers
        (the §VI-A sizing rule, via :func:`characterize_device`)."""
        return self._characterized(batch, block_in, weight_bits,
                                   act_bits)[0]

    def sp2_options(self, batch: int, block_in: int,
                    weight_bits: int, act_bits: int) -> Tuple[int, ...]:
        """SP2 column counts to examine for one geometry combination."""
        if self.sp2_columns is not None:
            return self.sp2_columns
        return self._characterized(batch, block_in, weight_bits,
                                   act_bits)[1]

    # ------------------------------------------------------------------
    # Enumeration / sampling
    # ------------------------------------------------------------------
    def _build(self, batch: int, block_in: int, weight_bits: int,
               act_bits: int, sp2: int, serve_batch: int,
               backend: str, cuts: Tuple[int, ...] = ()) -> Candidate:
        return Candidate(
            device=self.device, batch=batch, block_in=block_in,
            block_out_fixed=self.fixed_columns(batch, block_in,
                                               weight_bits, act_bits),
            block_out_sp2=sp2, weight_bits=weight_bits, act_bits=act_bits,
            serve_batch=serve_batch, backend=backend,
            freq_mhz=self.freq_mhz, cuts=cuts)

    def candidates(self) -> List[Candidate]:
        """The full grid, in deterministic order."""
        out: List[Candidate] = []
        for batch, block_in, wbits, abits in itertools.product(
                self.batches, self.block_ins, self.weight_bits,
                self.act_bits):
            for sp2 in self.sp2_options(batch, block_in, wbits, abits):
                for serve_batch, backend, cuts in itertools.product(
                        self.serve_batches, self.backends, self.cuts):
                    out.append(self._build(batch, block_in, wbits, abits,
                                           sp2, serve_batch, backend,
                                           cuts))
        return out

    @property
    def size(self) -> int:
        """Grid cardinality, computed arithmetically (no Candidate
        objects; one memoized characterization per geometry)."""
        total = 0
        for batch, block_in, wbits, abits in itertools.product(
                self.batches, self.block_ins, self.weight_bits,
                self.act_bits):
            total += len(self.sp2_options(batch, block_in, wbits, abits))
        return (total * len(self.serve_batches) * len(self.backends)
                * len(self.cuts))

    def seed_candidates(self) -> List[Candidate]:
        """Resource-guided seeds: the §VI-A characterization optimum (the
        device's Fig.-2 ratio) for every (batch, bits) combination."""
        seeds: List[Candidate] = []
        for batch, block_in, wbits, abits in itertools.product(
                self.batches, self.block_ins, self.weight_bits,
                self.act_bits):
            best_sp2 = self._characterized(batch, block_in, wbits,
                                           abits)[2]
            seeds.append(self._build(
                batch, block_in, wbits, abits, best_sp2,
                self.serve_batches[0], self.backends[0], self.cuts[0]))
        return seeds

    def neighbors(self, candidate: Candidate) -> List[Candidate]:
        """Single-field moves from ``candidate``, all within the space."""
        moves: List[Candidate] = []

        def adjacent(options: Sequence, value) -> List:
            options = list(options)
            if value not in options:
                return options[:1]
            index = options.index(value)
            return [options[i] for i in (index - 1, index + 1)
                    if 0 <= i < len(options)]

        sp2_options = self.sp2_options(candidate.batch, candidate.block_in,
                                       candidate.weight_bits,
                                       candidate.act_bits)
        for sp2 in adjacent(sp2_options, candidate.block_out_sp2):
            moves.append(replace(candidate, block_out_sp2=sp2))
        for batch in adjacent(self.batches, candidate.batch):
            moves.append(self._build(batch, candidate.block_in,
                                     candidate.weight_bits,
                                     candidate.act_bits,
                                     candidate.block_out_sp2,
                                     candidate.serve_batch,
                                     candidate.backend))
        for bits in adjacent(self.weight_bits, candidate.weight_bits):
            moves.append(self._build(candidate.batch, candidate.block_in,
                                     bits, candidate.act_bits,
                                     candidate.block_out_sp2,
                                     candidate.serve_batch,
                                     candidate.backend))
        for serve_batch in adjacent(self.serve_batches,
                                    candidate.serve_batch):
            moves.append(replace(candidate, serve_batch=serve_batch))
        for backend in self.backends:
            if backend != candidate.backend:
                moves.append(replace(candidate, backend=backend))
        for cuts in adjacent(self.cuts, candidate.cuts):
            moves.append(replace(candidate, cuts=cuts))
        # Clamp SP2 columns of cross-geometry moves back into their own
        # feasible range (a batch/bits move changes what fits).
        clamped: List[Candidate] = []
        for move in moves:
            options = self.sp2_options(move.batch, move.block_in,
                                       move.weight_bits, move.act_bits)
            if move.block_out_sp2 not in options:
                move = replace(move, block_out_sp2=min(
                    options, key=lambda o: abs(o - move.block_out_sp2)))
            clamped.append(move)
        return clamped

    def random_candidate(self, rng) -> Candidate:
        """One uniformly-sampled candidate (seeded ``rng`` for determinism)."""
        batch = int(rng.choice(self.batches))
        block_in = int(rng.choice(self.block_ins))
        wbits = int(rng.choice(self.weight_bits))
        abits = int(rng.choice(self.act_bits))
        sp2_options = self.sp2_options(batch, block_in, wbits, abits)
        return self._build(batch, block_in, wbits, abits,
                           int(rng.choice(sp2_options)),
                           int(rng.choice(self.serve_batches)),
                           str(rng.choice(self.backends)),
                           self.cuts[int(rng.integers(len(self.cuts)))])

    def mutate(self, candidate: Candidate, rng) -> Candidate:
        """One random single-field move (evolutionary perturbation)."""
        moves = self.neighbors(candidate)
        if not moves:
            return candidate
        return moves[int(rng.integers(len(moves)))]
