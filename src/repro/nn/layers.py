"""Standard layers.

``Conv2d`` and ``Linear`` carry two optional hooks used by the quantization
framework (:mod:`repro.quant`):

- ``weight_quant`` — a fake-quantizer applied to the weight each forward pass
  (straight-through estimator semantics; used by the STE-trained baselines).
- ``act_quant`` — a fake-quantizer applied to the layer *input* (the paper
  quantizes activations with fixed-point STE in all experiments, Alg. 1).

Hooks default to ``None`` (pure full-precision behaviour), so the substrate
stays generic and the quantization logic lives entirely in ``repro.quant``.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, conv2d, max_pool2d, avg_pool2d, global_avg_pool2d

QuantHook = Optional[Callable[[Tensor], Tensor]]


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``.

    The weight is stored as ``(out_features, in_features)`` — each *row* is
    one output neuron's weights, which is exactly the row granularity the
    paper's MSQ partitioning operates on (§IV-A).
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None
        self.weight_quant: QuantHook = None
        self.act_quant: QuantHook = None

    def forward(self, x: Tensor) -> Tensor:
        if self.act_quant is not None:
            x = self.act_quant(x)
        weight = self.weight
        if self.weight_quant is not None:
            weight = self.weight_quant(weight)
        out = x @ weight.transpose()
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class Conv2d(Module):
    """2-D convolution over NCHW tensors with optional grouping."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, groups: int = 1,
                 bias: bool = True, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if in_channels % groups != 0:
            raise ConfigurationError(
                f"in_channels {in_channels} not divisible by groups {groups}"
            )
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        shape = (out_channels, in_channels // groups, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_uniform(shape, rng))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None
        self.weight_quant: QuantHook = None
        self.act_quant: QuantHook = None

    def forward(self, x: Tensor) -> Tensor:
        if self.act_quant is not None:
            x = self.act_quant(x)
        weight = self.weight
        if self.weight_quant is not None:
            weight = self.weight_quant(weight)
        return conv2d(x, weight, self.bias, stride=self.stride,
                      padding=self.padding, groups=self.groups)

    def __repr__(self) -> str:
        return (f"Conv2d({self.in_channels}, {self.out_channels}, "
                f"k={self.kernel_size}, s={self.stride}, p={self.padding}, "
                f"g={self.groups})")


class BatchNorm2d(Module):
    """Batch normalization over the channel axis of NCHW tensors."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(init.ones((num_features,)))
        self.beta = Parameter(init.zeros((num_features,)))
        self.register_buffer("running_mean", init.zeros((num_features,)))
        self.register_buffer("running_var", init.ones((num_features,)))

    def forward(self, x: Tensor) -> Tensor:
        axes = (0, 2, 3)
        shape = (1, self.num_features, 1, 1)
        if self.training:
            mean = x.mean(axis=axes, keepdims=True)
            var = x.var(axis=axes, keepdims=True)
            m = self.momentum
            self.set_buffer(
                "running_mean",
                (1 - m) * self.running_mean + m * mean.data.reshape(-1),
            )
            self.set_buffer(
                "running_var",
                (1 - m) * self.running_var + m * var.data.reshape(-1),
            )
        else:
            mean = Tensor(self.running_mean.reshape(shape))
            var = Tensor(self.running_var.reshape(shape))
        normalized = (x - mean) / (var + self.eps).sqrt()
        return normalized * self.gamma.reshape(shape) + self.beta.reshape(shape)

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"


class BatchNorm1d(Module):
    """Batch normalization over (N, F) tensors."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(init.ones((num_features,)))
        self.beta = Parameter(init.zeros((num_features,)))
        self.register_buffer("running_mean", init.zeros((num_features,)))
        self.register_buffer("running_var", init.ones((num_features,)))

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mean = x.mean(axis=0, keepdims=True)
            var = x.var(axis=0, keepdims=True)
            m = self.momentum
            self.set_buffer(
                "running_mean",
                (1 - m) * self.running_mean + m * mean.data.reshape(-1),
            )
            self.set_buffer(
                "running_var",
                (1 - m) * self.running_var + m * var.data.reshape(-1),
            )
        else:
            mean = Tensor(self.running_mean.reshape(1, -1))
            var = Tensor(self.running_var.reshape(1, -1))
        normalized = (x - mean) / (var + self.eps).sqrt()
        return normalized * self.gamma.reshape(1, -1) + self.beta.reshape(1, -1)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:
        return "ReLU()"


class ReLU6(Module):
    """ReLU clipped at 6 (MobileNet-v2's activation)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.clip(0.0, 6.0)

    def __repr__(self) -> str:
        return "ReLU6()"


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.flatten()


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None, padding: int = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return max_pool2d(x, self.kernel_size, self.stride, self.padding)


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return avg_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return global_avg_pool2d(x)


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ConfigurationError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float32) / keep
        return x * Tensor(mask)


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), 0.1, rng))

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        return self.weight[indices]

    def __repr__(self) -> str:
        return f"Embedding({self.num_embeddings}, {self.embedding_dim})"
