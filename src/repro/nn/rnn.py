"""Recurrent layers: LSTM and GRU cells and multi-layer wrappers.

Gate weights are stored stacked row-wise (``weight_ih``: ``(gates*H, I)``),
so — exactly like ``Linear``/``Conv2d`` — each row corresponds to one output
unit of a GEMM and can be assigned its own quantization scheme by MSQ.

Both cells expose the same ``weight_quant`` / ``act_quant`` hooks as the
feed-forward layers.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, stack

QuantHook = Optional[Callable[[Tensor], Tensor]]


def _split_rows(tensor: Tensor, chunks: int) -> List[Tensor]:
    """Split a (chunks*H, ...) tensor into ``chunks`` row blocks."""
    rows = tensor.shape[0] // chunks
    return [tensor[i * rows:(i + 1) * rows] for i in range(chunks)]


class _RNNCellBase(Module):
    def __init__(self, input_size: int, hidden_size: int, num_gates: int,
                 rng: Optional[np.random.Generator]):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        bound = 1.0 / math.sqrt(hidden_size)
        self.weight_ih = Parameter(
            init.uniform((num_gates * hidden_size, input_size), bound, rng))
        self.weight_hh = Parameter(
            init.uniform((num_gates * hidden_size, hidden_size), bound, rng))
        self.bias_ih = Parameter(init.zeros((num_gates * hidden_size,)))
        self.bias_hh = Parameter(init.zeros((num_gates * hidden_size,)))
        self.weight_quant: QuantHook = None
        self.act_quant: QuantHook = None

    def _gates(self, x: Tensor, h: Tensor) -> Tensor:
        if self.act_quant is not None:
            x = self.act_quant(x)
            h = self.act_quant(h)
        w_ih, w_hh = self.weight_ih, self.weight_hh
        if self.weight_quant is not None:
            w_ih = self.weight_quant(w_ih)
            w_hh = self.weight_quant(w_hh)
        return (x @ w_ih.transpose() + self.bias_ih
                + h @ w_hh.transpose() + self.bias_hh)


class LSTMCell(_RNNCellBase):
    """Single LSTM step; gate order is (input, forget, cell, output)."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(input_size, hidden_size, num_gates=4, rng=rng)

    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor]) -> Tuple[Tensor, Tensor]:
        h, c = state
        gates = self._gates(x, h)
        h_size = self.hidden_size
        i = gates[:, 0 * h_size:1 * h_size].sigmoid()
        f = gates[:, 1 * h_size:2 * h_size].sigmoid()
        g = gates[:, 2 * h_size:3 * h_size].tanh()
        o = gates[:, 3 * h_size:4 * h_size].sigmoid()
        c_next = f * c + i * g
        h_next = o * c_next.tanh()
        return h_next, c_next


class GRUCell(_RNNCellBase):
    """Single GRU step; gate order is (reset, update, new)."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(input_size, hidden_size, num_gates=3, rng=rng)

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        if self.act_quant is not None:
            x = self.act_quant(x)
            h_in = self.act_quant(h)
        else:
            h_in = h
        w_ih, w_hh = self.weight_ih, self.weight_hh
        if self.weight_quant is not None:
            w_ih = self.weight_quant(w_ih)
            w_hh = self.weight_quant(w_hh)
        gi = x @ w_ih.transpose() + self.bias_ih
        gh = h_in @ w_hh.transpose() + self.bias_hh
        h_size = self.hidden_size
        r = (gi[:, :h_size] + gh[:, :h_size]).sigmoid()
        z = (gi[:, h_size:2 * h_size] + gh[:, h_size:2 * h_size]).sigmoid()
        n = (gi[:, 2 * h_size:] + r * gh[:, 2 * h_size:]).tanh()
        return (Tensor(np.float32(1.0)) - z) * n + z * h


class LSTM(Module):
    """Multi-layer LSTM over (N, T, F) batch-first sequences."""

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        for layer in range(num_layers):
            in_size = input_size if layer == 0 else hidden_size
            setattr(self, f"cell{layer}", LSTMCell(in_size, hidden_size, rng=rng))

    def _cell(self, layer: int) -> LSTMCell:
        return getattr(self, f"cell{layer}")

    def forward(self, x: Tensor,
                state: Optional[List[Tuple[Tensor, Tensor]]] = None
                ) -> Tuple[Tensor, List[Tuple[Tensor, Tensor]]]:
        batch, steps, _ = x.shape
        if state is None:
            zeros = np.zeros((batch, self.hidden_size), dtype=np.float32)
            state = [(Tensor(zeros.copy()), Tensor(zeros.copy()))
                     for _ in range(self.num_layers)]
        outputs: List[Tensor] = []
        for t in range(steps):
            inp = x[:, t]
            for layer in range(self.num_layers):
                h, c = self._cell(layer)(inp, state[layer])
                state[layer] = (h, c)
                inp = h
            outputs.append(inp)
        return stack(outputs, axis=1), state


class GRU(Module):
    """Multi-layer GRU over (N, T, F) batch-first sequences."""

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        for layer in range(num_layers):
            in_size = input_size if layer == 0 else hidden_size
            setattr(self, f"cell{layer}", GRUCell(in_size, hidden_size, rng=rng))

    def _cell(self, layer: int) -> GRUCell:
        return getattr(self, f"cell{layer}")

    def forward(self, x: Tensor, state: Optional[List[Tensor]] = None
                ) -> Tuple[Tensor, List[Tensor]]:
        batch, steps, _ = x.shape
        if state is None:
            state = [Tensor(np.zeros((batch, self.hidden_size), dtype=np.float32))
                     for _ in range(self.num_layers)]
        outputs: List[Tensor] = []
        for t in range(steps):
            inp = x[:, t]
            for layer in range(self.num_layers):
                h = self._cell(layer)(inp, state[layer])
                state[layer] = h
                inp = h
            outputs.append(inp)
        return stack(outputs, axis=1), state
