"""Loss functions and softmax helpers.

``cross_entropy`` is implemented as a fused op (softmax + NLL with the
closed-form gradient) because it sits in every training inner loop; the
remaining losses compose existing autograd ops.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.tensor import Tensor


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, C) and integer ``targets``.

    Fused forward/backward: grad = (softmax - onehot) / N.
    """
    targets = np.asarray(targets, dtype=np.int64).reshape(-1)
    if logits.ndim != 2:
        raise ShapeError(f"cross_entropy expects (N, C) logits, got {logits.shape}")
    n, c = logits.shape
    if targets.shape[0] != n:
        raise ShapeError(f"targets length {targets.shape[0]} != batch {n}")

    z = logits.data - logits.data.max(axis=1, keepdims=True)
    exp = np.exp(z)
    probs = exp / exp.sum(axis=1, keepdims=True)
    log_probs = z - np.log(exp.sum(axis=1, keepdims=True))
    loss_value = -log_probs[np.arange(n), targets].mean()

    def backward(grad: np.ndarray) -> None:
        dlogits = probs.copy()
        dlogits[np.arange(n), targets] -= 1.0
        logits._accumulate(grad * dlogits / n)

    return Tensor._make(np.asarray(loss_value, dtype=np.float32), (logits,), backward)


def mse_loss(prediction: Tensor, target) -> Tensor:
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target.detach()
    return (diff * diff).mean()


def l1_loss(prediction: Tensor, target) -> Tensor:
    target = target if isinstance(target, Tensor) else Tensor(target)
    return (prediction - target.detach()).abs().mean()


def bce_with_logits(logits: Tensor, targets) -> Tensor:
    """Numerically stable binary cross-entropy on raw logits."""
    targets = targets if isinstance(targets, Tensor) else Tensor(targets)
    t = targets.detach()
    # max(x,0) - x*t + log(1 + exp(-|x|))
    relu_x = logits.relu()
    abs_x = logits.abs()
    softplus = ((-abs_x).exp() + 1.0).log()
    return (relu_x - logits * t + softplus).mean()
