"""Neural-network building blocks on top of :mod:`repro.tensor`.

Provides the PyTorch-like substrate the paper's training code assumes:
``Module``/``Parameter``, common layers, RNN cells, losses, optimizers and
learning-rate schedulers.
"""

from repro.nn.module import Module, Parameter, Sequential
from repro.nn.layers import (
    Linear,
    Conv2d,
    BatchNorm2d,
    BatchNorm1d,
    ReLU,
    ReLU6,
    Identity,
    Flatten,
    MaxPool2d,
    AvgPool2d,
    GlobalAvgPool2d,
    Dropout,
    Embedding,
)
from repro.nn.rnn import LSTMCell, GRUCell, LSTM, GRU
from repro.nn.losses import (
    cross_entropy,
    mse_loss,
    l1_loss,
    bce_with_logits,
    log_softmax,
    softmax,
)
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.schedulers import StepLR, MultiStepLR, CosineAnnealingLR

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "BatchNorm1d",
    "ReLU",
    "ReLU6",
    "Identity",
    "Flatten",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Dropout",
    "Embedding",
    "LSTMCell",
    "GRUCell",
    "LSTM",
    "GRU",
    "cross_entropy",
    "mse_loss",
    "l1_loss",
    "bce_with_logits",
    "log_softmax",
    "softmax",
    "SGD",
    "Adam",
    "Optimizer",
    "StepLR",
    "MultiStepLR",
    "CosineAnnealingLR",
]
