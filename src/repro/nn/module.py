"""``Module``/``Parameter`` container system.

Modules register parameters and child modules automatically on attribute
assignment, expose iteration over (named) parameters, support train/eval
modes, and provide ``state_dict``/``load_state_dict`` for checkpointing —
the minimal contract the quantization trainers rely on.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor (``requires_grad=True`` by default)."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all layers and models."""

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __setattr__(self, key: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[key] = value
        elif isinstance(value, Module):
            self._modules[key] = value
        object.__setattr__(self, key, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state saved in ``state_dict`` (e.g. BN
        running statistics)."""
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    def set_buffer(self, name: str, value: np.ndarray) -> None:
        """Update a registered buffer in place (keeps state_dict in sync)."""
        if name not in self._buffers:
            raise KeyError(f"buffer {name!r} is not registered")
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for key, param in self._parameters.items():
            yield (f"{prefix}{key}", param)
        for key, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{key}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for key, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{key}.")

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    # ------------------------------------------------------------------
    # Modes & gradients
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self, prefix: str = "") -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for key, param in self._parameters.items():
            state[f"{prefix}{key}"] = param.data.copy()
        for key, value in self._buffers.items():
            state[f"{prefix}{key}"] = np.array(value, copy=True)
        for key, module in self._modules.items():
            state.update(module.state_dict(prefix=f"{prefix}{key}."))
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], prefix: str = "") -> None:
        for key, param in self._parameters.items():
            full = f"{prefix}{key}"
            if full not in state:
                raise KeyError(f"missing parameter {full!r} in state dict")
            param.data = np.array(state[full], dtype=param.data.dtype, copy=True)
        for key in self._buffers:
            full = f"{prefix}{key}"
            if full in state:
                self.set_buffer(key, np.array(state[full], copy=True))
        for key, module in self._modules.items():
            module.load_state_dict(state, prefix=f"{prefix}{key}.")

    # ------------------------------------------------------------------
    # Serving export
    # ------------------------------------------------------------------
    def export_structure(self):
        """Describe this module's eval-mode forward for the serving compiler.

        Composite modules whose ``forward`` is not a plain child chain (e.g.
        residual blocks) override this to return a structure spec consumed by
        :mod:`repro.serve.compile`:

        - ``("chain", items)`` — apply ``items`` in order; each item is a
          child :class:`Module` or an opcode string (``"relu"``,
          ``"merge_time"``, ``"take_last"``);
        - ``("residual", main_items, shortcut_items, post)`` — run both
          branches on the input, add, then apply ``post`` (``"relu"`` or
          ``None``). ``shortcut_items`` of ``None`` means identity.

        Returning ``None`` (the default) lets the compiler handle the module
        as a leaf layer, which fails for unknown composite types.
        """
        return None

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_lines = [
            f"  ({name}): {module!r}".replace("\n", "\n  ")
            for name, module in self._modules.items()
        ]
        header = self.__class__.__name__
        if not child_lines:
            return f"{header}()"
        return header + "(\n" + "\n".join(child_lines) + "\n)"

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        for index, module in enumerate(modules):
            setattr(self, str(index), module)

    def forward(self, x):
        for module in self._modules.values():
            x = module(x)
        return x

    def export_structure(self):
        return ("chain", list(self._modules.values()))

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def __len__(self) -> int:
        return len(self._modules)
