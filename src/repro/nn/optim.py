"""Optimizers: SGD with momentum/weight decay and Adam.

The paper trains with SGD (step or cosine decay, l2 regularization) for CNNs
and Adam-style updates for RNN tasks; both are provided.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer holding a parameter list and the learning rate."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with classical momentum and decoupled-style l2 weight decay."""

    def __init__(self, parameters: Iterable[Parameter], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
