"""Learning-rate schedules: step decay and cosine annealing (§IV-C.1)."""

from __future__ import annotations

import math
from typing import Sequence

from repro.nn.optim import Optimizer


class _Scheduler:
    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        """Advance one epoch and update the optimizer's learning rate."""
        self.epoch += 1
        self.optimizer.lr = self.get_lr()

    def get_lr(self) -> float:
        raise NotImplementedError


class StepLR(_Scheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class MultiStepLR(_Scheduler):
    """Multiply by ``gamma`` at each milestone epoch."""

    def __init__(self, optimizer: Optimizer, milestones: Sequence[int],
                 gamma: float = 0.1):
        super().__init__(optimizer)
        self.milestones = sorted(milestones)
        self.gamma = gamma

    def get_lr(self) -> float:
        passed = sum(1 for m in self.milestones if self.epoch >= m)
        return self.base_lr * self.gamma ** passed


class CosineAnnealingLR(_Scheduler):
    """Cosine decay from the base LR to ``eta_min`` over ``t_max`` epochs.

    The paper's YOLO-v3 training decays 1e-2 -> 5e-4 with cosine annealing.
    """

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        t = min(self.epoch, self.t_max)
        cos = (1.0 + math.cos(math.pi * t / self.t_max)) / 2.0
        return self.eta_min + (self.base_lr - self.eta_min) * cos
