"""Weight initialization helpers.

All initializers draw from an explicit ``numpy.random.Generator`` so every
experiment in the reproduction is deterministic end to end.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


def _fan_in_out(shape: Sequence[int]) -> tuple[int, int]:
    if len(shape) == 2:  # Linear: (out, in)
        fan_out, fan_in = shape
    elif len(shape) == 4:  # Conv: (out, in/groups, kh, kw)
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        fan_in = fan_out = int(np.prod(shape[1:])) or shape[0]
    return fan_in, fan_out


def kaiming_normal(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """He-normal init for ReLU networks."""
    fan_in, _ = _fan_in_out(shape)
    std = math.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def kaiming_uniform(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """He-uniform init (PyTorch's default for Conv/Linear)."""
    fan_in, _ = _fan_in_out(shape)
    bound = math.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform init for tanh/sigmoid (RNN) networks."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def uniform(shape: Sequence[int], bound: float, rng: np.random.Generator) -> np.ndarray:
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def normal(shape: Sequence[int], std: float, rng: np.random.Generator) -> np.ndarray:
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def zeros(shape: Sequence[int]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: Sequence[int]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
