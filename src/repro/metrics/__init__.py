"""Evaluation metrics used by the paper's tables: top-k accuracy (II-IV),
COCO-style mAP (V), perplexity / phoneme error rate / accuracy (VI)."""

from repro.metrics.classification import topk_accuracy, accuracy
from repro.metrics.detection import average_precision, mean_average_precision
from repro.metrics.language import perplexity
from repro.metrics.speech import edit_distance, phoneme_error_rate, collapse_repeats

__all__ = [
    "topk_accuracy",
    "accuracy",
    "average_precision",
    "mean_average_precision",
    "perplexity",
    "edit_distance",
    "phoneme_error_rate",
    "collapse_repeats",
]
