"""Detection metrics: per-class average precision and COCO-style mAP
(Table V reports mAP@0.5 and mAP@(0.5:0.95))."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.models.yolo import box_iou


def average_precision(detections: Sequence[dict],
                      ground_truths: Sequence[np.ndarray],
                      class_id: int, iou_threshold: float = 0.5) -> float:
    """All-point-interpolated AP for one class.

    ``detections[i]`` has keys ``boxes`` (xyxy, normalized), ``scores``,
    ``classes``; ``ground_truths[i]`` is (M, 5): class, cx, cy, w, h.
    """
    scores: List[float] = []
    matches: List[int] = []
    total_gt = 0
    for det, gt in zip(detections, ground_truths):
        gt = np.asarray(gt, dtype=np.float64).reshape(-1, 5)
        gt_cls = gt[gt[:, 0] == class_id]
        gt_boxes = np.stack([
            gt_cls[:, 1] - gt_cls[:, 3] / 2, gt_cls[:, 2] - gt_cls[:, 4] / 2,
            gt_cls[:, 1] + gt_cls[:, 3] / 2, gt_cls[:, 2] + gt_cls[:, 4] / 2,
        ], axis=1) if len(gt_cls) else np.zeros((0, 4))
        total_gt += len(gt_boxes)
        mask = det["classes"] == class_id
        boxes = det["boxes"][mask]
        confs = det["scores"][mask]
        order = np.argsort(-confs)
        used = np.zeros(len(gt_boxes), dtype=bool)
        for rank in order:
            scores.append(float(confs[rank]))
            if len(gt_boxes) == 0:
                matches.append(0)
                continue
            ious = box_iou(boxes[rank:rank + 1], gt_boxes).reshape(-1)
            ious[used] = -1.0
            best = int(np.argmax(ious))
            if ious[best] >= iou_threshold:
                matches.append(1)
                used[best] = True
            else:
                matches.append(0)
    if total_gt == 0:
        return 0.0
    if not scores:
        return 0.0
    order = np.argsort(-np.asarray(scores))
    tp = np.asarray(matches)[order]
    cum_tp = np.cumsum(tp)
    precision = cum_tp / (np.arange(len(tp)) + 1)
    recall = cum_tp / total_gt
    # All-point interpolation (monotone precision envelope).
    precision = np.maximum.accumulate(precision[::-1])[::-1]
    recall = np.concatenate([[0.0], recall])
    precision = np.concatenate([[precision[0] if len(precision) else 0.0],
                                precision])
    return float(np.sum(np.diff(recall) * precision[1:]))


def mean_average_precision(detections: Sequence[dict],
                           ground_truths: Sequence[np.ndarray],
                           num_classes: int,
                           iou_thresholds: Sequence[float] = (0.5,)
                           ) -> Dict[str, float]:
    """mAP averaged over classes and IoU thresholds.

    With thresholds (0.5,) this is mAP@0.5; with ``np.arange(0.5, 1.0,
    0.05)`` it is COCO's mAP@(0.5:0.95).
    """
    per_threshold = []
    for threshold in iou_thresholds:
        aps = [average_precision(detections, ground_truths, cls, threshold)
               for cls in range(num_classes)]
        per_threshold.append(float(np.mean(aps)))
    return {
        "map": float(np.mean(per_threshold)),
        "per_threshold": dict(zip((f"{t:.2f}" for t in iou_thresholds),
                                  per_threshold)),
    }
