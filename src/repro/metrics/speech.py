"""Speech metric: phoneme error rate (the TIMIT row of Table VI).

PER = edit_distance(collapse(framewise predictions), reference) / len(ref),
averaged over utterances.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def collapse_repeats(sequence: np.ndarray) -> np.ndarray:
    """Merge consecutive duplicate frame labels into one phoneme each."""
    sequence = np.asarray(sequence).reshape(-1)
    if sequence.size == 0:
        return sequence
    keep = np.ones(sequence.size, dtype=bool)
    keep[1:] = sequence[1:] != sequence[:-1]
    return sequence[keep]


def edit_distance(a: Sequence[int], b: Sequence[int]) -> int:
    """Levenshtein distance via the classic two-row DP."""
    a = list(a)
    b = list(b)
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, token_a in enumerate(a, start=1):
        current = [i] + [0] * len(b)
        for j, token_b in enumerate(b, start=1):
            cost = 0 if token_a == token_b else 1
            current[j] = min(previous[j] + 1,        # deletion
                             current[j - 1] + 1,     # insertion
                             previous[j - 1] + cost)  # substitution
        previous = current
    return previous[-1]


def phoneme_error_rate(frame_predictions: np.ndarray,
                       references: Sequence[np.ndarray]) -> float:
    """Mean PER over utterances from (N, T) frame label predictions."""
    total_errors = 0
    total_length = 0
    for prediction, reference in zip(frame_predictions, references):
        hypothesis = collapse_repeats(prediction)
        reference = np.asarray(reference).reshape(-1)
        total_errors += edit_distance(hypothesis.tolist(), reference.tolist())
        total_length += max(len(reference), 1)
    return total_errors / max(total_length, 1)
