"""Classification metrics (Tables II, III, IV and the IMDB row of VI)."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Top-1 accuracy from (N, C) logits and (N,) integer targets."""
    return topk_accuracy(logits, targets, k=1)


def topk_accuracy(logits: np.ndarray, targets: np.ndarray, k: int = 1) -> float:
    """Fraction of samples whose target is among the k highest logits."""
    logits = np.asarray(logits)
    targets = np.asarray(targets).reshape(-1)
    if logits.ndim != 2:
        raise ShapeError(f"expected (N, C) logits, got {logits.shape}")
    if logits.shape[0] != targets.shape[0]:
        raise ShapeError("logits/targets length mismatch")
    k = min(k, logits.shape[1])
    top = np.argpartition(-logits, kth=k - 1, axis=1)[:, :k]
    return float(np.mean(np.any(top == targets[:, None], axis=1)))
