"""Language-model metric: perplexity (the PTB row of Table VI)."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def perplexity(logits: np.ndarray, targets: np.ndarray) -> float:
    """exp(mean NLL) from (N, V) logits over all predicted positions."""
    logits = np.asarray(logits, dtype=np.float64)
    targets = np.asarray(targets).reshape(-1)
    if logits.ndim != 2 or logits.shape[0] != targets.shape[0]:
        raise ShapeError(
            f"logits {logits.shape} incompatible with targets {targets.shape}")
    shifted = logits - logits.max(axis=1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    nll = -log_probs[np.arange(len(targets)), targets].mean()
    return float(np.exp(nll))
