"""Pluggable scheme and method registries backing :mod:`repro.api`.

Two registries replace the hand-rolled dispatch that used to live in
``quant.schemes`` (the ``levels_for`` enum switch), ``quant.quantizers``
(the ``mode="paper"`` switch) and ``quant.baselines`` (the ``get_baseline``
dict):

- **schemes** — weight number systems (``fixed``, ``p2``, ``sp2``, ``msq``).
  Each :class:`SchemeEntry` carries the unit-level-set function, the
  quantizer factory the pipeline builds projections with, and (optionally)
  the paper's closed-form projection. The pieces are registered from the
  modules that own them: level sets from :mod:`repro.quant.schemes`,
  factories and paper projections from :mod:`repro.quant.quantizers` /
  :mod:`repro.quant.msq`.
- **methods** — trainable quantization methods: the published baselines of
  Tables III-VI (DoReFa, PACT, ..., EQM), registered by their modules under
  :mod:`repro.quant.baselines` via ``@register_method``.

This module is a dependency leaf (stdlib + :mod:`repro.errors` only) so any
layer may import it without cycles; lookups lazily import the registering
modules, so ``list_schemes()`` works from a cold interpreter.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ConfigurationError

# Modules that register entries as an import side effect. Lookups import
# them on first use so the registries are complete regardless of what the
# caller happened to import first.
_SCHEME_MODULES = (
    "repro.quant.schemes",
    "repro.quant.quantizers",
    "repro.quant.msq",
)
_METHOD_MODULES = ("repro.quant.baselines",)


def _autoload(modules: Tuple[str, ...]) -> None:
    for name in modules:
        importlib.import_module(name)


# ----------------------------------------------------------------------
# Schemes
# ----------------------------------------------------------------------
@dataclass
class SchemeEntry:
    """One registered weight number system and its pluggable pieces."""

    name: str
    levels: Callable            # (bits, m1=None, m2=None) -> np.ndarray
    mixed: bool = False         # True: per-row mix, no single level set
    description: str = ""
    factory: Optional[Callable] = None           # (bits, **kw) -> quantizer
    paper_projection: Optional[Callable] = None  # (spec, x) -> np.ndarray
    aliases: Tuple[str, ...] = ()

    def make(self, bits: int, **kwargs):
        """Build this scheme's quantizer (the pipeline's projection)."""
        if self.factory is None:
            raise ConfigurationError(
                f"scheme {self.name!r} has no registered quantizer factory")
        return self.factory(bits, **kwargs)


_SCHEMES: Dict[str, SchemeEntry] = {}
_SCHEME_ALIASES: Dict[str, str] = {}


def register_scheme(name: str, *, mixed: bool = False, description: str = "",
                    aliases: Tuple[str, ...] = ()) -> Callable:
    """Decorator registering a scheme's unit-level-set function.

    ``@register_scheme("sp2")`` on ``f(bits, m1=None, m2=None)`` makes the
    scheme resolvable via :func:`get_scheme`. Mixed schemes (``msq``)
    register a function that raises — they have no single level set.
    """

    def decorate(levels_fn: Callable) -> Callable:
        key = name.lower()
        if key in _SCHEMES or key in _SCHEME_ALIASES:
            raise ConfigurationError(f"scheme {name!r} already registered")
        _SCHEMES[key] = SchemeEntry(name=key, levels=levels_fn, mixed=mixed,
                                    description=description, aliases=aliases)
        for alias in aliases:
            _SCHEME_ALIASES[alias.lower()] = key
        return levels_fn

    return decorate


def register_scheme_factory(name: str) -> Callable:
    """Decorator attaching the quantizer factory to a registered scheme."""

    def decorate(factory: Callable) -> Callable:
        entry = _scheme_entry(name)
        if entry.factory is not None:
            raise ConfigurationError(
                f"scheme {name!r} already has a quantizer factory")
        entry.factory = factory
        return factory

    return decorate


def register_paper_projection(name: str) -> Callable:
    """Decorator attaching a paper closed-form projection to a scheme."""

    def decorate(projection: Callable) -> Callable:
        entry = _scheme_entry(name)
        if entry.paper_projection is not None:
            raise ConfigurationError(
                f"scheme {name!r} already has a paper projection")
        entry.paper_projection = projection
        return projection

    return decorate


def _scheme_entry(name: str) -> SchemeEntry:
    key = str(name).lower()
    key = _SCHEME_ALIASES.get(key, key)
    if key not in _SCHEMES:
        raise ConfigurationError(
            f"unknown scheme {name!r}; registered: {sorted(_SCHEMES)}")
    return _SCHEMES[key]


def get_scheme(name: str) -> SchemeEntry:
    """Resolve a scheme by name (case-insensitive, aliases honoured)."""
    _autoload(_SCHEME_MODULES)
    return _scheme_entry(getattr(name, "value", name))


def list_schemes() -> Dict[str, str]:
    """All registered schemes: canonical name -> description."""
    _autoload(_SCHEME_MODULES)
    return {key: _SCHEMES[key].description for key in sorted(_SCHEMES)}


# ----------------------------------------------------------------------
# Methods
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MethodEntry:
    """One registered trainable quantization method."""

    name: str                   # canonical registry key, e.g. "lq-nets"
    cls: type                   # BaselineMethod subclass
    description: str = ""
    aliases: Tuple[str, ...] = ()

    @property
    def display(self) -> str:
        """The published name used in tables/logs (the class's ``name``)."""
        return getattr(self.cls, "name", self.name)

    def make(self, **kwargs):
        return self.cls(**kwargs)


_METHODS: Dict[str, MethodEntry] = {}
_METHOD_ALIASES: Dict[str, str] = {}


def _normalize_method(name: str) -> str:
    return name.lower().replace("µ", "u").replace("_", "-")


def register_method(name: str, *, aliases: Tuple[str, ...] = (),
                    description: str = "") -> Callable:
    """Class decorator registering a quantization method by published name.

    ``@register_method("lq-nets", aliases=("lqnets",))`` makes the class
    constructible via :func:`get_method` and reachable from
    ``PipelineConfig(method=...)``.
    """

    def decorate(cls: type) -> type:
        key = _normalize_method(name)
        if key in _METHODS or key in _METHOD_ALIASES:
            raise ConfigurationError(f"method {name!r} already registered")
        _METHODS[key] = MethodEntry(name=key, cls=cls,
                                    description=description, aliases=aliases)
        for alias in aliases:
            _METHOD_ALIASES[_normalize_method(alias)] = key
        return cls

    return decorate


def get_method(name: str) -> MethodEntry:
    """Resolve a method by any of its published spellings."""
    _autoload(_METHOD_MODULES)
    key = _normalize_method(str(name))
    key = _METHOD_ALIASES.get(key, key)
    if key not in _METHODS:
        raise ConfigurationError(
            f"unknown method {name!r}; registered: {sorted(_METHODS)}")
    return _METHODS[key]


def list_methods() -> Dict[str, str]:
    """All registered methods: canonical name -> published display name."""
    _autoload(_METHOD_MODULES)
    return {key: _METHODS[key].display for key in sorted(_METHODS)}
