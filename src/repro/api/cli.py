"""The top-level command line: ``python -m repro <command>``.

One dispatcher over the previously separate argparse front ends, so they
stop drifting apart:

- ``quantize`` — the :mod:`repro.api` pipeline on the model zoo: configure
  -> calibrate (PTQ) -> deploy, writing a verified serving artifact;
- ``export``  — alias of ``quantize`` (the historical spelling; same flags);
- ``serve``   — forwarded to ``python -m repro.serve`` (``export | info |
  run | up``; ``up`` starts a live multi-model server speaking JSON-lines
  on stdin/stdout);
- ``experiment`` — forwarded to ``python -m repro.experiments.runner``
  (paper tables/figures);
- ``registry`` — list the registered schemes and methods.

Forwarded commands delegate to the owning module's ``main(argv)``, and the
quantize/export flow itself lives once in :func:`run_quantize` — the
``python -m repro.serve export`` subcommand calls it too — so flags and
behavior stay defined in exactly one place.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError, ReproError

_USAGE = """\
usage: python -m repro <command> [args...]

commands:
  quantize    configure -> calibrate -> deploy a zoo model via repro.api
  export      alias of 'quantize' (the historical spelling)
  tune        hardware-aware design-space exploration (repro.autotune):
              pick quantization config + FPGA design for a model + device
  serve       serving artifacts: export | info | run | up (live server)
              | cluster (multi-process router over N workers)
  experiment  regenerate a paper table/figure (runner CLI)
  registry    list schemes, methods, search strategies, serving backends,
              cluster placements, the device catalog and the Table VII
              reference designs

'python -m repro <command> --help' shows each command's flags.
"""

# Friendly aliases for the tune CLI (full zoo names also accepted).
_TUNE_MODEL_ALIASES = {
    "resnet": "resnet_tiny",
    "mobilenet": "mobilenet_v2",
    "lstm": "lstm_lm",
    "gru": "gru_speech",
    "yolo": "yolo_lite",
}


def run_quantize(model_name: str, out, scheme: str = "msq", bits: int = 4,
                 act_bits: int = 4, ratio: str = "2:1",
                 calibration_batches: int = 2, batch: int = 16,
                 backend: str = "reference", seed: int = 0) -> int:
    """The one quantize-and-export flow behind every CLI spelling
    (``python -m repro quantize|export`` and ``python -m repro.serve
    export``): build a zoo model, PTQ-calibrate it through the pipeline,
    deploy to a verified artifact and report the priced result."""
    from repro.api import Pipeline, PipelineConfig
    from repro.serve.cli import build_model

    model, sample = build_model(model_name, seed=seed)
    rng = np.random.default_rng(seed + 1)
    config = PipelineConfig(scheme=scheme, weight_bits=bits,
                            act_bits=act_bits, ratio=ratio, batch=batch)
    pipeline = Pipeline(config, model=model)
    pipeline.calibrate([sample(rng, 8) for _ in range(calibration_batches)])
    deployment = pipeline.deploy(name=model_name, path=out, backend=backend)
    print(config.describe())
    print(f"quantized + deployed {model_name} -> {out} "
          f"(backend: {deployment.backend})")
    print(deployment.artifact.summary())
    performance = deployment.simulate(batch=1)
    print(f"FPGA ({config.design}): {performance.latency_ms:.3f} ms/request, "
          f"{performance.throughput_gops:.1f} GOPS")
    return 0


def _cmd_quantize(argv: List[str], prog: str = "quantize") -> int:
    from repro.api import list_schemes
    from repro.serve.cli import MODEL_ZOO

    parser = argparse.ArgumentParser(
        prog=f"python -m repro {prog}",
        description="PTQ a zoo model through the repro.api pipeline and "
                    "write a verified serving artifact.")
    parser.add_argument("--model", default="resnet_tiny",
                        choices=sorted(MODEL_ZOO))
    parser.add_argument("--out", required=True, help="output .npz path")
    parser.add_argument("--scheme", default="msq",
                        choices=sorted(list_schemes()))
    parser.add_argument("--bits", type=int, default=4)
    parser.add_argument("--act-bits", type=int, default=4)
    parser.add_argument("--ratio", default="2:1",
                        help="SP2:fixed row ratio (FPGA characterization)")
    parser.add_argument("--calibration-batches", type=int, default=2)
    parser.add_argument("--batch", type=int, default=16,
                        help="deployment micro-batch size")
    from repro.serve import list_backends

    parser.add_argument("--backend", default="reference",
                        choices=list_backends(),
                        help="serving kernel backend for the deployment")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    return run_quantize(args.model, args.out, scheme=args.scheme,
                        bits=args.bits, act_bits=args.act_bits,
                        ratio=args.ratio,
                        calibration_batches=args.calibration_batches,
                        batch=args.batch, backend=args.backend,
                        seed=args.seed)


def run_tune(model_name: str, device: str, objective: str = "latency",
             strategy=None, budget: int = 50, seed: int = 0,
             accuracy=None, cache=None, out=None, top: int = 10,
             serve_batches=(1, 16), backends=None,
             weight_bits=(4,), pipeline_stages: int = 0,
             stage_devices=None) -> int:
    """The ``python -m repro tune`` flow: build a zoo model, run the
    autotuner for the device, print the Pareto frontier, write the JSON
    report. ``pipeline_stages >= 2`` adds the partition axis: every
    legal way to cut the model's IR into that many pipeline stages is
    co-searched against the single-device plan (the winning per-stage
    placement prints as its own table)."""
    import numpy as np

    from repro.autotune import tune
    from repro.serve.cli import build_model

    model, sample = build_model(_TUNE_MODEL_ALIASES.get(model_name,
                                                        model_name),
                                seed=seed)
    rng = np.random.default_rng(seed + 1)
    sample_input = sample(rng, 4)
    kwargs = {}
    if backends:
        kwargs["backends"] = tuple(backends)
    if accuracy == "calibration":
        # The calibration proxy scores candidates on real forward passes;
        # synthesize its batches from the model's own sampler.
        kwargs["calibration"] = [sample(rng, 8) for _ in range(2)]
    if pipeline_stages and pipeline_stages >= 2:
        from itertools import combinations

        from repro.serve.export import build_artifact
        from repro.serve.ir import lower_artifact
        from repro.serve.partition import legal_cut_points

        graph = lower_artifact(build_artifact(model, sample_input,
                                              verify=False))
        legal = [point.op_index for point in legal_cut_points(graph)]
        options = [tuple(combo) for combo
                   in combinations(legal, pipeline_stages - 1)]
        if not options:
            raise ConfigurationError(
                f"{model_name} has only {len(legal)} legal cut point(s); "
                f"cannot form {pipeline_stages} pipeline stages")
        # The single-device plan stays in the race — the tuner should
        # only pick a pipeline when it actually wins.
        kwargs["cuts"] = tuple([()] + options)
    if stage_devices:
        kwargs["stage_devices"] = tuple(stage_devices)
    result = tune(model, device=device, objective=objective,
                  strategy=strategy, budget=budget, seed=seed,
                  accuracy=accuracy, cache=cache,
                  sample_input=sample_input,
                  serve_batches=tuple(serve_batches),
                  weight_bits=tuple(weight_bits), **kwargs)
    print(result.format_table(limit=top))
    best = result.best
    print(f"\nchosen: {best.candidate.describe()} — "
          f"{best.latency_ms_per_request:.3f} ms/request, "
          f"{best.requests_per_second:.1f} req/s "
          f"(strategy: {result.strategy}, "
          f"{len(result.evaluations)} candidates, "
          f"cache hits {result.cache_stats.get('hits', 0)})")
    print(f"config: {result.config().describe()}")
    if result.layer_ratios:
        print(f"per-layer ratio refinements: {len(result.layer_ratios)} "
              f"layers")
    if out is not None:
        result.save_report(out)
        print(f"report written to {out}")
    return 0


def _cmd_tune(argv: List[str]) -> int:
    from repro.autotune import OBJECTIVES, list_strategies
    from repro.serve import list_backends
    from repro.serve.cli import MODEL_ZOO

    parser = argparse.ArgumentParser(
        prog="python -m repro tune",
        description="Hardware-aware design-space exploration: search "
                    "quantization config x FPGA design for a model and "
                    "device, print the Pareto frontier, write a JSON "
                    "report.")
    parser.add_argument("--model", default="resnet_tiny",
                        choices=sorted(set(MODEL_ZOO)
                                       | set(_TUNE_MODEL_ALIASES)))
    parser.add_argument("--device", required=True,
                        help="catalog device (e.g. zu3eg, XC7Z045; see "
                             "'python -m repro registry')")
    parser.add_argument("--objective", default="latency",
                        choices=OBJECTIVES)
    parser.add_argument("--strategy", default=None,
                        choices=sorted(list_strategies()),
                        help="default: grid for small spaces, else greedy")
    parser.add_argument("--budget", type=int, default=50,
                        help="max unique candidates to price")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--accuracy", default=None,
                        choices=("mse", "calibration", "gaussian"),
                        help="accuracy proxy (default: layerwise MSE)")
    parser.add_argument("--cache", default=None,
                        help="persistent evaluation-cache path "
                             "(re-tunes become incremental)")
    parser.add_argument("--out", default=None,
                        help="write the JSON tuning report here")
    parser.add_argument("--top", type=int, default=10,
                        help="ranked candidates to print")
    parser.add_argument("--serve-batches", type=int, nargs="+",
                        default=(1, 16),
                        help="serving micro-batch sizes to search")
    parser.add_argument("--bits", type=int, nargs="+", default=(4,),
                        help="weight bit-widths to search")
    parser.add_argument("--backends", nargs="+", default=None,
                        choices=list_backends(),
                        help="serving kernel backends to search")
    parser.add_argument("--pipeline-stages", type=int, default=0,
                        help="co-search multi-device pipeline partitions "
                             "with this many stages (every legal cut "
                             "combination + the uncut plan; the winning "
                             "per-stage table is printed)")
    parser.add_argument("--stage-devices", nargs="+", default=None,
                        metavar="DEVICE",
                        help="device per pipeline stage (cycled when "
                             "shorter than the stage count; default: "
                             "--device on every stage)")
    args = parser.parse_args(argv)
    return run_tune(args.model, args.device, objective=args.objective,
                    strategy=args.strategy, budget=args.budget,
                    seed=args.seed, accuracy=args.accuracy,
                    cache=args.cache, out=args.out, top=args.top,
                    serve_batches=args.serve_batches,
                    backends=args.backends, weight_bits=args.bits,
                    pipeline_stages=args.pipeline_stages,
                    stage_devices=args.stage_devices)


def _cmd_registry(argv: List[str]) -> int:
    from repro.api import list_methods, list_schemes
    from repro.autotune import list_accuracy_proxies, list_strategies
    from repro.fpga.devices import get_device, list_devices
    from repro.fpga.resources import (
        design_resources,
        peak_throughput_gops,
        reference_designs,
    )
    from repro.serve.backends import list_backends
    from repro.serve.placement import list_placements

    parser = argparse.ArgumentParser(
        prog="python -m repro registry",
        description="List the registered schemes, methods, search "
                    "strategies, accuracy proxies, the device catalog "
                    "and the Table VII reference designs.")
    parser.parse_args(argv)
    print("schemes:")
    for name, description in list_schemes().items():
        print(f"  {name:10s} {description}")
    print("methods:")
    for name, display in list_methods().items():
        print(f"  {name:10s} {display}")
    print("search strategies (python -m repro tune --strategy):")
    for name, description in sorted(list_strategies().items()):
        print(f"  {name:10s} {description}")
    print("search axes (repro.autotune.SearchSpace; python -m repro tune):")
    for axis, description in (
            ("batches", "accelerator Bat lane counts"),
            ("block_ins", "GEMM Blk_in widths"),
            ("sp2_columns", "SP2:fixed PE column splits"),
            ("weight_bits", "weight bit-widths (--bits)"),
            ("serve_batches", "serving micro-batch sizes "
                              "(--serve-batches)"),
            ("backends", "serving kernel backends (--backends)"),
            ("cuts", "multi-device pipeline partition points — tuples "
                     "of IR op indices, () = single device "
                     "(--pipeline-stages / --stage-devices; "
                     "repro.serve.partition)"),
    ):
        print(f"  {axis:14s} {description}")
    print("accuracy proxies (python -m repro tune --accuracy):")
    for name, description in list_accuracy_proxies().items():
        print(f"  {name:12s} {description}")
    print("devices (python -m repro tune --device):")
    for name in list_devices():
        device = get_device(name)
        print(f"  {name:10s} LUT {device.lut:>8,}  FF {device.ff:>8,}  "
              f"BRAM36 {device.bram36:>5g}  DSP {device.dsp:>5,}")
    print("reference designs (Table VII):")
    for name, design in reference_designs().items():
        usage = design_resources(design)
        print(f"  {name:6s} {design.describe():44s} "
              f"peak {peak_throughput_gops(design):6.1f} GOPS  "
              f"LUT {usage.lut:>9,.0f}  DSP {usage.dsp:>5,.0f}")
    print("serving backends (python -m repro.serve run --backend):")
    for name in list_backends():
        print(f"  {name}")
    print("cluster placements (python -m repro.serve cluster "
          "--placement):")
    for name, description in list_placements().items():
        print(f"  {name:16s} {description}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_USAGE, end="")
        return 0
    command, rest = argv[0], argv[1:]
    try:
        if command == "quantize":
            return _cmd_quantize(rest)
        if command == "export":
            return _cmd_quantize(rest, prog="export")
        if command == "tune":
            return _cmd_tune(rest)
        if command == "registry":
            return _cmd_registry(rest)
        if command == "serve":
            from repro.serve.cli import main as serve_main

            return serve_main(rest)
        if command == "experiment":
            from repro.experiments.runner import main as runner_main

            return runner_main(rest)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(f"error: unknown command {command!r}\n\n{_USAGE}",
          end="", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main())
