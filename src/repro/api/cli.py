"""The top-level command line: ``python -m repro <command>``.

One dispatcher over the previously separate argparse front ends, so they
stop drifting apart:

- ``quantize`` — the :mod:`repro.api` pipeline on the model zoo: configure
  -> calibrate (PTQ) -> deploy, writing a verified serving artifact;
- ``export``  — alias of ``quantize`` (the historical spelling; same flags);
- ``serve``   — forwarded to ``python -m repro.serve`` (``export | info |
  run | up``; ``up`` starts a live multi-model server speaking JSON-lines
  on stdin/stdout);
- ``experiment`` — forwarded to ``python -m repro.experiments.runner``
  (paper tables/figures);
- ``registry`` — list the registered schemes and methods.

Forwarded commands delegate to the owning module's ``main(argv)``, and the
quantize/export flow itself lives once in :func:`run_quantize` — the
``python -m repro.serve export`` subcommand calls it too — so flags and
behavior stay defined in exactly one place.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.errors import ReproError

_USAGE = """\
usage: python -m repro <command> [args...]

commands:
  quantize    configure -> calibrate -> deploy a zoo model via repro.api
  export      alias of 'quantize' (the historical spelling)
  serve       serving artifacts: export | info | run | up (live server)
  experiment  regenerate a paper table/figure (runner CLI)
  registry    list registered quantization schemes and methods

'python -m repro <command> --help' shows each command's flags.
"""


def run_quantize(model_name: str, out, scheme: str = "msq", bits: int = 4,
                 act_bits: int = 4, ratio: str = "2:1",
                 calibration_batches: int = 2, batch: int = 16,
                 backend: str = "reference", seed: int = 0) -> int:
    """The one quantize-and-export flow behind every CLI spelling
    (``python -m repro quantize|export`` and ``python -m repro.serve
    export``): build a zoo model, PTQ-calibrate it through the pipeline,
    deploy to a verified artifact and report the priced result."""
    from repro.api import Pipeline, PipelineConfig
    from repro.serve.cli import build_model

    model, sample = build_model(model_name, seed=seed)
    rng = np.random.default_rng(seed + 1)
    config = PipelineConfig(scheme=scheme, weight_bits=bits,
                            act_bits=act_bits, ratio=ratio, batch=batch)
    pipeline = Pipeline(config, model=model)
    pipeline.calibrate([sample(rng, 8) for _ in range(calibration_batches)])
    deployment = pipeline.deploy(name=model_name, path=out, backend=backend)
    print(config.describe())
    print(f"quantized + deployed {model_name} -> {out} "
          f"(backend: {deployment.backend})")
    print(deployment.artifact.summary())
    performance = deployment.simulate(batch=1)
    print(f"FPGA ({config.design}): {performance.latency_ms:.3f} ms/request, "
          f"{performance.throughput_gops:.1f} GOPS")
    return 0


def _cmd_quantize(argv: List[str], prog: str = "quantize") -> int:
    from repro.api import list_schemes
    from repro.serve.cli import MODEL_ZOO

    parser = argparse.ArgumentParser(
        prog=f"python -m repro {prog}",
        description="PTQ a zoo model through the repro.api pipeline and "
                    "write a verified serving artifact.")
    parser.add_argument("--model", default="resnet_tiny",
                        choices=sorted(MODEL_ZOO))
    parser.add_argument("--out", required=True, help="output .npz path")
    parser.add_argument("--scheme", default="msq",
                        choices=sorted(list_schemes()))
    parser.add_argument("--bits", type=int, default=4)
    parser.add_argument("--act-bits", type=int, default=4)
    parser.add_argument("--ratio", default="2:1",
                        help="SP2:fixed row ratio (FPGA characterization)")
    parser.add_argument("--calibration-batches", type=int, default=2)
    parser.add_argument("--batch", type=int, default=16,
                        help="deployment micro-batch size")
    from repro.serve import list_backends

    parser.add_argument("--backend", default="reference",
                        choices=list_backends(),
                        help="serving kernel backend for the deployment")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    return run_quantize(args.model, args.out, scheme=args.scheme,
                        bits=args.bits, act_bits=args.act_bits,
                        ratio=args.ratio,
                        calibration_batches=args.calibration_batches,
                        batch=args.batch, backend=args.backend,
                        seed=args.seed)


def _cmd_registry(argv: List[str]) -> int:
    from repro.api import list_methods, list_schemes

    parser = argparse.ArgumentParser(
        prog="python -m repro registry",
        description="List the registered schemes and methods.")
    parser.parse_args(argv)
    print("schemes:")
    for name, description in list_schemes().items():
        print(f"  {name:10s} {description}")
    print("methods:")
    for name, display in list_methods().items():
        print(f"  {name:10s} {display}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_USAGE, end="")
        return 0
    command, rest = argv[0], argv[1:]
    try:
        if command == "quantize":
            return _cmd_quantize(rest)
        if command == "export":
            return _cmd_quantize(rest, prog="export")
        if command == "registry":
            return _cmd_registry(rest)
        if command == "serve":
            from repro.serve.cli import main as serve_main

            return serve_main(rest)
        if command == "experiment":
            from repro.experiments.runner import main as runner_main

            return runner_main(rest)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(f"error: unknown command {command!r}\n\n{_USAGE}",
          end="", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main())
