"""The unified configure -> quantize -> deploy pipeline.

One front door over what used to be four disjoint entry points::

    from repro.api import Pipeline, PipelineConfig

    pipeline = Pipeline(PipelineConfig(scheme="msq", ratio="2:1"))
    quantized = pipeline.fit(make_batches, loss_fn, model=model)   # ADMM QAT
    # ... or, training-free:  pipeline.calibrate(batches, model=model)
    deployment = pipeline.deploy(batch=16)
    logits = deployment.predict(x)          # bit-identical to eager

Stages and their return handles:

- :meth:`Pipeline.fit` — quantization-aware training: the paper's ADMM+STE
  recipe (``method=None``) or any registered baseline method
  (``method="lsq"``, ...). Returns a :class:`QuantizedModel`.
- :meth:`Pipeline.calibrate` — post-training quantization: activation-range
  calibration plus a one-shot projection onto the configured scheme.
  Returns a :class:`QuantizedModel`.
- :meth:`Pipeline.deploy` / :meth:`QuantizedModel.deploy` — freeze into a
  packed-weight artifact (bit-exactness verified at export), load it into
  an execution plan, and wrap engine + scheduler in a :class:`Deployment`
  whose ``predict`` replaces the old export_model/ExecutionPlan/
  InferenceEngine dance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

import numpy as np

from repro.api.config import PipelineConfig
from repro.api.registry import get_method
from repro.errors import ConfigurationError
from repro.fpga.resources import GemmDesign
from repro.nn.module import Module
from repro.quant.baselines.common import train_baseline
from repro.quant.partition import sp2_row_fraction_of
from repro.quant.ste import ActivationQuantizer
from repro.quant.trainer import run_qat
from repro.serve.backends import DEFAULT_BACKEND
from repro.serve.engine import InferenceEngine
from repro.serve.export import build_artifact, eager_forward
from repro.serve.plan import ExecutionPlan
from repro.serve.ptq import post_training_quantize
from repro.serve.scheduler import BatchScheduler, ServeStats
from repro.serve.server import ModelServer


def _batch_input(batch) -> Optional[np.ndarray]:
    """Best-effort model input of one training batch (for deploy samples).

    Every task in the repo yields either a bare input array or an
    ``(inputs, targets, ...)`` tuple; anything else returns ``None`` and
    deploy() will ask for an explicit ``sample_input=``.
    """
    if isinstance(batch, np.ndarray):
        return batch
    if isinstance(batch, (tuple, list)) and batch \
            and isinstance(batch[0], np.ndarray):
        return batch[0]
    return None


def _resolve_design(config: PipelineConfig, design) -> GemmDesign:
    """Resolve a deploy-time design spec (``design=`` argument wins over
    the config's target); accepts a :class:`GemmDesign`, a reference
    name, or ``"auto:<device>[@<batch>]"``."""
    from repro.fpga.characterize import resolve_design

    return resolve_design(design if design is not None else config.design)


# ----------------------------------------------------------------------
# Handles
# ----------------------------------------------------------------------
@dataclass
class QuantizedModel:
    """A quantized model plus everything deployment needs.

    Exposes the same fields as the old ``QATResult`` (``model``,
    ``layer_results``, ``act_quantizers``, ``history``) so harnesses that
    inspected training results keep working, and adds the deploy step.
    """

    model: Module
    layer_results: Dict[str, object]
    config: PipelineConfig
    act_quantizers: Dict[str, object] = field(default_factory=dict)
    history: List[Dict[str, float]] = field(default_factory=list)
    sample_input: Optional[np.ndarray] = None

    def predict(self, batch: np.ndarray) -> np.ndarray:
        """Eager quantized inference on a ``(N, ...)`` batch."""
        return eager_forward(self.model, np.asarray(batch))

    def sp2_row_fraction(self) -> float:
        """Achieved SP2 row share across MSQ layers (sanity vs. target)."""
        return sp2_row_fraction_of(self.layer_results)

    # ------------------------------------------------------------------
    def export(self, sample_input: Optional[np.ndarray] = None,
               name: str = "model", path=None, verify: bool = True):
        """Freeze into a :class:`~repro.serve.artifact.ServeArtifact`."""
        sample = self._sample(sample_input)
        return build_artifact(self.model, sample,
                              layer_results=self.layer_results,
                              name=name, path=path, verify=verify)

    def deploy(self, batch: Optional[int] = None,
               sample_input: Optional[np.ndarray] = None,
               design: Optional[GemmDesign] = None,
               name: str = "model", path=None,
               backend: str = DEFAULT_BACKEND,
               max_wait_ms: Optional[float] = None,
               devices: Optional[List] = None,
               cuts: Optional[List[int]] = None):
        """Export, compile and wrap this model into a :class:`Deployment`.

        ``backend`` selects the serving kernel set (see
        :func:`repro.serve.list_backends`); any optimized backend is
        verified bit-identical to the reference at compile time.
        ``max_wait_ms`` sets the deployment's dynamic-batching deadline
        (how long a partial batch may wait for co-riders when served
        through ``serve()`` or a :class:`~repro.serve.server.ModelServer`).

        ``devices=[...]`` (>= 2 entries: device names, ``"auto:"`` specs
        or per-stage :class:`GemmDesign`\\ s) partitions the model across
        the listed devices instead and returns a
        :class:`PipelineDeployment` — one pipeline stage per device,
        outputs bit-identical to the single-device plan. ``cuts`` pins
        the IR cut points; by default stages are MAC-balanced.
        """
        artifact = self.export(sample_input, name=name, path=path)
        resolved_batch = batch if batch is not None else self.config.batch
        if devices is not None:
            return PipelineDeployment(artifact, devices,
                                      batch=resolved_batch, cuts=cuts,
                                      backend=backend, name=name,
                                      max_wait_ms=max_wait_ms)
        return Deployment(artifact, batch=resolved_batch,
                          design=_resolve_design(self.config, design),
                          backend=backend, max_wait_ms=max_wait_ms)

    def _sample(self, sample_input) -> np.ndarray:
        sample = sample_input if sample_input is not None else self.sample_input
        if sample is None:
            raise ConfigurationError(
                "no sample input available; pass sample_input= (calibrate() "
                "remembers its first calibration batch automatically)")
        return np.asarray(sample)


class Deployment:
    """A deployed model: artifact + execution plan + engine + scheduler.

    ``deployment.predict(x)`` serves a single request or an ``(N, ...)``
    batch (split into micro-batches of at most ``batch``); results are
    bit-identical to the eager quantized model — the artifact export
    verified that. ``serve()`` drains payloads through the dynamic
    batcher for full latency/throughput accounting, and ``server()``
    hosts this deployment in an async multi-model
    :class:`~repro.serve.server.ModelServer` (futures, time-based
    batching via ``max_wait_ms``, lifecycle).
    """

    def __init__(self, artifact, batch: int = 16,
                 design=None,
                 backend: str = DEFAULT_BACKEND,
                 max_wait_ms: Optional[float] = None):
        if int(batch) < 1:
            raise ConfigurationError(f"batch must be >= 1, got {batch}")
        if max_wait_ms is not None and max_wait_ms < 0:
            raise ConfigurationError(
                f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if isinstance(design, str):
            from repro.fpga.characterize import resolve_design

            design = resolve_design(design)
        self.artifact = artifact
        self.plan = ExecutionPlan(artifact, backend=backend)
        self.engine = InferenceEngine(self.plan, design=design)
        self.batch = int(batch)
        self.max_wait_ms = max_wait_ms

    @classmethod
    def load(cls, path, batch: int = 16,
             design: Optional[GemmDesign] = None,
             backend: str = DEFAULT_BACKEND,
             max_wait_ms: Optional[float] = None) -> "Deployment":
        """Reload a saved artifact into a servable deployment."""
        from repro.serve.artifact import ServeArtifact

        return cls(ServeArtifact.load(path), batch=batch, design=design,
                   backend=backend, max_wait_ms=max_wait_ms)

    @property
    def backend(self) -> str:
        return self.plan.backend

    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Serve one request (per-request shape) or an ``(N, ...)`` batch."""
        x = np.asarray(x)
        if tuple(x.shape) == self.plan.input_shape:
            return self.engine.infer(x[None])[0]
        chunks = [self.engine.infer(x[start:start + self.batch])
                  for start in range(0, x.shape[0], self.batch)]
        return np.concatenate(chunks, axis=0)

    def serve(self, payloads: Iterable[np.ndarray],
              max_wait_ms: Optional[float] = None,
              clock=None) -> ServeStats:
        """Drain single-request payloads through the dynamic batcher.

        Same micro-batching machinery as :class:`ModelServer`, driven
        synchronously on the calling thread; the resulting ``ServeStats``
        are bit-identical to the legacy ``BatchScheduler`` drain.
        ``max_wait_ms`` overrides the deployment's batching deadline for
        this drain (irrelevant when all payloads are pre-queued, but kept
        symmetric with the server path); ``clock`` is injectable for
        deterministic accounting in tests.
        """
        server = ModelServer(workers=0, max_batch=self.batch,
                             **({"clock": clock} if clock is not None
                                else {}))
        server.add("model", self,
                   max_wait_ms=max_wait_ms if max_wait_ms is not None
                   else self.max_wait_ms)
        futures = []
        for payload in payloads:
            future = server.submit("model", payload)
            if future.done() and future.exception() is not None:
                raise future.exception()
            futures.append(future)
        server.drain()
        # The legacy scheduler propagated batch-execution failures; so
        # does this drain (the server records them per model, but a
        # synchronous caller wants the exception).
        for future in futures:
            error = future.exception(timeout=0)
            if error is not None:
                raise error
        stats = server.stats()["model"].to_serve_stats()
        server.close()
        return stats

    def server(self, name: str = "model", workers: int = 2,
               max_wait_ms: Optional[float] = None,
               warmup: bool = False) -> ModelServer:
        """Wrap this deployment in a fresh async :class:`ModelServer`
        hosting it under ``name`` (load more models with ``server.load``)."""
        server = ModelServer(workers=workers, max_batch=self.batch)
        server.add(name, self, max_wait_ms=max_wait_ms, warmup=warmup)
        return server

    def cluster(self, name: str = "model", workers: int = 2,
                placement: str = "least_loaded",
                max_wait_ms: Optional[float] = None,
                capacity: int = 64, clock=None, **worker_kwargs):
        """Serve this deployment from an in-process worker fleet.

        Builds ``workers`` :class:`~repro.serve.cluster.LocalWorker`\\ s,
        each hosting this deployment under ``name`` (versioned + aliased
        for rolling restarts), behind a
        :class:`~repro.serve.cluster.ClusterRouter` with the chosen
        placement policy. With ``clock`` injected the whole cluster is
        deterministic (drive it with ``router.pump()``/``drain()``) —
        the same fleet the chaos tests run. For real multi-process
        scaling, ``save()`` the artifact and use
        ``ClusterRouter.spawn({name: path}, workers=N)``.
        """
        from repro.serve.cluster import ClusterRouter, LocalWorker

        clock_kwargs = {} if clock is None else {"clock": clock}
        fleet = [LocalWorker(f"w{index}", {name: self},
                             max_batch=self.batch,
                             max_wait_ms=max_wait_ms
                             if max_wait_ms is not None
                             else self.max_wait_ms,
                             **clock_kwargs, **worker_kwargs)
                 for index in range(workers)]
        return ClusterRouter(fleet, placement, capacity=capacity,
                             **clock_kwargs)

    def scheduler(self, **kwargs) -> BatchScheduler:
        """Deprecated: a legacy synchronous scheduler over this engine."""
        import warnings

        warnings.warn(
            "Deployment.scheduler is deprecated; use Deployment.serve, "
            "or Deployment.server() / repro.serve.ModelServer for the "
            "async API", DeprecationWarning, stacklevel=2)
        kwargs.setdefault("max_batch", self.batch)
        return BatchScheduler(self.engine, **kwargs)

    # ------------------------------------------------------------------
    def simulate(self, batch: Optional[int] = None, **sim_kwargs):
        """Price one plan pass on the configured accelerator design."""
        return self.plan.simulate(self.engine.design,
                                  batch=batch if batch is not None
                                  else self.batch, **sim_kwargs)

    def save(self, path) -> None:
        self.artifact.save(path)

    @property
    def stats(self):
        return self.engine.stats

    def describe(self) -> str:
        return self.plan.describe()


def _resolve_stage_designs(devices) -> List[GemmDesign]:
    """Per-stage design specs -> concrete :class:`GemmDesign` list.

    Each entry is a ``GemmDesign``, a reference-design name (``"D2-3"``),
    an ``"auto:<device>"`` spec, or a bare device catalog name (sugar for
    ``"auto:<device>"`` — deploying onto a device means characterizing a
    design for it)."""
    from repro.fpga.characterize import resolve_design
    from repro.fpga.devices import get_device

    designs = []
    for entry in devices:
        if isinstance(entry, str) and not entry.lower().startswith("auto:"):
            try:
                get_device(entry)
            except ConfigurationError:
                pass                    # a reference-design name
            else:
                entry = f"auto:{entry}"
        designs.append(resolve_design(entry))
    return designs


class PipelineDeployment:
    """A model partitioned across several devices, served as a pipeline.

    The multi-device sibling of :class:`Deployment`: the artifact is cut
    at legal IR boundaries (:func:`repro.serve.partition.auto_cuts`
    MAC-balances the stages unless ``cuts`` pins them), every stage gets
    its own :class:`GemmDesign`, and requests stream through a
    :class:`~repro.serve.partition.pipeline.PipelineEngine` — outputs are
    bit-identical to the single-device plan, verified at split time.
    """

    def __init__(self, artifact, devices, *, batch: int = 16,
                 backend: str = DEFAULT_BACKEND,
                 cuts: Optional[List[int]] = None,
                 max_wait_ms: Optional[float] = None,
                 workers: int = 1, name: Optional[str] = None):
        from repro.serve.partition import PipelineEngine

        if len(list(devices)) < 2:
            raise ConfigurationError(
                "a pipeline deployment needs >= 2 devices; use deploy() "
                "without devices= for a single accelerator")
        if int(batch) < 1:
            raise ConfigurationError(f"batch must be >= 1, got {batch}")
        self.designs = _resolve_stage_designs(devices)
        self.artifact = artifact
        self.engine = PipelineEngine.from_artifact(
            artifact, stages=len(self.designs), cuts=cuts, name=name,
            backend=backend, designs=self.designs, max_batch=int(batch),
            max_wait_ms=max_wait_ms, workers=workers)
        self.partition = self.engine.partition
        self.batch = int(batch)
        self.max_wait_ms = max_wait_ms

    @classmethod
    def load(cls, path, devices, **kwargs) -> "PipelineDeployment":
        """Partition a saved artifact across ``devices``."""
        from repro.serve.artifact import ServeArtifact

        return cls(ServeArtifact.load(path), devices, **kwargs)

    @property
    def backend(self) -> str:
        return self.engine.plan().backend

    @property
    def num_stages(self) -> int:
        return self.engine.num_stages

    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Serve one request (per-request shape) or an ``(N, ...)`` batch
        through the stage pipeline."""
        x = np.asarray(x)
        plan = self.engine.plan()
        if tuple(x.shape) == plan.input_shape:
            return self.engine.predict(self.engine.name, x)
        futures = self.engine.submit_many(self.engine.name, list(x))
        self.engine.drain()
        return np.stack([future.result(timeout=60.0) for future in futures])

    def submit(self, payload):
        return self.engine.submit(self.engine.name, payload)

    def drain(self):
        return self.engine.drain()

    def stats(self):
        """Stage-dimensioned stats (aggregate + one row per stage)."""
        return self.engine.stats()

    def format_stats(self) -> str:
        return self.engine.format_stats()

    def save(self, stem) -> List[str]:
        """Save the per-stage artifacts (``<stem>.stageK.npz``)."""
        return self.partition.save(stem)

    def describe(self) -> str:
        return self.partition.describe()

    def close(self, drain: bool = True) -> None:
        self.engine.close(drain=drain)

    def __enter__(self) -> "PipelineDeployment":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Pipeline
# ----------------------------------------------------------------------
class Pipeline:
    """Run one :class:`PipelineConfig` end to end.

    The pipeline object carries the config, an optional default model, and
    the latest :class:`QuantizedModel` (``.result``), so the common path is
    three chained calls: construct, ``fit``/``calibrate``, ``deploy``.
    """

    def __init__(self, config: Optional[PipelineConfig] = None,
                 model: Optional[Module] = None, **overrides):
        if config is None:
            config = PipelineConfig(**overrides)
        elif overrides:
            config = config.replace(**overrides)
        self.config = config
        self.model = model
        self.result: Optional[QuantizedModel] = None
        self.tuned = None          # latest autotune.TuneResult (tune())

    # ------------------------------------------------------------------
    def fit(self, make_batches: Callable[[int], Iterable],
            loss_fn: Callable, model: Optional[Module] = None,
            eval_fn: Optional[Callable[[Module], float]] = None,
            sample_input: Optional[np.ndarray] = None) -> QuantizedModel:
        """Quantization-aware training.

        ``method=None`` runs the paper's ADMM+STE recipe (Alg. 1/2);
        a registered method name trains that baseline under the shared STE
        loop — identical call either way, which is what lets the
        Tables III-VI harnesses sweep methods with one config change.

        Like ``calibrate()``, the first training batch's input is remembered
        as the deploy-time sample unless ``sample_input=`` overrides it.
        """
        if self.config.layer_ratios is not None:
            raise ConfigurationError(
                "layer_ratios is a PTQ-only refinement (calibrate()); QAT "
                "trains at the global PE ratio — rebuild the config with "
                "layer_ratios=None to fit() it")
        model = self._model(model)
        captured: Dict[str, np.ndarray] = {}

        def capturing_make_batches(epoch):
            for batch in make_batches(epoch):
                if "sample" not in captured:
                    sample = _batch_input(batch)
                    if sample is not None:
                        captured["sample"] = sample
                yield batch

        if self.config.uses_admm:
            qat = run_qat(model, capturing_make_batches, loss_fn,
                          self.config.to_qat_config(), eval_fn)
            layer_results = qat.layer_results
            act_quantizers, history = qat.act_quantizers, qat.history
        else:
            method = get_method(self.config.method).make(
                weight_bits=self.config.weight_bits,
                act_bits=self.config.act_bits)
            history = train_baseline(
                model, capturing_make_batches, loss_fn, method,
                epochs=self.config.epochs, lr=self.config.lr,
                momentum=self.config.momentum,
                weight_decay=self.config.weight_decay, eval_fn=eval_fn)
            # Baseline projections are not FPGA-encodable level sets; the
            # already-projected weights export as raw float32.
            layer_results, act_quantizers = {}, {}
        if sample_input is None:
            sample_input = captured.get("sample")
        self.result = QuantizedModel(
            model=model, layer_results=layer_results, config=self.config,
            act_quantizers=act_quantizers, history=history,
            sample_input=np.asarray(sample_input)
            if sample_input is not None else None)
        return self.result

    def calibrate(self, batches: Iterable, model: Optional[Module] = None
                  ) -> QuantizedModel:
        """Post-training quantization (no training, milliseconds).

        ``batches`` yields ``(N, ...)`` model inputs; they calibrate the
        activation clipping ranges, then every quantizable weight is
        projected onto the configured scheme in one shot. The first batch
        is remembered as the deploy-time sample input.
        """
        if not self.config.uses_admm:
            raise ConfigurationError(
                f"method {self.config.method!r} requires training; "
                "use fit() (calibrate() is the training-free PTQ path)")
        model = self._model(model)
        batches = list(batches)
        if not batches:
            raise ConfigurationError("calibrate() needs >= 1 batch")
        layer_results = post_training_quantize(
            model, batches,
            weight_bits=self.config.weight_bits,
            act_bits=self.config.act_bits,
            ratio=self.config.ratio,
            skip_first=self.config.act_skip_first,
            scheme=self.config.scheme,
            alpha=self.config.alpha,
            quantize_activations=self.config.quantize_activations,
            skip_modules=self.config.skip_modules,
            act_skip_modules=self.config.act_skip_modules,
            layer_bits=dict(self.config.layer_bits)
            if self.config.layer_bits is not None else None,
            layer_ratios=dict(self.config.layer_ratios)
            if self.config.layer_ratios is not None else None)
        self.result = QuantizedModel(
            model=model, layer_results=layer_results, config=self.config,
            act_quantizers={
                name: module.act_quant
                for name, module in model.named_modules()
                if isinstance(getattr(module, "act_quant", None),
                              ActivationQuantizer)},
            sample_input=np.asarray(batches[0]))
        return self.result

    def deploy(self, batch: Optional[int] = None,
               sample_input: Optional[np.ndarray] = None,
               design: Optional[GemmDesign] = None,
               name: str = "model", path=None,
               backend: Optional[str] = None,
               max_wait_ms: Optional[float] = None,
               devices: Optional[List] = None,
               cuts: Optional[List[int]] = None):
        """Deploy the latest ``fit()``/``calibrate()`` result.

        ``backend`` defaults to the tuned backend after a ``tune()``
        (otherwise the stack default). ``devices=[...]`` partitions the
        model across several devices and returns a
        :class:`PipelineDeployment` (one pipeline stage per device); a
        prior ``tune()`` whose winner carries cut points supplies them
        automatically unless ``cuts`` overrides.
        """
        if self.result is None:
            raise ConfigurationError(
                "nothing to deploy; run fit() or calibrate() first")
        if backend is None:
            backend = self.tuned.backend if self.tuned is not None \
                else DEFAULT_BACKEND
        if devices is not None and cuts is None and self.tuned is not None \
                and self.tuned.best.candidate.cuts:
            tuned_cuts = list(self.tuned.best.candidate.cuts)
            if len(tuned_cuts) + 1 == len(list(devices)):
                cuts = tuned_cuts
        return self.result.deploy(batch=batch, sample_input=sample_input,
                                  design=design, name=name, path=path,
                                  backend=backend, max_wait_ms=max_wait_ms,
                                  devices=devices, cuts=cuts)

    # ------------------------------------------------------------------
    def tune(self, device, objective: str = "latency",
             model: Optional[Module] = None,
             sample_input: Optional[np.ndarray] = None,
             apply: bool = True, **tune_kwargs):
        """Hardware-aware design-space exploration for this pipeline.

        Runs :func:`repro.autotune.tune` for ``device`` over the model's
        workloads (per-layer ratios, weight bits, design block shapes,
        serving batch, backend) and — with ``apply=True``, the default —
        replaces this pipeline's config with the tuned one, so the usual
        ``calibrate()``/``deploy()`` calls pick up the chosen
        quantization settings and :class:`GemmDesign` automatically::

            pipeline = Pipeline(model=model)
            result = pipeline.tune("zu3eg", sample_input=x, budget=50)
            pipeline.calibrate(batches)
            deployment = pipeline.deploy()      # tuned design + backend

        A previous ``fit()``/``calibrate()`` result contributes its model,
        layer results and remembered sample input. Tune **before**
        quantizing when you can: after ``calibrate()``/``fit()`` the
        in-place-quantized weights feed the MSE accuracy proxy, which
        biases its ranking toward the config already applied
        (re-projecting at the incumbent ratio/bits is near-lossless) —
        the hardware side (latency/feasibility) is unaffected. Returns the
        :class:`repro.autotune.TuneResult` (``.frontier``, ``.best``,
        ``.format_table()``, ``.save_report(path)``). Keyword arguments
        (``strategy=``, ``budget=``, ``seed=``, ``cache=``,
        ``accuracy=``, space overrides, ...) forward to the tuner.
        """
        from repro.autotune import tune as autotune_tune

        layer_results = None
        if model is None and self.result is not None:
            model = self.result.model
            layer_results = self.result.layer_results
            if sample_input is None:
                sample_input = self.result.sample_input
        else:
            model = self._model(model)
        result = autotune_tune(model, device=device, objective=objective,
                               sample_input=sample_input,
                               layer_results=layer_results, **tune_kwargs)
        self.tuned = result
        if apply:
            self.config = result.config()
        return result

    # ------------------------------------------------------------------
    def _model(self, model: Optional[Module]) -> Module:
        model = model if model is not None else self.model
        if model is None:
            raise ConfigurationError(
                "no model; pass model= here or to Pipeline(...)")
        self.model = model
        return model
