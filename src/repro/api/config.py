"""The one configuration object of the unified pipeline.

A frozen :class:`PipelineConfig` describes a complete quantization run —
scheme, bit-widths, SP2:fixed partition ratio, training budget and target
device — and is consumed uniformly by every stage: ADMM QAT
(:meth:`~repro.api.pipeline.Pipeline.fit`), post-training calibration
(:meth:`~repro.api.pipeline.Pipeline.calibrate`), baseline-method training
(``method=...``) and deployment
(:meth:`~repro.api.pipeline.Pipeline.deploy`). Validation happens at
construction time, against the live scheme/method registries, so a typo'd
scheme or ratio fails before any training starts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Optional, Tuple, Union

from repro.api.registry import get_method, get_scheme
from repro.errors import ConfigurationError
from repro.fpga.resources import GemmDesign
from repro.quant.formatting import format_signature
from repro.quant.partition import PartitionRatio
from repro.quant.trainer import QATConfig

# The paper's own pipeline (ADMM+STE, Alg. 1/2) — the default "method".
ADMM = "admm"

_LR_SCHEDULES = ("cosine", "step", "none")


@dataclass(frozen=True)
class PipelineConfig:
    """Everything one configure -> quantize -> deploy run needs.

    Parameters
    ----------
    scheme:
        Weight number system, resolved through the scheme registry
        (``"msq"``/``"sp2"``/``"fixed"``/``"p2"``; a
        :class:`~repro.quant.schemes.Scheme` enum member also works).
    method:
        ``None`` or ``"admm"`` runs the paper's ADMM+STE pipeline; any
        registered method name (``"lsq"``, ``"pact"``, ``"lq-nets"``, ...)
        trains that published baseline instead — same config object, same
        ``fit()`` call (Tables III-VI discipline).
    ratio:
        SP2:fixed row ratio from FPGA characterization — an ``"a:b"``
        string (SP2 first), a float SP2 fraction, or a
        :class:`~repro.quant.partition.PartitionRatio`. The default 2:1 is
        the paper's XC7Z045 optimum. Only MSQ consumes it.
    design:
        Accelerator design point used to price deployments: a
        :func:`repro.fpga.resources.reference_designs` key (D2-3 — the
        paper's best published point — by default), an
        ``"auto:<device>[@<batch>]"`` string (run the §VI-A
        characterization search for that device), or a concrete
        :class:`~repro.fpga.resources.GemmDesign` (what
        :meth:`from_tuning` stores — the autotuner's winning design).
    layer_ratios:
        Optional per-layer SP2-fraction overrides (``{name-substring:
        fraction}``), the autotuner's §V-B-guarded refinement. Consumed by
        ``calibrate()`` (PTQ); ``fit()`` rejects it — QAT trains at the
        global PE ratio.
    batch:
        Default micro-batch size of deployments built from this config.
    """

    scheme: str = "msq"
    method: Optional[str] = None
    weight_bits: int = 4
    act_bits: int = 4
    ratio: Union[str, float, PartitionRatio] = "2:1"
    alpha: Union[str, float] = "fit"
    # Training budget (fit) / calibration (calibrate)
    epochs: int = 8
    lr: float = 8e-3
    momentum: float = 0.9
    weight_decay: float = 1e-4
    lr_schedule: str = "cosine"
    lr_step_size: int = 3
    rho: float = 1e-2
    quantize_activations: bool = True
    act_skip_first: bool = True
    skip_modules: Tuple[str, ...] = ()
    act_skip_modules: Tuple[str, ...] = ()
    # A {name-substring: bits} mapping; stored as sorted (name, bits) pairs
    # so the frozen config stays hashable.
    layer_bits: Optional[Mapping[str, int]] = None
    # {name-substring: SP2 fraction} per-layer ratio overrides (autotune's
    # §V-B-guarded refinement); stored sorted for hashability. PTQ-only.
    layer_ratios: Optional[Mapping[str, float]] = None
    # Deployment target: reference-design name, "auto:<device>", or a
    # concrete GemmDesign (hashable — frozen dataclass).
    design: Union[str, "GemmDesign"] = "D2-3"
    batch: int = 16

    def __post_init__(self):
        # Normalize enum / case / tuple-ish inputs so equality and hashing
        # behave ("MSQ", Scheme.MSQ and "msq" are the same config).
        object.__setattr__(self, "scheme", get_scheme(self.scheme).name)
        object.__setattr__(self, "skip_modules", tuple(self.skip_modules))
        object.__setattr__(self, "act_skip_modules",
                           tuple(self.act_skip_modules))
        if self.layer_bits is not None:
            object.__setattr__(self, "layer_bits",
                               tuple(sorted(dict(self.layer_bits).items())))
        if self.method is not None and self.method != ADMM:
            object.__setattr__(self, "method", get_method(self.method).name)
        for label, bits in (("weight_bits", self.weight_bits),
                            ("act_bits", self.act_bits)):
            if not isinstance(bits, int) or bits < 2:
                raise ConfigurationError(
                    f"{label} must be an int >= 2, got {bits!r}")
        PartitionRatio.coerce(self.ratio)            # raises on malformed
        if self.layer_ratios is not None:
            normalized = {}
            for pattern, fraction in dict(self.layer_ratios).items():
                normalized[pattern] = PartitionRatio.coerce(
                    float(fraction)).sp2_fraction
            object.__setattr__(self, "layer_ratios",
                               tuple(sorted(normalized.items())))
        if isinstance(self.design, str) \
                and self.design.lower().startswith("auto:"):
            # Validate the full spec now (device and batch suffix); the
            # search itself runs at deploy time (memoized in
            # repro.fpga.characterize).
            from repro.fpga.characterize import parse_auto_spec

            parse_auto_spec(self.design)
        elif not isinstance(self.design, (str, GemmDesign)):
            raise ConfigurationError(
                f"design must be a reference-design name, an "
                f"'auto:<device>' string or a GemmDesign, "
                f"got {self.design!r}")
        if self.lr_schedule not in _LR_SCHEDULES:
            raise ConfigurationError(
                f"unknown lr_schedule {self.lr_schedule!r}; "
                f"use one of {_LR_SCHEDULES}")
        if self.epochs < 0:
            raise ConfigurationError(f"epochs must be >= 0, got {self.epochs}")
        if self.batch < 1:
            raise ConfigurationError(f"batch must be >= 1, got {self.batch}")

    # ------------------------------------------------------------------
    @property
    def uses_admm(self) -> bool:
        """True when ``fit()`` runs the paper's ADMM pipeline (no method)."""
        return self.method is None or self.method == ADMM

    @property
    def partition_ratio(self) -> PartitionRatio:
        return PartitionRatio.coerce(self.ratio)

    def replace(self, **changes) -> "PipelineConfig":
        """A copy with the given fields changed (re-validated)."""
        return replace(self, **changes)

    @classmethod
    def from_tuning(cls, result, **overrides) -> "PipelineConfig":
        """Build the config an autotune run chose.

        ``result`` is a :class:`repro.autotune.TuneResult`; the returned
        config carries the tuned ratio/bits/serving batch, the winning
        :class:`~repro.fpga.resources.GemmDesign` as its deployment
        target, and any per-layer ratio refinements. ``overrides`` patch
        individual fields (e.g. ``epochs=...`` for a QAT run — pass
        ``layer_ratios=None`` too in that case, QAT trains at the global
        PE ratio).
        """
        candidate = result.best.candidate
        fields = dict(
            scheme="msq",
            weight_bits=candidate.weight_bits,
            act_bits=candidate.act_bits,
            ratio=candidate.ratio,
            layer_ratios=dict(result.layer_ratios) or None,
            design=result.design,
            batch=candidate.serve_batch,
        )
        fields.update(overrides)
        return cls(**fields)

    def to_qat_config(self) -> QATConfig:
        """The ADMM trainer's config view of this pipeline config."""
        return QATConfig(
            scheme=self.scheme, weight_bits=self.weight_bits,
            act_bits=self.act_bits, ratio=self.ratio, alpha=self.alpha,
            epochs=self.epochs, lr=self.lr, momentum=self.momentum,
            weight_decay=self.weight_decay, lr_schedule=self.lr_schedule,
            lr_step_size=self.lr_step_size, rho=self.rho,
            quantize_activations=self.quantize_activations,
            act_skip_first=self.act_skip_first,
            skip_modules=self.skip_modules,
            act_skip_modules=self.act_skip_modules,
            layer_bits=dict(self.layer_bits) if self.layer_bits is not None
            else None)

    @property
    def design_label(self) -> str:
        """Short printable name of the deployment design target."""
        if isinstance(self.design, GemmDesign):
            return self.design.name or self.design.describe()
        return self.design

    def describe(self) -> str:
        """One-line label through the shared formatting helper."""
        return format_signature(
            "PipelineConfig", scheme=self.scheme,
            method=self.method if not self.uses_admm else ADMM,
            bits=f"{self.weight_bits}/{self.act_bits}",
            ratio=self.partition_ratio.describe() if self.scheme == "msq"
            else None,
            design=self.design_label)
