"""The public front door: one config-driven pipeline from quantization
choice to deployed model.

::

    from repro.api import Pipeline, PipelineConfig

    config = PipelineConfig(scheme="msq", ratio="2:1", weight_bits=4)
    pipeline = Pipeline(config, model=model)
    pipeline.fit(make_batches, loss_fn)        # ADMM QAT (Alg. 1/2)
    # or:  pipeline.calibrate(batches)         # training-free PTQ
    deployment = pipeline.deploy(batch=16)     # packed artifact + engine
    logits = deployment.predict(x)             # bit-identical to eager

Scheme and method pluggability comes from :mod:`repro.api.registry`:
``@register_scheme`` / ``@register_method`` entries (populated by
:mod:`repro.quant`) are enumerable via :func:`list_schemes` /
:func:`list_methods` and reachable via ``PipelineConfig(scheme=...,
method=...)`` — every Tables III-VI baseline included.

``python -m repro`` exposes the same surface on the command line
(``quantize | export | serve | experiment | registry``).

Registry functions import eagerly (they are dependency leaves); the
pipeline classes load lazily on first attribute access so that
``repro.quant`` modules can import the registry at import time without a
cycle.
"""

from repro.api.registry import (
    MethodEntry,
    SchemeEntry,
    get_method,
    get_scheme,
    list_methods,
    list_schemes,
    register_method,
    register_paper_projection,
    register_scheme,
    register_scheme_factory,
)

__all__ = [
    "Pipeline",
    "PipelineConfig",
    "QuantizedModel",
    "Deployment",
    "PipelineDeployment",
    "SchemeEntry",
    "MethodEntry",
    "get_scheme",
    "get_method",
    "list_schemes",
    "list_methods",
    "register_scheme",
    "register_scheme_factory",
    "register_paper_projection",
    "register_method",
]

_LAZY = {
    "PipelineConfig": "repro.api.config",
    "Pipeline": "repro.api.pipeline",
    "QuantizedModel": "repro.api.pipeline",
    "Deployment": "repro.api.pipeline",
    "PipelineDeployment": "repro.api.pipeline",
}


def __getattr__(name):
    if name in _LAZY:
        import importlib

        return getattr(importlib.import_module(_LAZY[name]), name)
    raise AttributeError(f"module 'repro.api' has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
