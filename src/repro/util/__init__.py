"""Small shared utilities with no dependencies on the rest of the stack.

Currently one module: :mod:`repro.util.hashing`, the package-wide home
for content digests (the serving response cache, the autotune eval
cache, the codegen build cache and the placement hash ring all key on
it).
"""

from repro.util.hashing import array_digest, ring_hash, stable_digest

__all__ = ["stable_digest", "array_digest", "ring_hash"]
