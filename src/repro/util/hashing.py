"""Content digests, defined once for the whole package.

Before this module, three subsystems each grew an ad-hoc digest helper
(the autotune eval cache, the codegen build cache, the placement hash
ring). They now share these primitives, and the serving response cache
keys on them too:

- :func:`stable_digest` — sha256 hex over bytes / text / structured
  JSON-like values. Bare ``bytes`` and ``str`` hash as their raw (UTF-8)
  byte stream, so pre-existing call sites that fed a hand-built byte
  string to ``hashlib.sha256`` keep their digests unchanged. Containers
  (mappings, lists, tuples) are framed and mappings are key-sorted, so
  structurally equal values digest equally regardless of insertion
  order, and ``["ab"]`` never collides with ``["a", "b"]``.
- :func:`array_digest` — sha256 hex of a numpy array's dtype, shape and
  element bytes. Contiguous arrays hash zero-copy through a
  ``memoryview``; non-contiguous arrays are walked along the leading
  axis until contiguous sub-blocks appear, so a transposed or strided
  view is hashed without materializing a full contiguous copy (the
  digest equals the C-order copy's digest either way).
- :func:`ring_hash` — the 64-bit md5-derived ring position used by
  consistent-hash placement. **Byte-compatible** with the original
  in-module helper by construction (same md5, same 8-byte big-endian
  slice), so hash-ring assignments never shift across this refactor;
  a regression test pins known values.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

__all__ = ["stable_digest", "array_digest", "ring_hash"]

Digestible = Union[bytes, bytearray, memoryview, str, int, float, bool,
                   None, dict, list, tuple, np.ndarray]


def _feed_array(digest, array: np.ndarray) -> None:
    """Update ``digest`` with an array's element bytes in C order.

    Recurses down the leading axis until a C-contiguous block appears,
    so strided/transposed views stream through ``memoryview`` chunks
    instead of one full-array copy. 0-d and tiny leftover cases fall
    back to ``tobytes`` (a copy of at most one element row).
    """
    if array.flags["C_CONTIGUOUS"]:
        digest.update(memoryview(array).cast("B"))
    elif array.ndim <= 1 or array.size == 0:
        digest.update(array.tobytes())
    else:
        for block in array:
            _feed_array(digest, block)


def _feed(digest, value: Digestible) -> None:
    if isinstance(value, (bytes, bytearray, memoryview)):
        digest.update(value)
    elif isinstance(value, str):
        digest.update(value.encode("utf-8"))
    elif isinstance(value, np.ndarray):
        digest.update(b"\x00a")
        digest.update(value.dtype.str.encode("ascii"))
        digest.update(repr(tuple(value.shape)).encode("ascii"))
        _feed_array(digest, value)
    elif isinstance(value, dict):
        digest.update(b"\x00m")
        for key in sorted(value, key=repr):
            _feed(digest, key)
            digest.update(b"\x00:")
            _feed(digest, value[key])
            digest.update(b"\x00,")
        digest.update(b"\x00M")
    elif isinstance(value, (list, tuple)):
        digest.update(b"\x00l")
        for item in value:
            _feed(digest, item)
            digest.update(b"\x00,")
        digest.update(b"\x00L")
    elif value is None or isinstance(value, (bool, int, float, complex,
                                             np.generic)):
        digest.update(repr(value).encode("ascii"))
    else:
        raise TypeError(
            f"stable_digest cannot hash {type(value).__name__!r}; "
            "pass bytes, str, numbers, numpy arrays, or containers "
            "of those")


def stable_digest(value: Digestible,
                  length: Optional[int] = None) -> str:
    """Deterministic sha256 hex digest of ``value``.

    ``bytes`` and ``str`` hash as their raw / UTF-8 byte stream (so the
    digest of a hand-built byte string matches a direct
    ``hashlib.sha256`` call); containers are framed and mappings are
    key-sorted. ``length`` truncates the hex string (the historical
    16/24/32-char keys of the autotune and codegen caches).
    """
    digest = hashlib.sha256()
    _feed(digest, value)
    hexdigest = digest.hexdigest()
    return hexdigest[:length] if length else hexdigest


def array_digest(array: np.ndarray,
                 length: Optional[int] = None) -> str:
    """sha256 hex digest of one array's dtype + shape + element bytes.

    The workhorse of the content-addressed response cache: a request
    payload digests identically whenever its bytes are identical, and
    never collides across dtype or shape reinterpretations of the same
    buffer. Non-C-contiguous inputs are hashed without building a full
    contiguous copy (see :func:`_feed_array`), and the result equals
    the digest of ``np.ascontiguousarray(array)``.
    """
    array = np.asarray(array)
    digest = hashlib.sha256()
    digest.update(array.dtype.str.encode("ascii"))
    digest.update(repr(tuple(array.shape)).encode("ascii"))
    _feed_array(digest, array)
    hexdigest = digest.hexdigest()
    return hexdigest[:length] if length else hexdigest


def ring_hash(key: str) -> int:
    """64-bit position of ``key`` on the consistent-hash ring.

    md5's first 8 bytes, big-endian — exactly the function the
    placement module always used, kept byte-compatible here so ring
    assignments (and therefore which worker's cache is warm for a
    given model/payload) survive the consolidation.
    """
    return int.from_bytes(
        hashlib.md5(key.encode("utf-8")).digest()[:8], "big")
