"""Reverse-mode autograd ``Tensor``.

The implementation mirrors the classic define-by-run design: every operation
returns a new :class:`Tensor` holding references to its parents and a closure
that, given the output gradient, accumulates gradients into the parents.
``backward()`` topologically sorts the recorded graph and runs the closures.

Only the operations needed by the reproduction are implemented, but each is
implemented with full broadcasting support so the layer code reads naturally.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

from repro.errors import ShapeError

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (reverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def stable_sigmoid(x: np.ndarray) -> np.ndarray:
    """Overflow-free two-branch sigmoid, dtype-preserving.

    ``1 / (1 + exp(-x))`` overflows (with a RuntimeWarning) for
    large-magnitude negative inputs; the two-branch form uses the
    equivalent ``exp(x) / (1 + exp(x))`` there, so the exponent argument is
    never positive and ``exp`` stays in (0, 1]. Evaluated as a single
    select over the shared ``exp(-|x|)`` term — per element exactly
    ``1/(1+e)`` or ``e/(1+e)``. Shared by the eager :meth:`Tensor.sigmoid`
    and the serving backends (:mod:`repro.serve.backends`) so the two
    inference paths stay bit-identical.
    """
    x = np.asarray(x)
    exp = np.exp(-np.abs(x))  # always in (0, 1]
    return np.where(x >= 0, 1.0, exp) / (1.0 + exp)


def row_stable_matmul(a: np.ndarray, b: np.ndarray,
                      out: Optional[np.ndarray] = None) -> np.ndarray:
    """``a @ b`` whose row bits do not depend on ``a``'s row count.

    BLAS routes single-row 2-D float products down a gemv-style path
    whose accumulation order can differ from the multi-row gemm kernels,
    so row 0 of a one-row matmul may differ in the last ULP from the same
    row computed as part of a larger batch. Streaming sessions make the
    row count an accident of chunk size and session coalescing (the same
    timestep runs at M=1 when a session streams alone and at M>=2 when
    coalesced or replayed offline), so one-row products are computed as a
    duplicated two-row gemm and sliced back — the result row's bits never
    depend on M. Like :func:`stable_sigmoid`, this is shared by the eager
    :meth:`Tensor.__matmul__` and the serving backends
    (:mod:`repro.serve.backends`) so the two inference paths stay
    bit-identical at every batch size.
    """
    if a.ndim != 2 or b.ndim != 2 or a.shape[0] != 1:
        return np.matmul(a, b, out=out)
    padded = np.matmul(np.concatenate((a, a), axis=0), b)
    if out is None:
        return np.ascontiguousarray(padded[:1])
    out[...] = padded[:1]
    return out


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    if isinstance(value, np.ndarray):
        # Respect explicit numpy dtypes (float64 gradchecks rely on this).
        return value if dtype is None else value.astype(dtype)
    arr = np.asarray(value, dtype=dtype)
    if arr.dtype == np.float64 and dtype is None:
        # Python floats/lists default to float32, the training dtype.
        arr = arr.astype(np.float32)
    return arr


class Tensor:
    """A numpy array with an optional gradient and autograd history.

    Parameters
    ----------
    data:
        Array-like payload. Python floats/lists are converted to ``float32``.
    requires_grad:
        Whether gradients should be accumulated into this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 100  # numpy defers binary ops to Tensor

    def __init__(self, data: ArrayLike, requires_grad: bool = False, name: str = ""):
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: tuple = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4)}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data)
        out.requires_grad = requires
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (so scalars need no argument, mirroring
        PyTorch). Gradients accumulate into every reachable tensor with
        ``requires_grad=True``.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ShapeError(
                f"backward grad shape {grad.shape} != tensor shape {self.data.shape}"
            )

        # Topological order via iterative DFS (avoids recursion limits on
        # deep RNN graphs).
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(-grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other.data, self.shape))
            other._accumulate(
                _unbroadcast(-grad * self.data / (other.data ** 2), other.shape)
            )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor ** only supports scalar exponents")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = row_stable_matmul(self.data, other.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(_unbroadcast(np.outer(grad, other.data)
                                                  if grad.ndim == 1 and self.data.ndim == 2
                                                  else np.expand_dims(grad, -1) * other.data,
                                                  self.shape))
                else:
                    self._accumulate(
                        _unbroadcast(grad @ np.swapaxes(other.data, -1, -2), self.shape)
                    )
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(_unbroadcast(np.outer(self.data, grad), other.shape))
                else:
                    other._accumulate(
                        _unbroadcast(np.swapaxes(self.data, -1, -2) @ grad, other.shape)
                    )

        return Tensor._make(out_data, (self, other), backward)

    # Comparisons produce plain boolean arrays (no gradient flows).
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _as_array(other)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _as_array(other)

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= _as_array(other)

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= _as_array(other)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / out_data)

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = stable_sigmoid(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sign)

        return Tensor._make(np.abs(self.data), (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values; gradient is 1 inside [low, high], 0 outside."""
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(np.clip(self.data, low, high), (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Biased variance (matches batch-norm's population statistics)."""
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            o = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                o = np.expand_dims(o, axis)
            mask = (self.data == o).astype(self.data.dtype)
            # Split gradient evenly among ties, keeping the sum correct.
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            self._accumulate(mask * g)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(self.shape))

        return Tensor._make(out_data, (self,), backward)

    def flatten(self, start_axis: int = 1) -> "Tensor":
        new_shape = self.shape[:start_axis] + (-1,)
        return self.reshape(*new_shape)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(self.data.transpose(axes), (self,), backward)

    def expand_dims(self, axis: int) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.squeeze(grad, axis=axis))

        return Tensor._make(np.expand_dims(self.data, axis), (self,), backward)

    def squeeze(self, axis: int) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.expand_dims(grad, axis=axis))

        return Tensor._make(np.squeeze(self.data, axis=axis), (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        index = index.data if isinstance(index, Tensor) else index
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)


def gradcheck(func: Callable[..., Tensor], inputs: Iterable[Tensor],
              eps: float = 1e-4, atol: float = 1e-2, rtol: float = 1e-2) -> bool:
    """Finite-difference check of ``func``'s gradients w.r.t. ``inputs``.

    Used by the test-suite to validate every autograd op. ``func`` must
    return a scalar Tensor.
    """
    inputs = list(inputs)
    for t in inputs:
        t.data = t.data.astype(np.float64)
        t.zero_grad()
    out = func(*inputs)
    out.backward()
    for t in inputs:
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = np.zeros_like(t.data)
        flat = t.data.reshape(-1)
        num_flat = numeric.reshape(-1)
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + eps
            up = func(*inputs).item()
            flat[i] = original - eps
            down = func(*inputs).item()
            flat[i] = original
            num_flat[i] = (up - down) / (2 * eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            return False
    return True
