"""Free-function tensor operations that combine multiple tensors.

These complement the methods on :class:`~repro.tensor.tensor.Tensor` for
operations that do not naturally live on a single operand (concatenation,
stacking, elementwise selection).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.tensor.tensor import Tensor, _unbroadcast


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            tensor._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(out_data, tuple(tensors), backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select: ``a`` where condition, else ``b``."""
    condition = condition.data if isinstance(condition, Tensor) else np.asarray(condition)
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    out_data = np.where(condition, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(_unbroadcast(grad * condition, a.shape))
        b._accumulate(_unbroadcast(grad * (~condition), b.shape))

    return Tensor._make(out_data, (a, b), backward)


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise maximum; ties send gradient to the first operand."""
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    pick_a = a.data >= b.data
    out_data = np.where(pick_a, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(_unbroadcast(grad * pick_a, a.shape))
        b._accumulate(_unbroadcast(grad * (~pick_a), b.shape))

    return Tensor._make(out_data, (a, b), backward)


def minimum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise minimum; ties send gradient to the first operand."""
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    pick_a = a.data <= b.data
    out_data = np.where(pick_a, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(_unbroadcast(grad * pick_a, a.shape))
        b._accumulate(_unbroadcast(grad * (~pick_a), b.shape))

    return Tensor._make(out_data, (a, b), backward)


def pad2d(x: Tensor, padding: int) -> Tensor:
    """Zero-pad the two trailing spatial axes of an NCHW tensor."""
    if padding == 0:
        return x
    pad_width = ((0, 0), (0, 0), (padding, padding), (padding, padding))
    out_data = np.pad(x.data, pad_width)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad[:, :, padding:-padding, padding:-padding])

    return Tensor._make(out_data, (x,), backward)
