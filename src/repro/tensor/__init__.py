"""A small reverse-mode autograd engine on top of numpy.

The paper's training algorithms (ADMM + STE quantization-aware training) were
implemented in PyTorch; this subpackage provides the equivalent substrate:
:class:`~repro.tensor.tensor.Tensor` carries a value and a gradient, records
the operations applied to it, and :meth:`~repro.tensor.tensor.Tensor.backward`
runs reverse-mode differentiation over the recorded graph.
"""

from repro.tensor.tensor import (Tensor, no_grad, is_grad_enabled,
                                 row_stable_matmul, stable_sigmoid)
from repro.tensor.ops import (
    concatenate,
    stack,
    where,
    maximum,
    minimum,
    pad2d,
)
from repro.tensor.conv import conv2d, max_pool2d, avg_pool2d, global_avg_pool2d

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "row_stable_matmul",
    "stable_sigmoid",
    "concatenate",
    "stack",
    "where",
    "maximum",
    "minimum",
    "pad2d",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
]
