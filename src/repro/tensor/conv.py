"""Convolution and pooling kernels (im2col based) with autograd support.

``conv2d`` supports stride, symmetric zero padding, and grouped convolution
(``groups == in_channels`` gives the depthwise convolutions MobileNet-v2
needs). The backward pass scatters column gradients back with a small loop
over kernel positions, which is both simple and fast for the 3x3/1x1 kernels
used throughout the paper's workloads.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ShapeError
from repro.tensor.tensor import Tensor


def _output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def pool_windows(data: np.ndarray, kernel: int, stride: int, oh: int,
                 ow: int) -> np.ndarray:
    """(N, C, OH, OW, k, k) sliding pooling-window view of an NCHW array.

    Shared by the eager pooling kernels below and the serving plan's
    pooling ops (:mod:`repro.serve.plan`), so the two paths cannot drift.
    """
    n, c = data.shape[:2]
    shape = (n, c, oh, ow, kernel, kernel)
    strides = (
        data.strides[0],
        data.strides[1],
        data.strides[2] * stride,
        data.strides[3] * stride,
        data.strides[2],
        data.strides[3],
    )
    return np.lib.stride_tricks.as_strided(data, shape=shape, strides=strides)


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int,
            padding: int) -> Tuple[np.ndarray, int, int]:
    """Extract sliding patches: returns (N, C*kh*kw, OH*OW)."""
    n, c, h, w = x.shape
    oh = _output_size(h, kh, stride, padding)
    ow = _output_size(w, kw, stride, padding)
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    shape = (n, c, kh, kw, oh, ow)
    strides = (
        x.strides[0],
        x.strides[1],
        x.strides[2],
        x.strides[3],
        x.strides[2] * stride,
        x.strides[3] * stride,
    )
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    cols = patches.reshape(n, c * kh * kw, oh * ow)
    return np.ascontiguousarray(cols), oh, ow


def _col2im(cols: np.ndarray, x_shape: Tuple[int, int, int, int], kh: int,
            kw: int, stride: int, padding: int, oh: int, ow: int) -> np.ndarray:
    """Scatter column gradients back to input gradient (reverse of im2col)."""
    n, c, h, w = x_shape
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    cols = cols.reshape(n, c, kh, kw, oh, ow)
    for i in range(kh):
        i_end = i + stride * oh
        for j in range(kw):
            j_end = j + stride * ow
            padded[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, i, j]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: int = 1, padding: int = 0, groups: int = 1) -> Tensor:
    """2-D convolution over an NCHW tensor.

    ``weight`` has shape ``(out_channels, in_channels // groups, kh, kw)``.
    """
    n, c, h, w = x.shape
    oc, cg, kh, kw = weight.shape
    if c != cg * groups:
        raise ShapeError(
            f"conv2d: input channels {c} != weight channels {cg} * groups {groups}"
        )
    if oc % groups != 0:
        raise ShapeError(f"conv2d: out_channels {oc} not divisible by groups {groups}")

    cols, oh, ow = _im2col(x.data, kh, kw, stride, padding)
    ocg = oc // groups
    w_mat = weight.data.reshape(oc, cg * kh * kw)

    if groups == 1:
        # One broadcast BLAS GEMM. The serving backends make the identical
        # np.matmul call (einsum's optimize heuristics pick shape-dependent
        # contraction orders, so a single shared convention is what keeps
        # eager and served outputs bit-identical).
        out = np.matmul(w_mat, cols)
    else:
        cols_g = cols.reshape(n, groups, cg * kh * kw, oh * ow)
        w_g = w_mat.reshape(groups, ocg, cg * kh * kw)
        out = np.einsum("gof,ngfp->ngop", w_g, cols_g, optimize=True)
        out = out.reshape(n, oc, oh * ow)
    out = out.reshape(n, oc, oh, ow)
    if bias is not None:
        out = out + bias.data.reshape(1, oc, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        grad_mat = grad.reshape(n, oc, oh * ow)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_mat.sum(axis=(0, 2)))
        if groups == 1:
            if weight.requires_grad:
                dw = np.einsum("nop,nfp->of", grad_mat, cols, optimize=True)
                weight._accumulate(dw.reshape(weight.shape))
            if x.requires_grad:
                dcols = np.einsum("of,nop->nfp", w_mat, grad_mat, optimize=True)
                x._accumulate(
                    _col2im(dcols, x.shape, kh, kw, stride, padding, oh, ow)
                )
        else:
            grad_g = grad_mat.reshape(n, groups, ocg, oh * ow)
            cols_g = cols.reshape(n, groups, cg * kh * kw, oh * ow)
            w_g = w_mat.reshape(groups, ocg, cg * kh * kw)
            if weight.requires_grad:
                dw = np.einsum("ngop,ngfp->gof", grad_g, cols_g, optimize=True)
                weight._accumulate(dw.reshape(weight.shape))
            if x.requires_grad:
                dcols = np.einsum("gof,ngop->ngfp", w_g, grad_g, optimize=True)
                dcols = dcols.reshape(n, c * kh * kw, oh * ow)
                x._accumulate(
                    _col2im(dcols, x.shape, kh, kw, stride, padding, oh, ow)
                )

    return Tensor._make(out, parents, backward)


def max_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None,
               padding: int = 0) -> Tensor:
    """Max pooling over NCHW; gradient flows to the (first) argmax."""
    stride = stride or kernel
    n, c, h, w = x.shape
    data = x.data
    if padding > 0:
        data = np.pad(
            x.data,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            constant_values=-np.inf,
        )
    oh = _output_size(h, kernel, stride, padding)
    ow = _output_size(w, kernel, stride, padding)
    windows = pool_windows(data, kernel, stride, oh, ow)
    flat = windows.reshape(n, c, oh, ow, kernel * kernel)
    argmax = flat.argmax(axis=-1)
    out = np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]

    def backward(grad: np.ndarray) -> None:
        dpadded = np.zeros_like(data)
        ki, kj = np.divmod(argmax, kernel)
        n_idx, c_idx, i_idx, j_idx = np.indices((n, c, oh, ow))
        rows = i_idx * stride + ki
        cols = j_idx * stride + kj
        np.add.at(dpadded, (n_idx, c_idx, rows, cols), grad)
        if padding > 0:
            dpadded = dpadded[:, :, padding:-padding, padding:-padding]
        x._accumulate(dpadded)

    return Tensor._make(np.ascontiguousarray(out), (x,), backward)


def avg_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Average pooling (no padding) over NCHW."""
    stride = stride or kernel
    n, c, h, w = x.shape
    oh = _output_size(h, kernel, stride, 0)
    ow = _output_size(w, kernel, stride, 0)
    windows = pool_windows(x.data, kernel, stride, oh, ow)
    out = windows.mean(axis=(-1, -2))
    scale = 1.0 / (kernel * kernel)

    def backward(grad: np.ndarray) -> None:
        dx = np.zeros_like(x.data)
        g = grad * scale
        for i in range(kernel):
            for j in range(kernel):
                dx[:, :, i:i + stride * oh:stride, j:j + stride * ow:stride] += g
        x._accumulate(dx)

    return Tensor._make(np.ascontiguousarray(out), (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over all spatial positions, returning (N, C)."""
    return x.mean(axis=(2, 3))
