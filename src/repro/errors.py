"""Exception hierarchy for the repro package.

Keeping a small, explicit hierarchy lets callers catch configuration
mistakes (:class:`ConfigurationError`) separately from violated numeric
invariants (:class:`QuantizationError`) and from hardware-model capacity
problems (:class:`ResourceError`).
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter combination was supplied by the caller."""


class QuantizationError(ReproError):
    """A quantization invariant was violated (e.g. value outside levels)."""


class ResourceError(ConfigurationError):
    """A hardware design does not fit on the selected FPGA device.

    Subclasses :class:`ConfigurationError`: an over-budget design is a
    configuration mistake, and the message carries the full per-resource
    utilization breakdown (LUT/FF/BRAM/DSP) so the caller can see *which*
    budget overflowed and by how much.
    """


class ShapeError(ReproError, ValueError):
    """Tensor/layer shapes are inconsistent."""


class ExportError(ReproError):
    """A model could not be exported to (or loaded from) a serving artifact."""


class BackendError(ConfigurationError, ExportError):
    """An unknown or unusable serving kernel backend was requested.

    Carries the requested name and the registered set so callers (CLI,
    autotune, ModelServer) can print an actionable message. Subclasses
    both :class:`ConfigurationError` (it is a caller mistake) and
    :class:`ExportError` (the historical type raised by the backend
    registry), so existing ``except ExportError`` sites keep working.
    """

    def __init__(self, requested: str, available=(), reason: str = ""):
        detail = f"unknown serving backend {requested!r}"
        if reason:
            detail = f"serving backend {requested!r} unavailable: {reason}"
        if available:
            detail += f"; available: {', '.join(sorted(available))}"
        super().__init__(detail)
        self.requested = requested
        self.available = tuple(sorted(available))


class CompileError(ReproError):
    """Native kernel compilation failed (no C compiler, or the compiler
    rejected the generated source). The message carries the compiler
    command and the tail of its stderr."""


class RendererError(CompileError):
    """The C renderer was asked to emit an op it has no template for.

    Internal-consistency error: the coverage table
    (:func:`repro.serve.codegen.renderer.supports`) should have routed
    the node to a fallback kernel before rendering started.
    """


class ServingError(ReproError):
    """A request could not be served (unknown model, stopped server,
    failed batch, malformed wire request).

    Every serving error carries a short machine-readable ``code`` (it
    travels on the wire as the ``"code"`` field of an error response) and
    a ``retryable`` flag — ``True`` means the request itself was fine and
    a later retry may succeed (shed under overload, worker died), while
    ``False`` means retrying the same request will fail the same way
    (unknown model, bad shape, malformed frame).
    """

    code = "serving-error"
    retryable = False


class AdmissionError(ServingError):
    """Request shed by admission control: every admissible worker is at
    capacity. The request was never enqueued anywhere; retry later."""

    code = "shed"
    retryable = True


class WorkerError(ServingError):
    """A cluster worker failed while holding the request (crashed
    mid-batch, connection lost, or the response never arrived). The
    request may or may not have executed; it is safe to retry idempotent
    inference."""

    code = "worker-failed"
    retryable = True

    def __init__(self, message: str, code: str = "worker-failed"):
        super().__init__(message)
        self.code = code


class SessionError(ServingError):
    """A streaming session could not be used.

    ``code`` says why: ``"unknown-session"`` (never opened, or the id is
    wrong), ``"session-exists"`` (open of an id already held),
    ``"session-expired"`` (idle past the store TTL),
    ``"session-evicted"`` (pushed out by the LRU byte budget),
    ``"session-closed"`` (closed with chunks still queued), or
    ``"session-lost"`` (the worker holding the state died or was
    restarted without migration). Never retryable: server-held recurrent
    state is gone, so the client must re-open the session and replay its
    stream from the start.
    """

    code = "session-error"
    retryable = False

    def __init__(self, message: str, code: str = "session-error"):
        super().__init__(message)
        self.code = code


class FrameError(ServingError, ValueError):
    """A wire frame violated the transport protocol.

    ``code`` says how: ``"oversized"`` (frame exceeds the negotiated
    cap), ``"bad-utf8"`` (payload is not UTF-8), ``"truncated"`` (stream
    ended mid-frame), ``"bad-json"`` (payload is not JSON),
    ``"not-object"`` (payload is JSON but not an object). The same codes
    are answered by :func:`repro.serve.cli.serve_protocol` for malformed
    stdin lines, so stdio and socket clients see one error vocabulary.
    """

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


class TransportClosed(ServingError):
    """The peer hung up (or a fault plan killed the connection)."""

    code = "closed"
    retryable = True
