"""Exception hierarchy for the repro package.

Keeping a small, explicit hierarchy lets callers catch configuration
mistakes (:class:`ConfigurationError`) separately from violated numeric
invariants (:class:`QuantizationError`) and from hardware-model capacity
problems (:class:`ResourceError`).
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter combination was supplied by the caller."""


class QuantizationError(ReproError):
    """A quantization invariant was violated (e.g. value outside levels)."""


class ResourceError(ConfigurationError):
    """A hardware design does not fit on the selected FPGA device.

    Subclasses :class:`ConfigurationError`: an over-budget design is a
    configuration mistake, and the message carries the full per-resource
    utilization breakdown (LUT/FF/BRAM/DSP) so the caller can see *which*
    budget overflowed and by how much.
    """


class ShapeError(ReproError, ValueError):
    """Tensor/layer shapes are inconsistent."""


class ExportError(ReproError):
    """A model could not be exported to (or loaded from) a serving artifact."""


class ServingError(ReproError):
    """A request could not be served (unknown model, stopped server,
    failed batch, malformed wire request)."""
