"""Typed graph IR for the serving compiler.

``lower_artifact`` turns the flat/nested op-spec list stored in a
:class:`~repro.serve.artifact.ServeArtifact` manifest into a small DAG of
:class:`IRNode` objects with inferred per-request output shapes, dtypes and
quantization metadata. Residual blocks are flattened into explicit branch
chains joined by an ``add`` node, so optimization passes
(:mod:`repro.serve.passes`) and kernel backends
(:mod:`repro.serve.backends`) see one uniform node structure instead of
nested spec dicts.

Shape inference is what frees the FPGA cost model from runtime side
effects: every GEMM-bearing node's workload dimensions (rows, reduction,
columns, sequentiality) are derived here from the node geometry and shapes
— :meth:`Graph.workloads` prices a freshly loaded plan without ever running
``forward()``.

The IR is deliberately *descriptive*, not executable: nodes reference the
manifest spec dicts read-only, and backends compile each node into a kernel.
Passes may rewrite graph structure (remove nodes, attach epilogues) but
never mutate the underlying manifest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import ExportError
from repro.fpga.gemm import GemmWorkload
from repro.serve.artifact import ServeArtifact
from repro.tensor.conv import _output_size


@dataclass
class IRNode:
    """One typed node of the serving graph.

    ``spec`` is the (read-only) manifest op dict; ``epilogues`` is filled by
    fusion passes with follow-on element-wise stages (bias/batch-norm/ReLU)
    the backend executes inside this node's kernel, in list order.
    """

    id: int
    kind: str
    spec: dict
    inputs: List[int]
    output_shape: Tuple[int, ...]   # per-request, no batch dimension
    output_dtype: str = "float32"
    name: str = ""
    merged_time: bool = False       # leading per-request dim folded into batch
    epilogues: List[dict] = field(default_factory=list)
    scratch: Dict[str, Tuple[int, ...]] = field(default_factory=dict)
    # Index of the top-level manifest op this node was lowered from
    # (residual internals share their block's index). The partition
    # splitter cuts only at top-level op boundaries, so this is the
    # coordinate system for legal cut points. None on the input node
    # and on graphs lowered before partitioning existed.
    op_index: Optional[int] = None
    # Renderer hook, stamped by the ``annotate_codegen`` pass: "native"
    # (the codegen renderer covers this node) or "fallback" (served by
    # the fused kernels inside a compiled plan). Empty until annotated.
    codegen: str = ""

    @property
    def act_quant(self) -> Optional[dict]:
        """Activation fake-quant prologue spec (or None)."""
        return self.spec.get("act_quant")

    def describe(self) -> str:
        label = self.name or self.kind
        extra = ""
        if self.epilogues:
            extra = " + " + "+".join(e["op"] for e in self.epilogues)
        return (f"{label:24s} {self.kind:14s} -> {self.output_shape}"
                f"{extra}")


class Graph:
    """A topologically ordered DAG of :class:`IRNode` (single input/output).

    Nodes are stored in execution order; ``inputs`` reference earlier node
    ids only. The synthetic ``input`` node (id 0) carries the artifact's
    per-request input shape/dtype.
    """

    def __init__(self, input_shape: Tuple[int, ...], input_dtype: str):
        self._nodes: Dict[int, IRNode] = {}
        self._order: List[int] = []
        self._next_id = 0
        self.input_id = self.add(IRNode(
            id=-1, kind="input", spec={}, inputs=[],
            output_shape=tuple(input_shape), output_dtype=input_dtype,
            name="input")).id
        self.output_id = self.input_id

    # ------------------------------------------------------------------
    def add(self, node: IRNode) -> IRNode:
        node.id = self._next_id
        self._next_id += 1
        self._nodes[node.id] = node
        self._order.append(node.id)
        self.output_id = node.id
        return node

    def node(self, node_id: int) -> IRNode:
        return self._nodes[node_id]

    @property
    def nodes(self) -> List[IRNode]:
        """Nodes in execution (topological) order, input node included."""
        return [self._nodes[i] for i in self._order]

    def consumers(self, node_id: int) -> List[IRNode]:
        return [n for n in self.nodes if node_id in n.inputs]

    def producer(self, node: IRNode) -> Optional[IRNode]:
        """Single-input node's producer (None for the input node)."""
        return self._nodes[node.inputs[0]] if node.inputs else None

    def remove(self, node: IRNode) -> None:
        """Remove a single-input node, rewiring its consumers to its input."""
        if len(node.inputs) != 1:
            raise ExportError(
                f"cannot splice out node {node.id} with {len(node.inputs)} "
                "inputs")
        source = node.inputs[0]
        for consumer in self.consumers(node.id):
            consumer.inputs = [source if i == node.id else i
                               for i in consumer.inputs]
        if self.output_id == node.id:
            self.output_id = source
        del self._nodes[node.id]
        self._order.remove(node.id)

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[IRNode]:
        return iter(self.nodes)

    # ------------------------------------------------------------------
    def gemm_nodes(self) -> List[IRNode]:
        return [n for n in self.nodes if n.kind in ("conv", "linear", "rnn")]

    def rnn_nodes(self) -> List[IRNode]:
        """Recurrent nodes, i.e. the state sites of streaming execution.

        Node ids are assigned by the deterministic lowering order, so the
        same artifact yields the same rnn node ids on every backend —
        which is what lets a recurrent-state mapping (node id -> h/c
        arrays) travel between backends, workers, and the wire.
        """
        return [n for n in self.nodes if n.kind == "rnn"]

    def workloads(self, batch: int = 1) -> List[GemmWorkload]:
        """GEMM workloads of one graph pass serving ``batch`` requests.

        Derived entirely from IR node shapes — no forward pass needed.
        Batched requests fill additional output-position lanes, so
        ``columns`` scales with the micro-batch size.
        """
        specs: List[dict] = []
        for node in self.nodes:
            specs.extend(node_workloads(node, self))
        if not specs:
            raise ExportError("plan has no GEMM workloads")
        return [GemmWorkload(name=s["name"], rows=s["rows"],
                             reduction=s["reduction"],
                             columns=s["columns"] * batch,
                             sequential_columns=s["sequential"])
                for s in specs]

    def token_bound(self) -> int:
        """Valid synthetic-token range: the smallest embedding table."""
        bounds = [n.spec["table_size"] for n in self.nodes
                  if n.kind == "embedding"]
        return min(bounds) if bounds else 16

    def describe(self) -> str:
        return "\n".join(node.describe() for node in self.nodes)


# ----------------------------------------------------------------------
# Workload derivation (mirrors what the execution plan used to record on
# its first forward pass, now computed from static shapes)
# ----------------------------------------------------------------------
def node_workloads(node: IRNode, graph: Graph) -> List[dict]:
    """Per-request GEMM dims of one node (empty for non-GEMM nodes)."""
    spec = node.spec
    if node.kind == "conv":
        k = spec["kernel"]
        groups = spec["groups"]
        cg = spec["in_channels"] // groups
        # im2col packs channels and kernel taps jointly into the reduction
        # lanes; depthwise convs reduce only over their own k*k taps.
        depthwise = groups == spec["in_channels"] > 1
        oh, ow = node.output_shape[1], node.output_shape[2]
        return [{"name": node.name, "rows": spec["out_channels"],
                 "reduction": (k * k if depthwise else cg * k * k),
                 "columns": oh * ow, "sequential": False}]
    if node.kind == "linear":
        producer = graph.node(node.inputs[0])
        # After merge_time the leading per-request dim (T) is folded into
        # the batch: this layer computes T output columns per request.
        columns = producer.output_shape[0] if producer.merged_time else 1
        return [{"name": node.name, "rows": spec["out_features"],
                 "reduction": spec["in_features"], "columns": columns,
                 "sequential": False}]
    if node.kind == "rnn":
        steps = graph.node(node.inputs[0]).output_shape[0]
        out: List[dict] = []
        for cell in spec["cells"]:
            rows_ih = cell["weight_ih"]["shape"][0]
            rows_hh = cell["weight_hh"]["shape"][0]
            out.append({"name": f"{node.name}.{len(out)}", "rows": rows_ih,
                        "reduction": cell["weight_ih"]["shape"][1],
                        "columns": steps, "sequential": False})
            # The W_hh GEMM serializes over timesteps (h_{t} needs h_{t-1}).
            out.append({"name": f"{node.name}.{len(out)}", "rows": rows_hh,
                        "reduction": cell["weight_hh"]["shape"][1],
                        "columns": steps, "sequential": True})
        return out
    return []


# ----------------------------------------------------------------------
# Shape inference
# ----------------------------------------------------------------------
def _infer_shape(kind: str, spec: dict,
                 shape: Tuple[int, ...]) -> Tuple[int, ...]:
    """Per-request output shape of one op applied to input ``shape``."""
    if kind == "conv":
        if len(shape) != 3:
            raise ExportError(f"conv expects (C, H, W) input, got {shape}")
        k, s, p = spec["kernel"], spec["stride"], spec["padding"]
        return (spec["out_channels"],
                _output_size(shape[1], k, s, p),
                _output_size(shape[2], k, s, p))
    if kind == "linear":
        return shape[:-1] + (spec["out_features"],)
    if kind in ("batchnorm2d", "batchnorm1d", "relu", "relu6"):
        return shape
    if kind == "flatten":
        return (int(np.prod(shape)),)
    if kind == "globalavgpool":
        return (shape[0],)
    if kind == "maxpool":
        k, s = spec["kernel"], spec["stride"]
        p = spec.get("padding", 0)
        return (shape[0], _output_size(shape[1], k, s, p),
                _output_size(shape[2], k, s, p))
    if kind == "avgpool":
        k, s = spec["kernel"], spec["stride"]
        return (shape[0], _output_size(shape[1], k, s, 0),
                _output_size(shape[2], k, s, 0))
    if kind == "embedding":
        return shape + (spec["embed_dim"],)
    if kind == "merge_time":
        return shape
    if kind == "take_last":
        return shape[1:]
    if kind == "rnn":
        return (shape[0], spec["hidden_size"])
    raise ExportError(f"no shape rule for IR node kind {kind!r}")


# ----------------------------------------------------------------------
# Lowering
# ----------------------------------------------------------------------
def lower_artifact(artifact: ServeArtifact) -> Graph:
    """Lower a manifest's op-spec list into a typed :class:`Graph`."""
    manifest = artifact.manifest
    graph = Graph(tuple(manifest["input_shape"]), manifest["input_dtype"])
    source = graph.input_id
    for index, spec in enumerate(manifest["ops"]):
        before = graph._next_id
        source = _lower_op(graph, artifact, spec, source)
        for node_id in range(before, graph._next_id):
            graph.node(node_id).op_index = index
    graph.output_id = source
    return graph


def _lower_chain(graph: Graph, artifact: ServeArtifact, specs: List[dict],
                 source: int) -> int:
    for spec in specs:
        source = _lower_op(graph, artifact, spec, source)
    return source


def _lower_op(graph: Graph, artifact: ServeArtifact, spec: dict,
              source: int) -> int:
    kind = spec["kind"]
    if kind == "residual":
        main = _lower_chain(graph, artifact, spec["main"], source)
        shortcut = _lower_chain(graph, artifact, spec["shortcut"] or [],
                                source)
        node = graph.add(IRNode(
            id=-1, kind="add", spec={"post": spec["post"]},
            inputs=[main, shortcut],
            output_shape=graph.node(main).output_shape,
            name="residual-add"))
        return node.id

    producer = graph.node(source)
    shape = producer.output_shape
    if kind == "embedding":
        # The lowered spec gains the table geometry so shape inference and
        # synthetic-batch generation need no array access.
        table = artifact.arrays[spec["weight"]]
        spec = dict(spec, table_size=int(table.shape[0]),
                    embed_dim=int(table.shape[1]))
    node = graph.add(IRNode(
        id=-1, kind=kind, spec=spec, inputs=[source],
        output_shape=_infer_shape(kind, spec, shape),
        name=spec.get("name", ""),
        merged_time=(kind == "merge_time") or
                    (producer.merged_time and kind in ("linear", "relu"))))
    return node.id


def record_workloads(graph: Graph) -> None:
    """Write IR-derived workload dims into the manifest op specs.

    Keeps exported artifacts self-describing in the ``repro-serve/1``
    format (``workload`` keys on GEMM ops) — emitted from the IR at export
    time instead of as a first-forward side effect. Loaders never read
    these back; they re-derive workloads from shapes.
    """
    for node in graph.nodes:
        dims = node_workloads(node, graph)
        if not dims:
            continue
        stripped = [{k: v for k, v in d.items() if k != "name"}
                    for d in dims]
        node.spec["workload"] = stripped if node.kind == "rnn" \
            else stripped[0]


# ----------------------------------------------------------------------
# Synthetic inputs (compile-time backend verification)
# ----------------------------------------------------------------------
def synthetic_batch(graph: Graph, n: int = 2, seed: int = 0) -> np.ndarray:
    """A deterministic (n, ...) batch matching the graph's input signature.

    Used to verify a compiled backend against the reference backend at
    compile time; token inputs are drawn below the smallest embedding
    table so index lookups stay valid.
    """
    rng = np.random.default_rng(seed)
    node = graph.node(graph.input_id)
    dtype = np.dtype(node.output_dtype)
    shape = (n,) + node.output_shape
    if np.issubdtype(dtype, np.floating):
        return rng.normal(size=shape).astype(dtype)
    return rng.integers(0, graph.token_bound(), size=shape).astype(dtype)
