"""Inference futures: the async half of the serving API.

``ModelServer.submit`` returns an :class:`InferenceFuture` immediately; the
result materializes when a worker (or a synchronous ``drain``) serves the
micro-batch the request was coalesced into. The future carries the served
:class:`~repro.serve.batcher.ServedRequest` record, so per-request
accounting (queue+service latency, batch id/size, simulated FPGA share)
stays reachable from the handle the caller already holds.

A tiny purpose-built future (rather than ``concurrent.futures.Future``)
keeps the contract explicit: exactly one resolution, results are numpy
arrays, and the request record rides along.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, List, Optional

import numpy as np

from repro.errors import ServingError


class InferenceFuture:
    """Handle to one submitted request; resolves to its output array."""

    def __init__(self, model: Optional[str] = None):
        self.model = model
        self._event = threading.Event()
        self._result: Optional[np.ndarray] = None
        self._error: Optional[BaseException] = None
        self._request = None            # ServedRequest, set on success
        self._callbacks: List[Callable[["InferenceFuture"], None]] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> np.ndarray:
        """Block until served; returns the output or raises the failure."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request{f' for model {self.model!r}' if self.model else ''}"
                f" not served within {timeout} s")
        if self._error is not None:
            raise self._error
        return self._result

    def exception(self, timeout: Optional[float] = None
                  ) -> Optional[BaseException]:
        if not self._event.wait(timeout):
            raise TimeoutError(f"request not served within {timeout} s")
        return self._error

    @property
    def request(self):
        """The served request record (latency, batch id/size, FPGA share)."""
        return self._request

    @property
    def latency_ms(self) -> float:
        if self._request is None:
            raise ServingError("request not served yet; no latency")
        return self._request.latency_ms

    @property
    def cached(self) -> bool:
        """True when this request was answered from the response cache."""
        return bool(self._request is not None
                    and getattr(self._request, "cached", False))

    @property
    def coalesced(self) -> bool:
        """True when this request rode an identical in-flight request
        (one batcher slot, one kernel invocation, shared result)."""
        return bool(self._request is not None
                    and getattr(self._request, "coalesced", False))

    def add_done_callback(self,
                          fn: Callable[["InferenceFuture"], None]) -> None:
        """Run ``fn(self)`` once resolved (immediately if already done)."""
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(fn)
                return
        fn(self)

    # ------------------------------------------------------------------
    # Resolution (server/executor side)
    # ------------------------------------------------------------------
    def _resolve(self, result: np.ndarray, request=None) -> None:
        with self._lock:
            if self._event.is_set():
                raise ServingError("future resolved twice")
            self._result = result
            self._request = request
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def _fail(self, error: BaseException) -> None:
        with self._lock:
            if self._event.is_set():
                raise ServingError("future resolved twice")
            self._error = error
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:
        state = "pending"
        if self._event.is_set():
            state = "error" if self._error is not None else "done"
        model = f" model={self.model!r}" if self.model else ""
        return f"<InferenceFuture{model} {state}>"


def gather(futures: Iterable[InferenceFuture],
           timeout: Optional[float] = None) -> List[np.ndarray]:
    """Results of every future, in order; raises the first failure."""
    return [future.result(timeout) for future in futures]
