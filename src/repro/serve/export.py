"""Export a quantized model into a frozen serving artifact.

``build_artifact`` freezes activation-quantizer ranges, compiles the module
tree into op specs (:mod:`repro.serve.compile`), lowers them to the graph
IR to record each layer's GEMM workload dimensions into the manifest (from
node shapes — no warm-up forward needed), and runs one verification pass:
the compiled reference-backend plan and the eager model must produce
**bit-identical** logits on a sample batch. Optimized backends are in turn
verified against the reference backend when they are compiled
(:func:`repro.serve.backends.compile_graph`), so the bit-exactness chain
eager == reference == every-backend holds end to end.

The usual caller is :meth:`repro.api.QuantizedModel.deploy`; ``export_model``
remains as a deprecation shim for the pre-``repro.api`` spelling.
"""

from __future__ import annotations

import warnings
from typing import Dict, Optional

import numpy as np

from repro.errors import ExportError
from repro.nn.module import Module
from repro.serve.artifact import FORMAT, ServeArtifact
from repro.serve.compile import compile_model, freeze_activation_quantizers
from repro.tensor import Tensor, no_grad


def eager_forward(model: Module, batch: np.ndarray) -> np.ndarray:
    """Run the eager model on a numpy batch (the serving baseline path)."""
    with no_grad():
        if np.issubdtype(np.asarray(batch).dtype, np.floating):
            return model(Tensor(np.asarray(batch))).data
        return model(np.asarray(batch)).data  # integer token ids


def build_artifact(model: Module, sample_input: np.ndarray,
                   layer_results: Optional[Dict[str, object]] = None,
                   name: str = "model", path=None,
                   verify: bool = True) -> ServeArtifact:
    """Freeze ``model`` into a :class:`ServeArtifact`.

    Parameters
    ----------
    model:
        An eval-ready model built from :mod:`repro.nn` layers. Its
        activation quantizers are frozen as a side effect.
    sample_input:
        A representative ``(N, ...)`` batch; fixes the per-request input
        shape, drives workload recording and the bit-exactness check.
    layer_results:
        Parameter-name → quantization-result mapping
        (``QATResult.layer_results`` or the output of
        :func:`repro.serve.ptq.post_training_quantize`). Layers without an
        entry are stored as raw float32.
    path:
        If given, the artifact is also saved there.
    verify:
        Assert plan output == eager output bitwise (raises
        :class:`~repro.errors.ExportError` otherwise).
    """
    from repro.serve.ir import lower_artifact, record_workloads
    from repro.serve.plan import ExecutionPlan  # avoid import cycle

    sample_input = np.asarray(sample_input)
    if sample_input.ndim < 1 or sample_input.shape[0] < 1:
        raise ExportError("sample_input must be a non-empty (N, ...) batch")
    model.eval()
    freeze_activation_quantizers(model)

    artifact = ServeArtifact(manifest={
        "format": FORMAT,
        "model": name,
        "input_shape": list(sample_input.shape[1:]),
        "input_dtype": str(sample_input.dtype),
        "ops": [],
    })
    artifact.manifest["ops"] = compile_model(
        model, layer_results or {}, artifact)

    # Lowering infers every node's shapes; the manifest keeps the derived
    # GemmWorkload dims so saved artifacts stay self-describing.
    record_workloads(lower_artifact(artifact))

    # Compile the reference backend and check bit-exactness against eager.
    plan = ExecutionPlan(artifact)
    served = plan.forward(sample_input)
    if verify:
        reference = eager_forward(model, sample_input)
        if not np.array_equal(served, reference):
            worst = float(np.max(np.abs(served - reference)))
            raise ExportError(
                f"exported plan deviates from eager model (max |error| "
                f"{worst:.3e}); the plan ops are out of sync with repro.nn")

    if path is not None:
        artifact.save(path)
    return artifact


def export_model(model: Module, sample_input: np.ndarray,
                 layer_results: Optional[Dict[str, object]] = None,
                 name: str = "model", path=None,
                 verify: bool = True) -> ServeArtifact:
    """Deprecated; use :meth:`repro.api.QuantizedModel.deploy` (or
    :func:`build_artifact` for the bare export step).

    Kept importable from its old home for one release; delegates to
    :func:`build_artifact`, so artifacts stay bit-identical to the new API.
    """
    warnings.warn(
        "repro.serve.export_model is deprecated; use "
        "repro.api.Pipeline(...).deploy(...) or "
        "repro.serve.export.build_artifact",
        DeprecationWarning, stacklevel=2)
    return build_artifact(model, sample_input, layer_results=layer_results,
                          name=name, path=path, verify=verify)
