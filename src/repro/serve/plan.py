"""Execution plan: a compiled, ready-to-serve view of an exported model.

``ExecutionPlan`` is a thin façade over the serving compile pipeline::

    ServeArtifact --lower--> graph IR --passes--> kernels --> CompiledModel
                  (serve.ir)          (serve.passes)   (serve.backends)

All per-model work happens once at compile time: weight words are unpacked
and dequantized into cached GEMM matrices, activation ranges become level
tables, shapes are inferred for every node, and the selected backend builds
one kernel per node. Per-request work is then pure batched numpy.

The ``backend`` argument picks the kernel set (see
:func:`repro.serve.backends.list_backends`); any non-reference backend is
verified bit-identical to the reference oracle at compile time, and the
reference backend is verified against eager inference at export — so
``forward`` output is bit-identical to the eager quantized model no matter
which backend serves it.

GEMM workload dimensions come from IR node shapes, so
:meth:`ExecutionPlan.workloads` and :meth:`ExecutionPlan.simulate` work on
a freshly loaded plan — no warm-up forward pass required.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import ExportError, ShapeError
from repro.fpga.accelerator import NetworkPerformance, simulate_network
from repro.fpga.gemm import GemmWorkload
from repro.fpga.resources import GemmDesign, reference_designs
from repro.serve.artifact import ServeArtifact
from repro.serve.backends import DEFAULT_BACKEND, compile_graph


class ExecutionPlan:
    """Loaded, ready-to-serve form of an exported model."""

    def __init__(self, artifact: ServeArtifact,
                 backend: str = DEFAULT_BACKEND,
                 verify: Optional[bool] = None):
        self.artifact = artifact
        self.compiled = compile_graph(artifact, backend=backend,
                                      verify=verify)
        self.graph = self.compiled.source_graph
        self.input_shape = tuple(artifact.manifest["input_shape"])
        self.input_dtype = np.dtype(artifact.manifest["input_dtype"])

    @classmethod
    def load(cls, path, backend: str = DEFAULT_BACKEND,
             verify: Optional[bool] = None) -> "ExecutionPlan":
        return cls(ServeArtifact.load(path), backend=backend, verify=verify)

    @property
    def backend(self) -> str:
        return self.compiled.backend_name

    # ------------------------------------------------------------------
    def forward(self, batch: np.ndarray) -> np.ndarray:
        """Run a (N, ...) request batch through the compiled kernels."""
        x = np.asarray(batch)
        if tuple(x.shape[1:]) != self.input_shape:
            raise ShapeError(
                f"plan expects per-request shape {self.input_shape}, got "
                f"{tuple(x.shape[1:])}")
        return self.compiled.run(x)

    __call__ = forward

    def per_request_outputs(self, outputs: np.ndarray,
                            batch_size: int) -> np.ndarray:
        """View of a ``forward`` result with the request axis leading.

        Most plans already return ``(N, ...)``. Time-merged RNN decoders
        return ``(N*T, ...)`` (the leading per-request dim is folded into
        the batch axis for one big GEMM); this reshapes — a view, no copy
        — to ``(N, T, ...)`` so ``[i]`` is request ``i``'s full output.
        """
        node = self.graph.node(self.graph.output_id)
        if node.merged_time:
            return outputs.reshape((batch_size,)
                                   + tuple(node.output_shape))
        return outputs

    # ------------------------------------------------------------------
    # Streaming (state-carrying) execution
    # ------------------------------------------------------------------
    @property
    def streamable(self) -> bool:
        """True when the plan has recurrent layers to carry state for."""
        return bool(self.graph.rnn_nodes())

    def forward_stream(self, batch: np.ndarray, state: dict):
        """Run one (N, T, ...) chunk batch from carried recurrent state.

        ``T`` (the chunk's timestep count) may differ from the exported
        sequence length — the trailing per-step dims must match. Returns
        ``(outputs, new_state)``; feeding a sequence chunk by chunk,
        threading the state through, is bit-identical to one
        full-sequence :meth:`forward` call on every backend.
        """
        if not self.streamable:
            raise ExportError(
                "plan has no recurrent layers; streaming execution needs "
                "an RNN")
        x = np.asarray(batch)
        step_shape = self.input_shape[1:]
        if x.ndim != len(self.input_shape) + 1 \
                or tuple(x.shape[2:]) != step_shape or x.shape[1] < 1:
            raise ShapeError(
                f"stream chunk expects per-request shape (T,)"
                f" + {step_shape} with T >= 1, got {tuple(x.shape[1:])}")
        return self.compiled.run_stateful(x, state)

    @property
    def per_step_output(self) -> bool:
        """True when every timestep emits an output row (a time-merged
        decoder): concatenating a session's chunk outputs reproduces the
        offline full-sequence output. False for running-output heads
        (e.g. a take-last classifier), where each chunk yields the
        prediction for the sequence *so far* and only the final chunk's
        output matches the offline run.
        """
        return bool(self.graph.node(self.graph.output_id).merged_time)

    def stream_outputs(self, outputs: np.ndarray,
                       batch_size: int) -> np.ndarray:
        """:meth:`per_request_outputs` for variable-length chunks.

        Time-merged decoders return ``(N*T, ...)`` with ``T`` set by the
        chunk, not the exported sequence length, so the time axis is
        recovered dynamically instead of from the static node shape.
        """
        node = self.graph.node(self.graph.output_id)
        if node.merged_time:
            return outputs.reshape((batch_size, -1)
                                   + tuple(node.output_shape[1:]))
        return outputs

    # ------------------------------------------------------------------
    # FPGA cost model
    # ------------------------------------------------------------------
    def workloads(self, batch: int = 1) -> List[GemmWorkload]:
        """GEMM workloads of one plan pass serving ``batch`` requests.

        Derived from IR node shapes at compile time — available on a
        freshly loaded plan, no forward pass needed. Batched requests fill
        additional output-position lanes, so ``columns`` scales with the
        micro-batch size — the cycle-level source of the serving
        throughput win.
        """
        return self.graph.workloads(batch)

    def simulate(self, design: Optional[GemmDesign] = None,
                 batch: int = 1, **sim_kwargs) -> NetworkPerformance:
        """Price one plan pass on an accelerator design (default: the
        paper's D2-3 XC7Z045 point, Table VII)."""
        if design is None:
            design = reference_designs()["D2-3"]
        return simulate_network(self.workloads(batch), design, **sim_kwargs)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        lines = [self.artifact.summary(), self.compiled.describe()]
        try:
            workloads = self.workloads()
        except ExportError:
            return "\n".join(lines)
        total_macs = sum(w.macs for w in workloads)
        lines.append(f"gemm layers:  {len(workloads)} "
                     f"({total_macs / 1e6:.2f} MMACs/request)")
        return "\n".join(lines)
