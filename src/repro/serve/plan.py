"""Precomputed execution plan: batched numpy inference over an artifact.

``ExecutionPlan`` turns a :class:`~repro.serve.artifact.ServeArtifact` into a
flat list of runtime ops. All per-model work happens once at load time:
weight words are unpacked and dequantized into cached GEMM matrices, level
scales and activation clipping ranges become plain floats, and conv ops keep
their im2col geometry. Per-request work is then pure batched numpy — an
activation fake-quant, an im2col, and a GEMM per layer — with **no
re-quantization** anywhere on the hot path.

Every op replicates the corresponding eval-mode :mod:`repro.nn` forward
*operation for operation* (same numpy calls, same evaluation order, same
float32 intermediates), which is what makes plan outputs bit-identical to
the eager quantized model. When editing an op here, keep it in lockstep
with the layer's ``forward``.

Each GEMM-bearing op also records its :class:`~repro.fpga.gemm.GemmWorkload`
dimensions the first time it runs, so a loaded plan can be priced on any
accelerator design via :meth:`ExecutionPlan.simulate` — the simulated FPGA
latency the batch scheduler reports next to wall-clock numbers.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import ExportError, ShapeError
from repro.fpga.accelerator import NetworkPerformance, simulate_network
from repro.fpga.gemm import GemmWorkload
from repro.fpga.resources import GemmDesign, reference_designs
from repro.quant.ste import ActivationQuantizer
from repro.serve.artifact import ServeArtifact, decode_weight_record
from repro.tensor.conv import _im2col, _output_size, pool_windows


# ----------------------------------------------------------------------
# Activation fake-quantization (mirrors ActivationQuantizer.__call__ with
# calibration off + fake_quant_ste, in plain numpy)
# ----------------------------------------------------------------------
class _ActQuant:
    def __init__(self, spec: dict):
        self.alpha = spec["alpha"]
        self.low = -self.alpha if spec["signed"] else 0.0
        self._quantizer = ActivationQuantizer(
            spec["bits"], signed=spec["signed"], alpha=self.alpha)
        self._quantizer.calibrating = False

    def __call__(self, x: np.ndarray) -> np.ndarray:
        clipped = np.clip(x, self.low, self.alpha)
        quantized = self._quantizer.quantize_array(x)
        return clipped + (np.asarray(quantized, dtype=clipped.dtype) - clipped)


def _make_act(spec: Optional[dict]):
    return _ActQuant(spec) if spec else None


def _relu(x: np.ndarray) -> np.ndarray:
    return x * (x > 0)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


# ----------------------------------------------------------------------
# Ops
# ----------------------------------------------------------------------
class _PlanContext:
    """Per-forward state shared by all ops of one plan (e.g. the request
    batch size, which lets ops that see merged leading dims — a Linear
    after ``merge_time`` — express workloads per request)."""

    def __init__(self):
        self.request_batch = 1


class _Op:
    """One plan step; ``spec`` is the live manifest dict (workload dims are
    written back into it on first run, so exported artifacts carry them)."""

    def __init__(self, spec: dict, artifact: ServeArtifact,
                 ctx: _PlanContext):
        self.spec = spec
        self.ctx = ctx

    def run(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def record_workload(self, **dims) -> None:
        self.spec["workload"] = dims


class _ConvOp(_Op):
    def __init__(self, spec, artifact, ctx):
        super().__init__(spec, artifact, ctx)
        self.stride = spec["stride"]
        self.padding = spec["padding"]
        self.groups = spec["groups"]
        self.oc = spec["out_channels"]
        self.kernel = spec["kernel"]
        weight = decode_weight_record(artifact, spec["weight"])
        self.cg = weight.shape[1]
        self.w_mat = weight.reshape(self.oc, -1)
        self.bias = (artifact.arrays[spec["bias"]]
                     if spec["bias"] is not None else None)
        self.act = _make_act(spec["act_quant"])

    def run(self, x: np.ndarray) -> np.ndarray:
        if self.act is not None:
            x = self.act(x)
        n = x.shape[0]
        k = self.kernel
        cols, oh, ow = _im2col(x, k, k, self.stride, self.padding)
        if self.groups == 1:
            out = np.einsum("of,nfp->nop", self.w_mat, cols, optimize=True)
        else:
            ocg = self.oc // self.groups
            cols_g = cols.reshape(n, self.groups, self.cg * k * k, oh * ow)
            w_g = self.w_mat.reshape(self.groups, ocg, self.cg * k * k)
            out = np.einsum("gof,ngfp->ngop", w_g, cols_g, optimize=True)
            out = out.reshape(n, self.oc, oh * ow)
        out = out.reshape(n, self.oc, oh, ow)
        if self.bias is not None:
            out = out + self.bias.reshape(1, self.oc, 1, 1)
        # im2col packs channels and kernel taps jointly into the reduction
        # lanes; depthwise convs reduce only over their own k*k taps.
        depthwise = self.groups == self.spec["in_channels"] > 1
        self.record_workload(
            rows=self.oc,
            reduction=(k * k if depthwise else self.cg * k * k),
            columns=oh * ow,
            sequential=False)
        return out


class _LinearOp(_Op):
    def __init__(self, spec, artifact, ctx):
        super().__init__(spec, artifact, ctx)
        self.weight = decode_weight_record(artifact, spec["weight"])
        self.bias = (artifact.arrays[spec["bias"]]
                     if spec["bias"] is not None else None)
        self.act = _make_act(spec["act_quant"])

    def run(self, x: np.ndarray) -> np.ndarray:
        if self.act is not None:
            x = self.act(x)
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        # After merge_time the leading dim is N*T: this layer computes T
        # output columns per request, not 1.
        per_request = max(x.shape[0] // max(self.ctx.request_batch, 1), 1)
        self.record_workload(rows=self.weight.shape[0],
                             reduction=self.weight.shape[1],
                             columns=per_request, sequential=False)
        return out


class _BatchNormOp(_Op):
    def __init__(self, spec, artifact, ctx):
        super().__init__(spec, artifact, ctx)
        shape = ((1, spec["features"], 1, 1) if spec["kind"] == "batchnorm2d"
                 else (1, spec["features"]))
        arrays = artifact.arrays
        self.mean = arrays[spec["mean"]].reshape(shape)
        self.gamma = arrays[spec["gamma"]].reshape(shape)
        self.beta = arrays[spec["beta"]].reshape(shape)
        # Same float32 `(var + eps).sqrt()` the eager layer evaluates.
        eps = np.asarray(spec["eps"], dtype=np.float64).astype(np.float32)
        self.denom = np.sqrt(arrays[spec["var"]].reshape(shape) + eps)

    def run(self, x: np.ndarray) -> np.ndarray:
        return ((x - self.mean) / self.denom) * self.gamma + self.beta


class _ReluOp(_Op):
    def run(self, x):
        return _relu(x)


class _Relu6Op(_Op):
    def run(self, x):
        return np.clip(x, 0.0, 6.0)


class _FlattenOp(_Op):
    def run(self, x):
        return x.reshape(x.shape[:1] + (-1,))


class _GlobalAvgPoolOp(_Op):
    def run(self, x):
        count = x.shape[2] * x.shape[3]
        # Tensor.mean computes sum * (1/count) in float32; keep that order.
        return x.sum(axis=(2, 3)) * np.float32(1.0 / count)


class _MaxPoolOp(_Op):
    def run(self, x):
        kernel, stride = self.spec["kernel"], self.spec["stride"]
        padding = self.spec["padding"]
        n, c, h, w = x.shape
        data = x
        if padding > 0:
            data = np.pad(
                x, ((0, 0), (0, 0), (padding, padding), (padding, padding)),
                constant_values=-np.inf)
        oh = _output_size(h, kernel, stride, padding)
        ow = _output_size(w, kernel, stride, padding)
        windows = pool_windows(data, kernel, stride, oh, ow)
        flat = windows.reshape(n, c, oh, ow, kernel * kernel)
        argmax = flat.argmax(axis=-1)
        out = np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]
        return np.ascontiguousarray(out)


class _AvgPoolOp(_Op):
    def run(self, x):
        kernel, stride = self.spec["kernel"], self.spec["stride"]
        h, w = x.shape[2:]
        oh = _output_size(h, kernel, stride, 0)
        ow = _output_size(w, kernel, stride, 0)
        windows = pool_windows(x, kernel, stride, oh, ow)
        return np.ascontiguousarray(windows.mean(axis=(-1, -2)))


class _ResidualOp(_Op):
    def __init__(self, spec, artifact, ctx):
        super().__init__(spec, artifact, ctx)
        self.main = [_build_op(s, artifact, ctx) for s in spec["main"]]
        self.shortcut = [_build_op(s, artifact, ctx)
                         for s in spec["shortcut"]]
        self.post = spec["post"]

    def run(self, x):
        out = x
        for op in self.main:
            out = op.run(out)
        identity = x
        for op in self.shortcut:
            identity = op.run(identity)
        out = out + identity
        if self.post == "relu":
            out = _relu(out)
        return out


class _EmbeddingOp(_Op):
    def __init__(self, spec, artifact, ctx):
        super().__init__(spec, artifact, ctx)
        self.weight = artifact.arrays[spec["weight"]]

    def run(self, ids):
        return self.weight[np.asarray(ids, dtype=np.int64)]


class _MergeTimeOp(_Op):
    def run(self, x):
        n, t, h = x.shape
        return x.reshape(n * t, h)


class _TakeLastOp(_Op):
    def run(self, x):
        return x[:, x.shape[1] - 1]


class _RnnCell:
    def __init__(self, spec: dict, artifact: ServeArtifact):
        self.hidden = spec["hidden_size"]
        self.w_ih = decode_weight_record(artifact, spec["weight_ih"])
        self.w_hh = decode_weight_record(artifact, spec["weight_hh"])
        arrays = artifact.arrays
        self.b_ih = arrays[spec["bias_ih"]]
        self.b_hh = arrays[spec["bias_hh"]]
        self.act = _make_act(spec["act_quant"])


class _RnnOp(_Op):
    def __init__(self, spec, artifact, ctx):
        super().__init__(spec, artifact, ctx)
        self.cell_kind = spec["cell"]
        self.cells = [_RnnCell(c, artifact) for c in spec["cells"]]
        self.hidden = spec["hidden_size"]

    def run(self, x: np.ndarray) -> np.ndarray:
        n, steps, _ = x.shape
        zeros = np.zeros((n, self.hidden), dtype=np.float32)
        h = [zeros.copy() for _ in self.cells]
        c = [zeros.copy() for _ in self.cells]
        outputs = []
        for t in range(steps):
            inp = x[:, t]
            for index, cell in enumerate(self.cells):
                if self.cell_kind == "lstm":
                    h[index], c[index] = self._lstm_step(
                        cell, inp, h[index], c[index])
                else:
                    h[index] = self._gru_step(cell, inp, h[index])
                inp = h[index]
            outputs.append(inp)
        self._record(steps)
        return np.stack(outputs, axis=1)

    @staticmethod
    def _lstm_step(cell, x, h, c):
        if cell.act is not None:
            x = cell.act(x)
            h = cell.act(h)
        gates = x @ cell.w_ih.T + cell.b_ih + h @ cell.w_hh.T + cell.b_hh
        size = cell.hidden
        i = _sigmoid(gates[:, 0 * size:1 * size])
        f = _sigmoid(gates[:, 1 * size:2 * size])
        g = np.tanh(gates[:, 2 * size:3 * size])
        o = _sigmoid(gates[:, 3 * size:4 * size])
        c_next = f * c + i * g
        return o * np.tanh(c_next), c_next

    @staticmethod
    def _gru_step(cell, x, h):
        if cell.act is not None:
            x_in = cell.act(x)
            h_in = cell.act(h)
        else:
            x_in, h_in = x, h
        gi = x_in @ cell.w_ih.T + cell.b_ih
        gh = h_in @ cell.w_hh.T + cell.b_hh
        size = cell.hidden
        r = _sigmoid(gi[:, :size] + gh[:, :size])
        z = _sigmoid(gi[:, size:2 * size] + gh[:, size:2 * size])
        n = np.tanh(gi[:, 2 * size:] + r * gh[:, 2 * size:])
        return (np.float32(1.0) - z) * n + z * h

    def _record(self, steps: int) -> None:
        workloads = []
        for cell in self.cells:
            workloads.append({"rows": cell.w_ih.shape[0],
                              "reduction": cell.w_ih.shape[1],
                              "columns": steps, "sequential": False})
            workloads.append({"rows": cell.w_hh.shape[0],
                              "reduction": cell.w_hh.shape[1],
                              "columns": steps, "sequential": True})
        self.spec["workload"] = workloads


_OP_TYPES = {
    "conv": _ConvOp,
    "linear": _LinearOp,
    "batchnorm2d": _BatchNormOp,
    "batchnorm1d": _BatchNormOp,
    "relu": _ReluOp,
    "relu6": _Relu6Op,
    "flatten": _FlattenOp,
    "globalavgpool": _GlobalAvgPoolOp,
    "maxpool": _MaxPoolOp,
    "avgpool": _AvgPoolOp,
    "residual": _ResidualOp,
    "embedding": _EmbeddingOp,
    "merge_time": _MergeTimeOp,
    "take_last": _TakeLastOp,
    "rnn": _RnnOp,
}


def _build_op(spec: dict, artifact: ServeArtifact,
              ctx: _PlanContext) -> _Op:
    try:
        op_type = _OP_TYPES[spec["kind"]]
    except KeyError:
        raise ExportError(f"unknown plan op kind {spec['kind']!r}")
    return op_type(spec, artifact, ctx)


# ----------------------------------------------------------------------
# Plan
# ----------------------------------------------------------------------
class ExecutionPlan:
    """Loaded, ready-to-serve form of an exported model."""

    def __init__(self, artifact: ServeArtifact):
        self.artifact = artifact
        self._ctx = _PlanContext()
        self.ops = [_build_op(spec, artifact, self._ctx)
                    for spec in artifact.manifest["ops"]]
        self.input_shape = tuple(artifact.manifest["input_shape"])
        self.input_dtype = np.dtype(artifact.manifest["input_dtype"])

    @classmethod
    def load(cls, path) -> "ExecutionPlan":
        return cls(ServeArtifact.load(path))

    # ------------------------------------------------------------------
    def forward(self, batch: np.ndarray) -> np.ndarray:
        """Run a (N, ...) request batch through the plan."""
        x = np.asarray(batch)
        if tuple(x.shape[1:]) != self.input_shape:
            raise ShapeError(
                f"plan expects per-request shape {self.input_shape}, got "
                f"{tuple(x.shape[1:])}")
        self._ctx.request_batch = x.shape[0]
        for op in self.ops:
            x = op.run(x)
        return x

    __call__ = forward

    # ------------------------------------------------------------------
    # FPGA cost model
    # ------------------------------------------------------------------
    def workloads(self, batch: int = 1) -> List[GemmWorkload]:
        """GEMM workloads of one plan pass serving ``batch`` requests.

        Batched requests fill additional output-position lanes, so
        ``columns`` scales with the micro-batch size — the cycle-level
        source of the serving throughput win.
        """
        specs: List[dict] = []

        def collect(op_specs):
            for spec in op_specs:
                if spec["kind"] == "residual":
                    collect(spec["main"])
                    collect(spec["shortcut"])
                elif spec["kind"] == "rnn":
                    specs.extend(
                        dict(w, name=f"{spec['name']}.{i}")
                        for i, w in enumerate(spec.get("workload") or []))
                elif "workload" in spec:
                    specs.append(dict(spec["workload"], name=spec["name"]))

        collect(self.artifact.manifest["ops"])
        if not specs:
            raise ExportError(
                "plan has no recorded workloads; run forward() once first")
        return [GemmWorkload(name=s["name"], rows=s["rows"],
                             reduction=s["reduction"],
                             columns=s["columns"] * batch,
                             sequential_columns=s["sequential"])
                for s in specs]

    def simulate(self, design: Optional[GemmDesign] = None,
                 batch: int = 1, **sim_kwargs) -> NetworkPerformance:
        """Price one plan pass on an accelerator design (default: the
        paper's D2-3 XC7Z045 point, Table VII)."""
        if design is None:
            design = reference_designs()["D2-3"]
        return simulate_network(self.workloads(batch), design, **sim_kwargs)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        lines = [self.artifact.summary()]
        try:
            workloads = self.workloads()
        except ExportError:
            return lines[0]
        total_macs = sum(w.macs for w in workloads)
        lines.append(f"gemm layers:  {len(workloads)} "
                     f"({total_macs / 1e6:.2f} MMACs/request)")
        return "\n".join(lines)
