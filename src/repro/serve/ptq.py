"""Post-training quantization: a training-free path to a servable model.

The paper's accuracy numbers come from ADMM quantization-aware training
(:meth:`repro.api.Pipeline.fit`), which is what production exports should
use. For serving demos, CLI smoke tests and benchmarks we also need a fast
path that makes *any* model exportable in milliseconds:

1. calibrate activation clipping ranges on a few batches (running max-abs,
   exactly like QAT's calibration phase, Alg. 1);
2. project every quantizable weight onto the requested scheme's level sets
   in one shot — by default MSQ (Alg. 2), but any registered scheme
   (``fixed``/``p2``/``sp2``) works via the :mod:`repro.api.registry`
   factory.

The result dict has the same shape as ``QATResult.layer_results``, so the
export step (:func:`repro.serve.export.build_artifact`) accepts either
interchangeably. :meth:`repro.api.Pipeline.calibrate` is the front door.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Union

import numpy as np

from repro.api.registry import get_scheme
from repro.nn.module import Module
from repro.quant.admm import collect_quantizable
from repro.quant.partition import PartitionRatio
from repro.quant.trainer import install_activation_quantizers
from repro.tensor import Tensor, no_grad


def post_training_quantize(
        model: Module, calibration_batches: Iterable,
        weight_bits: int = 4, act_bits: int = 4,
        ratio: Union[str, float, PartitionRatio] = "2:1",
        skip_first: bool = True, scheme: str = "msq",
        alpha: Union[str, float] = "fit",
        quantize_activations: bool = True,
        skip_modules: Sequence[str] = (),
        act_skip_modules: Sequence[str] = (),
        layer_bits: Optional[Mapping[str, int]] = None,
        layer_ratios: Optional[Mapping[str, float]] = None
        ) -> Dict[str, object]:
    """Quantize ``model`` in place without training; returns layer results.

    ``calibration_batches`` yields model inputs (numpy arrays are wrapped in
    :class:`Tensor` for float inputs; integer token ids pass through raw).
    ``ratio`` is the SP2:fixed row ratio from FPGA characterization — the
    default 2:1 is the paper's XC7Z045 optimum (ignored by single-scheme
    quantizers). ``scheme`` resolves through the registry. The knob set
    mirrors the QAT path (``quantize_activations`` for weight-only runs,
    ``skip_modules``/``act_skip_modules`` substring filters, ``layer_bits``
    per-layer bit-width overrides) so one ``PipelineConfig`` means the same
    thing in both stages. ``layer_ratios`` maps name substrings to SP2
    fractions — the autotuner's per-layer refinement — overriding
    ``ratio`` for matching layers (first match wins; MSQ only).
    """
    model.eval()
    act_quantizers = {}
    if quantize_activations:
        act_skip = tuple(skip_modules) + tuple(act_skip_modules)
        act_quantizers = install_activation_quantizers(
            model, act_bits, skip_first=skip_first, skip=act_skip)
    if act_quantizers:   # weight-only runs need no calibration forwards
        with no_grad():
            for batch in calibration_batches:
                batch = np.asarray(batch)
                if np.issubdtype(batch.dtype, np.floating):
                    model(Tensor(batch))
                else:
                    model(batch)
        for quantizer in act_quantizers.values():
            quantizer.calibrating = False

    entry = get_scheme(scheme)

    def bits_for(name: str) -> int:
        for pattern, bits in dict(layer_bits or {}).items():
            if pattern in name:
                return bits
        return weight_bits

    base_ratio = PartitionRatio.coerce(ratio)

    def ratio_for(name: str) -> PartitionRatio:
        for pattern, fraction in dict(layer_ratios or {}).items():
            if pattern in name:
                return PartitionRatio.coerce(float(fraction))
        return base_ratio

    quantizers: Dict[tuple, object] = {}
    results: Dict[str, object] = {}
    for param_name, param in collect_quantizable(model, skip=skip_modules):
        key = (bits_for(param_name), ratio_for(param_name))
        if key not in quantizers:
            quantizers[key] = entry.make(key[0], ratio=key[1], alpha=alpha)
        result = quantizers[key].quantize(param.data.astype(np.float64))
        param.data = result.values.astype(param.data.dtype)
        results[param_name] = result
    return results
