"""Post-training quantization: a training-free path to a servable model.

The paper's accuracy numbers come from ADMM quantization-aware training
(:func:`repro.quant.quantize_model`), which is what production exports
should use. For serving demos, CLI smoke tests and benchmarks we also need
a fast path that makes *any* model exportable in milliseconds:

1. calibrate activation clipping ranges on a few batches (running max-abs,
   exactly like QAT's calibration phase, Alg. 1);
2. project every quantizable weight onto the MSQ level sets
   (:class:`~repro.quant.msq.MixedSchemeQuantizer`, Alg. 2) in one shot.

The result dict has the same shape as ``QATResult.layer_results``, so
:func:`repro.serve.export.export_model` accepts either interchangeably.
"""

from __future__ import annotations

from typing import Dict, Iterable, Union

import numpy as np

from repro.nn.module import Module
from repro.quant.admm import collect_quantizable
from repro.quant.msq import MixedSchemeQuantizer, MSQResult
from repro.quant.partition import PartitionRatio
from repro.quant.trainer import install_activation_quantizers
from repro.tensor import Tensor, no_grad


def post_training_quantize(
        model: Module, calibration_batches: Iterable,
        weight_bits: int = 4, act_bits: int = 4,
        ratio: Union[str, float, PartitionRatio] = "2:1",
        skip_first: bool = True) -> Dict[str, MSQResult]:
    """Quantize ``model`` in place without training; returns layer results.

    ``calibration_batches`` yields model inputs (numpy arrays are wrapped in
    :class:`Tensor` for float inputs; integer token ids pass through raw).
    ``ratio`` is the SP2:fixed row ratio from FPGA characterization — the
    default 2:1 is the paper's XC7Z045 optimum.
    """
    model.eval()
    act_quantizers = install_activation_quantizers(
        model, act_bits, skip_first=skip_first)
    with no_grad():
        for batch in calibration_batches:
            batch = np.asarray(batch)
            if np.issubdtype(batch.dtype, np.floating):
                model(Tensor(batch))
            else:
                model(batch)
    for quantizer in act_quantizers.values():
        quantizer.calibrating = False

    quantizer = MixedSchemeQuantizer(bits=weight_bits, ratio=ratio)
    results: Dict[str, MSQResult] = {}
    for param_name, param in collect_quantizable(model):
        result = quantizer.quantize(param.data.astype(np.float64))
        param.data = result.values.astype(param.data.dtype)
        results[param_name] = result
    return results
