"""Frozen serving artifact: packed weight codes + execution metadata.

An artifact is a single ``.npz`` file holding

- a JSON **manifest** — the op list produced by :mod:`repro.serve.compile`
  (layer kinds, geometry, scheme specs, activation-quantizer ranges, GEMM
  workload dimensions), and
- the referenced **arrays** — hardware weight words packed with the
  :mod:`repro.quant.encoding` hooks (``pack_fixed``/``pack_p2``/``pack_sp2``),
  per-row scales, SP2/fixed row masks (:mod:`repro.quant.partition`), and raw
  float parameters for the layers that stay full-precision (biases, batch
  norm, embeddings).

The weight codec here is deliberately *bit-faithful*: decoding a stored
layer reproduces the eager model's float32 weights exactly (the unit level
is recovered as the same IEEE double the quantizer projected onto, then
scaled by the same ``alpha`` multiply), which is what makes exported-artifact
inference bit-identical to the eager quantized model.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.errors import ExportError
from repro.util.hashing import stable_digest
from repro.quant.encoding import (
    encode_fixed,
    encode_p2,
    encode_sp2,
    pack_fixed,
    pack_p2,
    pack_sp2,
    storage_dtype,
    unpack_fixed,
    unpack_p2,
    unpack_sp2,
)
from repro.quant.msq import MSQResult
from repro.quant.partition import (
    RowPartition,
    partition_from_arrays,
    partition_to_arrays,
)
from repro.quant.quantizers import QuantResult
from repro.quant.schemes import Scheme

FORMAT = "repro-serve/1"
_MANIFEST_KEY = "__manifest__"


@dataclass
class ServeArtifact:
    """In-memory form of one exported model."""

    manifest: dict
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Array bookkeeping
    # ------------------------------------------------------------------
    def add_array(self, name: str, value: np.ndarray) -> str:
        if name in self.arrays:
            raise ExportError(f"duplicate artifact array {name!r}")
        self.arrays[name] = np.asarray(value)
        return name

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        payload = dict(self.arrays)
        payload[_MANIFEST_KEY] = np.frombuffer(
            json.dumps(self.manifest).encode("utf-8"), dtype=np.uint8)
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **payload)

    @classmethod
    def load(cls, path) -> "ServeArtifact":
        with np.load(path, allow_pickle=False) as data:
            if _MANIFEST_KEY not in data:
                raise ExportError(f"{path} is not a repro-serve artifact")
            manifest = json.loads(bytes(data[_MANIFEST_KEY]).decode("utf-8"))
            arrays = {key: data[key] for key in data.files
                      if key != _MANIFEST_KEY}
        if manifest.get("format") != FORMAT:
            raise ExportError(
                f"unsupported artifact format {manifest.get('format')!r}")
        return cls(manifest=manifest, arrays=arrays)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def digest(self) -> str:
        """Content digest over the manifest and every stored array.

        Two artifacts digest equally iff their ops and packed weight
        bytes are identical — the response cache keys on this, so a hit
        can only ever return bits the exact same deployment produced.
        Memoized: artifacts are frozen once hosted, so the first call's
        answer stays valid.
        """
        memo = getattr(self, "_digest", None)
        if memo is None:
            memo = stable_digest({"manifest": self.manifest,
                                  "arrays": self.arrays})
            self._digest = memo
        return memo

    @property
    def num_ops(self) -> int:
        def count(ops):
            total = 0
            for op in ops:
                if op["kind"] == "residual":
                    total += count(op["main"]) + count(op["shortcut"] or [])
                else:
                    total += 1
            return total

        return count(self.manifest["ops"])

    def stored_bytes(self) -> int:
        """Total bytes of every stored array (packed words, raw float
        parameters, and partition provenance together)."""
        return sum(array.nbytes for array in self.arrays.values())

    def packed_weight_bytes(self) -> int:
        """Bytes of the packed integer weight words alone — the number the
        paper's model-size claims are about."""
        return sum(array.nbytes for key, array in self.arrays.items()
                   if key.endswith(("words", ".sp2_mask")))

    def summary(self) -> str:
        m = self.manifest
        lines = [
            f"model:        {m.get('model', '?')}",
            f"format:       {m['format']}",
            f"input shape:  {tuple(m['input_shape'])} ({m['input_dtype']})",
            f"ops:          {self.num_ops}",
            f"artifact bytes: {self.stored_bytes()} "
            f"(packed weights: {self.packed_weight_bytes()})",
        ]
        quantized = [op for op in _iter_ops(m["ops"])
                     if isinstance(op.get("weight"), dict)
                     and op["weight"].get("mode") != "raw"]
        if quantized:
            modes = sorted({op["weight"]["mode"] for op in quantized})
            lines.append(f"quantized:    {len(quantized)} layers "
                         f"({', '.join(modes)})")
        return "\n".join(lines)


def _iter_ops(ops):
    for op in ops:
        if op["kind"] == "residual":
            yield from _iter_ops(op["main"])
            yield from _iter_ops(op["shortcut"] or [])
        elif op["kind"] == "rnn":
            yield op
            for cell in op["cells"]:
                yield {"kind": "rnn-cell", "weight": cell["weight_ih"]}
                yield {"kind": "rnn-cell", "weight": cell["weight_hh"]}
        else:
            yield op


# ----------------------------------------------------------------------
# Weight codec
# ----------------------------------------------------------------------
def encode_weight_record(artifact: ServeArtifact, key: str,
                         weight: np.ndarray, result=None) -> dict:
    """Store one weight tensor, packed according to its quantization result.

    ``result`` is the layer's :class:`~repro.quant.msq.MSQResult` or
    :class:`~repro.quant.quantizers.QuantResult` (or ``None`` for a layer
    kept full-precision, stored as raw float32).
    """
    shape = list(np.asarray(weight).shape)
    if result is None:
        ref = artifact.add_array(f"{key}.raw",
                                 np.asarray(weight, dtype=np.float32))
        return {"mode": "raw", "shape": shape, "array": ref}
    if isinstance(result, MSQResult):
        return _encode_msq(artifact, key, shape, result)
    if isinstance(result, QuantResult):
        return _encode_single(artifact, key, shape, result)
    raise ExportError(f"cannot encode weight result of type {type(result)!r}")


def _encode_msq(artifact: ServeArtifact, key: str, shape: list,
                result: MSQResult) -> dict:
    encoding = result.hardware_encoding()
    sp2 = encoding["sp2_codes"]
    bits = result.spec_fixed.bits
    partition = partition_to_arrays(result.partition)
    record = {
        "mode": "msq",
        "bits": bits,
        "m1": result.spec_sp2.m1,
        "m2": result.spec_sp2.m2,
        "shape": shape,
        "partition_threshold": float(partition["threshold"]),
        "sp2_mask": artifact.add_array(
            f"{key}.sp2_mask", partition["sp2_mask"]),
        "row_variances": artifact.add_array(
            f"{key}.row_variances", partition["variances"]),
        "row_alphas": artifact.add_array(
            f"{key}.row_alphas", result.row_alphas.astype(np.float64)),
        "fixed_words": artifact.add_array(
            f"{key}.fixed_words", pack_fixed(encoding["fixed_codes"], bits)),
        "sp2_words": artifact.add_array(
            f"{key}.sp2_words",
            pack_sp2(sp2).astype(storage_dtype(bits))),
    }
    return record


def partition_of_record(artifact: ServeArtifact,
                        record: dict) -> RowPartition:
    """Recover the trained SP2/fixed row partition of an MSQ weight record
    (provenance: which rows went to which core, and why)."""
    if record.get("mode") != "msq":
        raise ExportError("only MSQ weight records carry a row partition")
    return partition_from_arrays({
        "sp2_mask": artifact.arrays[record["sp2_mask"]],
        "threshold": record["partition_threshold"],
        "variances": artifact.arrays[record["row_variances"]],
    })


def _encode_single(artifact: ServeArtifact, key: str, shape: list,
                   result: QuantResult) -> dict:
    spec = result.spec
    if spec is None or result.unit_values is None:
        raise ExportError(
            f"layer {key!r} has an opaque quantization result; only "
            "fixed/P2/SP2/MSQ results can be packed")
    record = {"mode": spec.scheme.value, "bits": spec.bits,
              "alpha": float(result.alpha), "shape": shape}
    if spec.scheme == Scheme.FIXED:
        codes = encode_fixed(result.unit_values, spec.bits)
        record["words"] = artifact.add_array(
            f"{key}.words", pack_fixed(codes, spec.bits))
    elif spec.scheme == Scheme.P2:
        sign, codes = encode_p2(result.unit_values, spec.bits)
        record["words"] = artifact.add_array(
            f"{key}.words", pack_p2(sign, codes, spec.bits))
    elif spec.scheme == Scheme.SP2:
        code = encode_sp2(result.unit_values, spec.m1, spec.m2)
        record["m1"], record["m2"] = spec.m1, spec.m2
        record["words"] = artifact.add_array(
            f"{key}.words", pack_sp2(code).astype(storage_dtype(spec.bits)))
    else:
        raise ExportError(f"cannot pack scheme {spec.scheme}")
    return record


def decode_weight_record(artifact: ServeArtifact, record: dict) -> np.ndarray:
    """Reconstruct the eager model's float32 weight tensor from a record."""
    shape = tuple(record["shape"])
    mode = record["mode"]
    if mode == "raw":
        return np.asarray(artifact.arrays[record["array"]], dtype=np.float32)
    if mode == "msq":
        return _decode_msq(artifact, record).reshape(shape)
    bits = record["bits"]
    words = artifact.arrays[record["words"]]
    if mode == "fixed":
        unit = _fixed_unit(unpack_fixed(words, bits), bits)
    elif mode == "p2":
        sign, codes = unpack_p2(words, bits)
        unit = _p2_unit(sign, codes)
    elif mode == "sp2":
        code = unpack_sp2(words.astype(np.uint32), record["m1"], record["m2"])
        unit = _sp2_unit(code)
    else:
        raise ExportError(f"unknown weight record mode {mode!r}")
    # Same `alpha * unit` multiply the quantizer performed — bit-faithful.
    return (record["alpha"] * unit).reshape(shape).astype(np.float32)


def _fixed_unit(codes: np.ndarray, bits: int) -> np.ndarray:
    steps = 2 ** (bits - 1) - 1
    return codes.astype(np.float64) / steps


def _p2_unit(sign: np.ndarray, codes: np.ndarray) -> np.ndarray:
    magnitude = np.where(codes > 0, 2.0 ** (1 - codes.astype(np.float64)), 0.0)
    return sign * magnitude


def _sp2_unit(code) -> np.ndarray:
    term1 = np.where(code.c1 > 0, 2.0 ** (-code.c1.astype(np.float64)), 0.0)
    term2 = np.where(code.c2 > 0, 2.0 ** (-code.c2.astype(np.float64)), 0.0)
    return code.sign * (term1 + term2)


def _decode_msq(artifact: ServeArtifact, record: dict) -> np.ndarray:
    mask = np.asarray(artifact.arrays[record["sp2_mask"]], dtype=bool)
    alphas = np.asarray(artifact.arrays[record["row_alphas"]],
                        dtype=np.float64)
    bits, m1, m2 = record["bits"], record["m1"], record["m2"]
    fixed_words = artifact.arrays[record["fixed_words"]]
    sp2_words = artifact.arrays[record["sp2_words"]].astype(np.uint32)
    cols = int(np.prod(record["shape"][1:]))
    unit = np.zeros((mask.size, cols), dtype=np.float64)
    if fixed_words.size:
        unit[~mask] = _fixed_unit(unpack_fixed(fixed_words, bits), bits)
    if sp2_words.size:
        unit[mask] = _sp2_unit(unpack_sp2(sp2_words, m1, m2))
    return (unit * alphas[:, None]).astype(np.float32)
