"""Inference engine: an execution plan plus serving instrumentation.

``InferenceEngine`` is the unit batch execution drives: it runs
micro-batches through a loaded :class:`~repro.serve.plan.ExecutionPlan`,
keeps wall-clock counters, and prices every batch size it sees on the
configured accelerator design (cached — the cycle model runs once per
distinct batch size, not per request).

This module also owns :class:`ThroughputStats`, the one shared mixin
behind every stats dataclass in the serving stack (``EngineStats`` here,
``ServeStats`` in :mod:`repro.serve.scheduler`, ``ModelStats`` in
:mod:`repro.serve.server`): derived throughput/latency metrics are defined
once, and ``merge()`` aggregates same-typed stats across models or
workers.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.fpga.resources import GemmDesign, reference_designs
from repro.serve.backends import DEFAULT_BACKEND
from repro.serve.plan import ExecutionPlan


class ThroughputStats:
    """Derived serving metrics over the common counter fields.

    Mixed into the stats dataclasses; expects ``requests``, ``batches``
    and ``wall_seconds`` attributes, and optionally ``latencies_ms``
    (per-request queue+service latencies) and ``fpga_ms_total`` /
    ``fpga_ms`` (simulated accelerator time). Dataclasses without a field
    simply report 0 for the metrics that need it.
    """

    # ------------------------------------------------------------------
    # Throughput
    # ------------------------------------------------------------------
    @property
    def mean_batch_size(self) -> float:
        return self.requests / self.batches if self.batches else 0.0

    @property
    def requests_per_second(self) -> float:
        return (self.requests / self.wall_seconds
                if self.wall_seconds > 0 else 0.0)

    # ------------------------------------------------------------------
    # Latency percentiles (0 when the dataclass keeps no latency list)
    # ------------------------------------------------------------------
    def _latencies(self):
        return getattr(self, "latencies_ms", None) or []

    def _percentile(self, q: float) -> float:
        latencies = self._latencies()
        return float(np.percentile(latencies, q)) if latencies else 0.0

    @property
    def latency_ms_mean(self) -> float:
        latencies = self._latencies()
        return float(np.mean(latencies)) if latencies else 0.0

    @property
    def latency_ms_p50(self) -> float:
        return self._percentile(50)

    @property
    def latency_ms_p95(self) -> float:
        return self._percentile(95)

    @property
    def latency_ms_p99(self) -> float:
        return self._percentile(99)

    # Short spellings, matching the server/benchmark report columns.
    p50_ms = latency_ms_p50
    p95_ms = latency_ms_p95
    p99_ms = latency_ms_p99

    # ------------------------------------------------------------------
    # Simulated FPGA
    # ------------------------------------------------------------------
    def _fpga_total(self) -> float:
        total = getattr(self, "fpga_ms_total", None)
        if total is None:
            total = getattr(self, "fpga_ms", 0.0)
        return total

    @property
    def fpga_ms_per_request(self) -> float:
        return self._fpga_total() / self.requests if self.requests else 0.0

    # ------------------------------------------------------------------
    # Response cache (0 for dataclasses without the counters)
    # ------------------------------------------------------------------
    @property
    def cache_hit_rate(self) -> float:
        """Fraction of submitted requests answered from the response
        cache. ``requests`` counts only engine-served work, so the
        denominator adds hits and coalesced followers back in to get
        true submissions."""
        hits = getattr(self, "cache_hits", 0)
        submitted = (self.requests + hits
                     + getattr(self, "dedup_coalesced", 0))
        return hits / submitted if submitted else 0.0

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def merge(self, *others: "ThroughputStats") -> "ThroughputStats":
        """Aggregate same-typed stats (across models, workers, drains).

        Counters and wall/FPGA time sum (``wall_seconds`` is busy time, so
        a merge across concurrent workers reports conservative throughput),
        latency lists concatenate, equal strings are kept and differing
        ones collapse to ``"mixed"``. A field whose dataclass metadata
        sets ``merge="max"`` takes the maximum instead (e.g. a capacity
        like ``max_batch``).
        """
        for other in others:
            if type(other) is not type(self):
                raise ConfigurationError(
                    f"cannot merge {type(other).__name__} into "
                    f"{type(self).__name__}")
        merged = {}
        for spec in dataclasses.fields(self):
            values = [getattr(stats, spec.name)
                      for stats in (self, *others)]
            first = values[0]
            if spec.metadata.get("merge") == "max":
                merged[spec.name] = max(values)
            elif isinstance(first, (int, float)):
                merged[spec.name] = sum(values)
            elif isinstance(first, list):
                merged[spec.name] = [item for value in values
                                     for item in value]
            elif isinstance(first, str):
                merged[spec.name] = first if all(v == first
                                                 for v in values) else "mixed"
            else:
                merged[spec.name] = first
        return type(self)(**merged)


@dataclass
class EngineStats(ThroughputStats):
    """Lifetime counters of one engine."""

    requests: int = 0
    batches: int = 0
    wall_seconds: float = 0.0
    fpga_ms: float = 0.0


class InferenceEngine:
    """Batched quantized inference over a frozen artifact."""

    def __init__(self, plan: ExecutionPlan,
                 design: Optional[GemmDesign] = None,
                 clock=time.perf_counter):
        self.plan = plan
        # The paper's best published design point (D2-3: XC7Z045, 1:2
        # fixed:SP2) prices the simulated-FPGA latency numbers by default.
        self.design = design if design is not None \
            else reference_designs()["D2-3"]
        self.stats = EngineStats()
        self._clock = clock
        self._fpga_latency_cache: Dict[int, float] = {}

    @classmethod
    def load(cls, path, backend: str = DEFAULT_BACKEND,
             **kwargs) -> "InferenceEngine":
        return cls(ExecutionPlan.load(path, backend=backend), **kwargs)

    @property
    def backend(self) -> str:
        """Name of the kernel backend serving this engine's plan."""
        return self.plan.backend

    # ------------------------------------------------------------------
    def infer(self, batch: np.ndarray) -> np.ndarray:
        """Run one (N, ...) micro-batch; updates counters."""
        batch = np.asarray(batch)
        started = self._clock()
        outputs = self.plan.forward(batch)
        elapsed = self._clock() - started
        self.stats.requests += batch.shape[0]
        self.stats.batches += 1
        self.stats.wall_seconds += elapsed
        self.stats.fpga_ms += self.fpga_latency_ms(batch.shape[0])
        return outputs

    def infer_one(self, request: np.ndarray) -> np.ndarray:
        """Single-request convenience path (adds and strips the batch dim)."""
        return self.infer(np.asarray(request)[None])[0]

    def infer_stream(self, batch: np.ndarray, state: dict):
        """Run one (N, T, ...) chunk micro-batch from carried state.

        Returns ``(outputs, new_state)``
        (:meth:`~repro.serve.plan.ExecutionPlan.forward_stream`); counts
        each session's chunk as one request under the same counters as
        :meth:`infer`.
        """
        batch = np.asarray(batch)
        started = self._clock()
        outputs, new_state = self.plan.forward_stream(batch, state)
        elapsed = self._clock() - started
        self.stats.requests += batch.shape[0]
        self.stats.batches += 1
        self.stats.wall_seconds += elapsed
        self.stats.fpga_ms += self.fpga_latency_ms(batch.shape[0])
        return outputs, new_state

    # ------------------------------------------------------------------
    def fpga_latency_ms(self, batch_size: int) -> float:
        """Simulated accelerator latency of one micro-batch of this size.

        Milliseconds — exactly
        ``simulate_network(plan.workloads(batch_size), design).latency_ms``
        (the stack-wide ms convention; see :mod:`repro.fpga.accelerator`),
        cached per batch size.
        """
        if batch_size not in self._fpga_latency_cache:
            performance = self.plan.simulate(self.design, batch=batch_size)
            self._fpga_latency_cache[batch_size] = performance.latency_ms
        return self._fpga_latency_cache[batch_size]

    def warmup(self, batch_sizes=(1,)) -> None:
        """Bind scratch and run per-size verification outside the counters.

        One forward per listed batch size goes straight to the plan, so
        first-request latency excludes the lazy oracle compile and scratch
        allocation. Counters and the FPGA price cache are left untouched.
        """
        shape = self.plan.input_shape
        dtype = self.plan.input_dtype
        for size in batch_sizes:
            self.plan.forward(np.zeros((int(size),) + shape, dtype=dtype))
