"""Inference engine: an execution plan plus serving instrumentation.

``InferenceEngine`` is the unit the batch scheduler drives: it runs
micro-batches through a loaded :class:`~repro.serve.plan.ExecutionPlan`,
keeps wall-clock counters, and prices every batch size it sees on the
configured accelerator design (cached — the cycle model runs once per
distinct batch size, not per request).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.fpga.resources import GemmDesign, reference_designs
from repro.serve.backends import DEFAULT_BACKEND
from repro.serve.plan import ExecutionPlan


@dataclass
class EngineStats:
    """Lifetime counters of one engine."""

    requests: int = 0
    batches: int = 0
    wall_seconds: float = 0.0
    fpga_ms: float = 0.0

    @property
    def mean_batch_size(self) -> float:
        return self.requests / self.batches if self.batches else 0.0

    @property
    def requests_per_second(self) -> float:
        return (self.requests / self.wall_seconds
                if self.wall_seconds > 0 else 0.0)


class InferenceEngine:
    """Batched quantized inference over a frozen artifact."""

    def __init__(self, plan: ExecutionPlan,
                 design: Optional[GemmDesign] = None,
                 clock=time.perf_counter):
        self.plan = plan
        # The paper's best published design point (D2-3: XC7Z045, 1:2
        # fixed:SP2) prices the simulated-FPGA latency numbers by default.
        self.design = design if design is not None \
            else reference_designs()["D2-3"]
        self.stats = EngineStats()
        self._clock = clock
        self._fpga_latency_cache: Dict[int, float] = {}

    @classmethod
    def load(cls, path, backend: str = DEFAULT_BACKEND,
             **kwargs) -> "InferenceEngine":
        return cls(ExecutionPlan.load(path, backend=backend), **kwargs)

    @property
    def backend(self) -> str:
        """Name of the kernel backend serving this engine's plan."""
        return self.plan.backend

    # ------------------------------------------------------------------
    def infer(self, batch: np.ndarray) -> np.ndarray:
        """Run one (N, ...) micro-batch; updates counters."""
        batch = np.asarray(batch)
        started = self._clock()
        outputs = self.plan.forward(batch)
        elapsed = self._clock() - started
        self.stats.requests += batch.shape[0]
        self.stats.batches += 1
        self.stats.wall_seconds += elapsed
        self.stats.fpga_ms += self.fpga_latency_ms(batch.shape[0])
        return outputs

    def infer_one(self, request: np.ndarray) -> np.ndarray:
        """Single-request convenience path (adds and strips the batch dim)."""
        return self.infer(np.asarray(request)[None])[0]

    # ------------------------------------------------------------------
    def fpga_latency_ms(self, batch_size: int) -> float:
        """Simulated accelerator latency of one micro-batch of this size."""
        if batch_size not in self._fpga_latency_cache:
            performance = self.plan.simulate(self.design, batch=batch_size)
            self._fpga_latency_cache[batch_size] = performance.latency_ms
        return self._fpga_latency_cache[batch_size]
