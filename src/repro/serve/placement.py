"""Pluggable request placement for the cluster router.

A placement policy answers one question: *given a request for model M,
in which order should the router try the workers that host M?* The
router then admits the request to the first worker in that order that
is alive, accepting, and under its in-flight capacity — so a policy
expresses preference, and admission control stays in one place.

Policies register by name, same decorator idiom as the scheme/method/
strategy/backend registries::

    @register_placement("sticky")
    class StickyPlacement(PlacementPolicy):
        \"\"\"Route every request for a model to its lowest-index host.\"\"\"
        def order(self, model, workers):
            return sorted(workers, key=lambda w: w.index)

Each policy sees :class:`WorkerView` snapshots (name, index, hosted
models, liveness, in-flight load, capacity) — never the transport — so
policies are trivially unit-testable and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Type

from repro.errors import ConfigurationError
from repro.util.hashing import ring_hash

__all__ = [
    "WorkerView",
    "PlacementPolicy",
    "register_placement",
    "get_placement",
    "list_placements",
]


@dataclass(frozen=True)
class WorkerView:
    """What a placement policy may observe about one worker."""

    name: str
    index: int
    models: FrozenSet[str]
    alive: bool = True
    accepting: bool = True
    in_flight: int = 0
    capacity: int = 0

    @property
    def load(self) -> float:
        """In-flight requests as a fraction of capacity (0 when
        uncapped)."""
        return self.in_flight / self.capacity if self.capacity else 0.0


class PlacementPolicy:
    """Base class: subclass, implement ``order``, register by name.

    One policy instance lives per router, so stateful policies (e.g. a
    round-robin cursor) are supported and isolated per cluster.
    """

    name = "base"

    #: Set by policies whose ordering depends on the request *payload*
    #: (e.g. cache-affinity routing). The router only computes a payload
    #: digest when the policy asks for one, so digest cost is never paid
    #: by policies that ignore it.
    wants_request_key = False

    def order(self, model: str,
              workers: Sequence[WorkerView]) -> List[WorkerView]:
        """Preference-ordered workers to try for one request.

        ``workers`` are the alive workers hosting ``model``; returning a
        prefix (or an empty list) is allowed — the router sheds the
        request if no returned worker admits it.
        """
        raise NotImplementedError

    def order_request(self, model: str, key: Optional[str],
                      workers: Sequence[WorkerView]) -> List[WorkerView]:
        """Preference order for one *request*, with its routing key.

        ``key`` is a digest of the request payload when the router has
        one (response caching enabled and ``wants_request_key`` set),
        else ``None``. The default ignores it and delegates to
        :meth:`order`, so existing policies keep working unchanged;
        cache-affinity policies override this to pin identical payloads
        to the worker whose response cache is already warm.
        """
        return self.order(model, workers)


_PLACEMENTS: Dict[str, Type[PlacementPolicy]] = {}


def register_placement(name: str):
    """Class decorator: register a :class:`PlacementPolicy` under
    ``name`` (its docstring's first line becomes the description)."""

    def deco(cls: Type[PlacementPolicy]) -> Type[PlacementPolicy]:
        if not (isinstance(cls, type)
                and issubclass(cls, PlacementPolicy)):
            raise ConfigurationError(
                f"@register_placement expects a PlacementPolicy subclass, "
                f"got {cls!r}")
        cls.name = name
        _PLACEMENTS[name] = cls
        return cls

    return deco


def get_placement(name: str) -> PlacementPolicy:
    """A fresh policy instance for a router."""
    if name not in _PLACEMENTS:
        raise ConfigurationError(
            f"unknown placement {name!r}; "
            f"available: {sorted(_PLACEMENTS)}")
    return _PLACEMENTS[name]()


def list_placements() -> Dict[str, str]:
    """name -> one-line description of every registered policy."""
    return {name: (cls.__doc__ or "").strip().splitlines()[0]
            for name, cls in sorted(_PLACEMENTS.items())}


# ----------------------------------------------------------------------
# Built-in policies
# ----------------------------------------------------------------------
@register_placement("least_loaded")
class LeastLoadedPlacement(PlacementPolicy):
    """Prefer the worker with the fewest in-flight requests (ties break
    by worker index, so the order is deterministic)."""

    def order(self, model: str,
              workers: Sequence[WorkerView]) -> List[WorkerView]:
        return sorted(workers, key=lambda w: (w.in_flight, w.index))


@register_placement("replicated")
class ReplicatedPlacement(PlacementPolicy):
    """Round-robin across every replica of the model (hot models
    replicated on all workers get an even request spread)."""

    def __init__(self):
        self._cursor: Dict[str, int] = {}

    def order(self, model: str,
              workers: Sequence[WorkerView]) -> List[WorkerView]:
        if not workers:
            return []
        ranked = sorted(workers, key=lambda w: w.index)
        start = self._cursor.get(model, 0) % len(ranked)
        self._cursor[model] = start + 1
        return ranked[start:] + ranked[:start]


@register_placement("consistent_hash")
class ConsistentHashPlacement(PlacementPolicy):
    """Hash the model name — or, when the router provides one, the
    request's payload digest — onto a ring of workers: repeats of the
    same key stick to one home worker (response-cache/scratch
    affinity), spilling to the next ring successor only when the home
    is down or full."""

    VNODES = 32    # virtual nodes per worker smooth the ring

    #: With response caching on, identical payloads must land on the
    #: worker whose cache already holds the answer — so this policy
    #: asks the router for the payload digest.
    wants_request_key = True

    # Kept as a method for tests/subclasses; byte-compatible ring_hash
    # lives in repro.util.hashing now.
    _hash = staticmethod(ring_hash)

    def order(self, model: str,
              workers: Sequence[WorkerView]) -> List[WorkerView]:
        return self.order_request(model, None, workers)

    def order_request(self, model: str, key: Optional[str],
                      workers: Sequence[WorkerView]) -> List[WorkerView]:
        ring = sorted(
            (self._hash(f"{worker.name}#{vnode}"), worker.index, worker)
            for worker in workers
            for vnode in range(self.VNODES))
        if not ring:
            return []
        point = self._hash(model if key is None else f"{model}|{key}")
        start = next((position for position, entry in enumerate(ring)
                      if entry[0] >= point), 0)
        ordered, seen = [], set()
        for _, _, worker in ring[start:] + ring[:start]:
            if worker.index not in seen:
                seen.add(worker.index)
                ordered.append(worker)
        return ordered
