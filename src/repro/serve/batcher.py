"""Dynamic batch forming, separated from batch execution.

``DynamicBatcher`` owns exactly one concern: turning a FIFO stream of
single requests into micro-batches. A batch becomes ready when it fills
(``max_batch`` requests queued) **or** when the oldest queued request's
deadline expires (``max_wait_ms`` after it was enqueued) — the classic
size-or-time policy that trades a bounded latency hit for GEMM lane fill.
Execution lives elsewhere (:func:`repro.serve.scheduler.execute_batch`,
driven synchronously by the legacy facade or by
:class:`~repro.serve.server.ModelServer` workers).

The batcher is deliberately passive and deterministic: it never sleeps,
never spawns threads, and only reads the injectable ``clock`` when a
request is enqueued (to stamp ``enqueued_at`` and its deadline). Readiness
checks take ``now`` from the caller, so tests drive time explicitly and
the legacy force-drain path performs exactly the same clock-call sequence
as the pre-refactor scheduler (which is what keeps its ``ServeStats``
bit-identical).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class ServedRequest:
    """One enqueued inference request and, once served, its result."""

    id: int
    payload: np.ndarray
    enqueued_at: float
    completed_at: Optional[float] = None
    result: Optional[np.ndarray] = None
    batch_id: Optional[int] = None
    batch_size: Optional[int] = None
    fpga_ms: Optional[float] = None   # batch FPGA latency / batch size
    deadline: Optional[float] = None  # enqueued_at + max_wait, None = no cap
    model: Optional[str] = None
    future: Optional[object] = field(default=None, repr=False)
    error: Optional[BaseException] = field(default=None, repr=False)
    cached: bool = False              # answered from the response cache
    coalesced: bool = False           # rode another identical request

    @property
    def done(self) -> bool:
        return self.completed_at is not None

    @property
    def latency_ms(self) -> float:
        if not self.done:
            raise ConfigurationError(f"request {self.id} not served yet")
        return (self.completed_at - self.enqueued_at) * 1e3


def coerce_payload(plan, payload) -> np.ndarray:
    """Validate one request against a plan and coerce it to serving form.

    Shape mismatch is an immediate error (not a deferred batch failure).
    The payload is only copied when it has to be: a request that already
    matches the plan's dtype and is C-contiguous is passed through as-is,
    so a well-behaved client costs zero copies on the submit path.
    """
    payload = np.asarray(payload)
    expected = plan.input_shape
    if tuple(payload.shape) != expected:
        raise ConfigurationError(
            f"request shape {tuple(payload.shape)} != plan input "
            f"shape {expected}")
    if payload.dtype != plan.input_dtype \
            or not payload.flags["C_CONTIGUOUS"]:
        payload = np.ascontiguousarray(payload, dtype=plan.input_dtype)
    return payload


def coerce_chunk(plan, chunk) -> np.ndarray:
    """:func:`coerce_payload` for one streaming chunk.

    A chunk is a ``(T,) + step_shape`` slice of a session's input stream:
    the leading timestep count is free (``T >= 1``), only the per-step
    trailing dims must match the plan. Same copy discipline as the
    request path.
    """
    chunk = np.asarray(chunk)
    step_shape = plan.input_shape[1:]
    if chunk.ndim != len(plan.input_shape) \
            or tuple(chunk.shape[1:]) != step_shape or chunk.shape[0] < 1:
        raise ConfigurationError(
            f"stream chunk shape {tuple(chunk.shape)} != (T,) + "
            f"{step_shape} with T >= 1 (plan input {plan.input_shape})")
    if chunk.dtype != plan.input_dtype \
            or not chunk.flags["C_CONTIGUOUS"]:
        chunk = np.ascontiguousarray(chunk, dtype=plan.input_dtype)
    return chunk


class DynamicBatcher:
    """FIFO micro-batch former with a size-or-deadline flush policy."""

    def __init__(self, max_batch: int = 16,
                 max_wait_ms: Optional[float] = None,
                 clock=time.perf_counter):
        if max_batch < 1:
            raise ConfigurationError(
                f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms is not None and max_wait_ms < 0:
            raise ConfigurationError(
                f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self.max_batch = int(max_batch)
        self.max_wait_ms = max_wait_ms
        self._clock = clock
        self._queue: Deque[ServedRequest] = deque()
        self._next_id = 0

    # ------------------------------------------------------------------
    def submit(self, payload: np.ndarray, future=None,
               model: Optional[str] = None) -> ServedRequest:
        """Enqueue one validated request (a single input, no batch dim)."""
        now = self._clock()
        request = ServedRequest(
            id=self._next_id, payload=payload, enqueued_at=now,
            deadline=None if self.max_wait_ms is None
            else now + self.max_wait_ms / 1e3,
            future=future, model=model)
        self._next_id += 1
        self._queue.append(request)
        return request

    def reserve_id(self) -> int:
        """Claim one request id without enqueueing anything — cache-hit
        and coalesced-follower records share the model's id space, so
        every ``ServedRequest`` a client sees is uniquely numbered."""
        request_id = self._next_id
        self._next_id += 1
        return request_id

    @property
    def pending(self) -> int:
        return len(self._queue)

    def __len__(self) -> int:
        return len(self._queue)

    def oldest_enqueued_at(self) -> Optional[float]:
        return self._queue[0].enqueued_at if self._queue else None

    def next_deadline(self) -> Optional[float]:
        """Deadline of the oldest queued request (FIFO ⇒ the earliest),
        or None when idle / when requests never expire."""
        if not self._queue:
            return None
        return self._queue[0].deadline

    # ------------------------------------------------------------------
    def ready(self, now: Optional[float] = None) -> bool:
        """Is a batch ready — full, or past the oldest request's deadline?"""
        if not self._queue:
            return False
        if len(self._queue) >= self.max_batch:
            return True
        deadline = self._queue[0].deadline
        if deadline is None:
            return False
        if now is None:
            now = self._clock()
        return now >= deadline

    def take(self, now: Optional[float] = None,
             force: bool = False) -> List[ServedRequest]:
        """Pop the next micro-batch (up to ``max_batch`` requests, FIFO).

        Returns ``[]`` unless the batch is ready or ``force`` is set.
        ``force=True`` never consults the clock — the legacy drain path
        relies on that to keep its clock-call sequence unchanged.
        """
        if not self._queue:
            return []
        if not force and not self.ready(now):
            return []
        return [self._queue.popleft()
                for _ in range(min(self.max_batch, len(self._queue)))]
