"""Command-line entry point: ``python -m repro.serve <command>``.

Four subcommands cover the export → inspect → serve loop end to end with
synthetic data, so the whole serving path can be exercised without training:

- ``export`` — build a model from the small zoo, post-training-quantize it
  (MSQ weights + calibrated activation ranges), and write a verified
  artifact;
- ``backends`` — list kernel backends with availability (compiler probe
  result for ``compiled``) plus the codegen build cache;
  ``--clear-cache`` empties it;
- ``info`` — print an artifact's manifest summary and GEMM workloads;
- ``run`` — load an artifact, push synthetic requests through the dynamic
  batcher (:class:`~repro.serve.server.ModelServer`, synchronous mode),
  and report wall-clock and simulated-FPGA serving statistics;
- ``up`` — start a live multi-model server (``--model name=path``,
  repeatable) speaking a JSON-lines protocol on stdin/stdout:
  ``{"model": "resnet", "input": [...], "id": 7}`` in,
  ``{"id": 7, "model": "resnet", "output": [...], "latency_ms": ...}``
  out; ``{"op": "stats"}`` emits a per-model statistics line. Responses
  preserve per-model submission order; batches form dynamically from
  whatever arrives within ``--max-wait-ms``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict

import numpy as np

from repro.errors import (
    ConfigurationError,
    FrameError,
    ReproError,
    ServingError,
)
from repro.serve.transport import (
    MAX_MESSAGE_BYTES,
    array_from_wire,
    array_to_wire,
)


def _resnet_tiny(rng):
    from repro.models import resnet_tiny

    return resnet_tiny(num_classes=10, rng=rng), _image_sampler(3, 16)


def _resnet18(rng):
    from repro.models import resnet18_cifar

    return resnet18_cifar(num_classes=10, rng=rng), _image_sampler(3, 16)


def _mobilenet(rng):
    from repro.models import mobilenet_v2_tiny

    return mobilenet_v2_tiny(num_classes=10, rng=rng), _image_sampler(3, 16)


def _lstm_lm(rng):
    from repro.models import LSTMLanguageModel

    model = LSTMLanguageModel(vocab_size=40, embed_dim=16, hidden_size=24,
                              num_layers=2, rng=rng)
    return model, _token_sampler(vocab=40, timesteps=12)


def _gru_speech(rng):
    from repro.models import GRUSpeechModel

    model = GRUSpeechModel(input_dim=13, hidden_size=24, num_layers=2,
                           rng=rng)
    return model, _frame_sampler(timesteps=12, features=13)


def _lstm_sentiment(rng):
    from repro.models import LSTMSentimentClassifier

    model = LSTMSentimentClassifier(vocab_size=40, embed_dim=16,
                                    hidden_size=24, num_layers=2, rng=rng)
    return model, _token_sampler(vocab=40, timesteps=12)


def _yolo_lite(rng):
    from repro.models import YoloLite

    # Serves the raw detection grid; decode/NMS stay host-side.
    return YoloLite(num_classes=3, rng=rng), _image_sampler(3, 32)


def _image_sampler(channels, size):
    def sample(rng, n):
        return rng.normal(size=(n, channels, size, size)).astype(np.float32)

    return sample


def _token_sampler(vocab, timesteps):
    def sample(rng, n):
        return rng.integers(0, vocab, size=(n, timesteps), dtype=np.int64)

    return sample


def _frame_sampler(timesteps, features):
    def sample(rng, n):
        return rng.normal(size=(n, timesteps, features)).astype(np.float32)

    return sample


MODEL_ZOO: Dict[str, Callable] = {
    "resnet_tiny": _resnet_tiny,
    "resnet18_cifar": _resnet18,
    "mobilenet_v2": _mobilenet,
    "lstm_lm": _lstm_lm,
    "gru_speech": _gru_speech,
    "lstm_sentiment": _lstm_sentiment,
    "yolo_lite": _yolo_lite,
}


def build_model(name: str, seed: int = 0):
    """Instantiate a zoo model and its synthetic input sampler."""
    if name not in MODEL_ZOO:
        raise ConfigurationError(
            f"unknown model {name!r}; available: {sorted(MODEL_ZOO)}")
    return MODEL_ZOO[name](np.random.default_rng(seed))


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_export(args) -> int:
    # One quantize-and-export implementation for every CLI spelling.
    from repro.api.cli import run_quantize

    return run_quantize(args.model, args.out, bits=args.bits,
                        ratio=args.ratio,
                        calibration_batches=args.calibration_batches,
                        seed=args.seed)


def cmd_backends(args) -> int:
    from repro.serve.backends import backend_availability, get_backend
    from repro.serve.codegen import (cache_dir, cached_libraries,
                                     clear_cache)

    if args.clear_cache:
        removed = clear_cache()
        print(f"cleared {removed} cached kernel librar"
              f"{'y' if removed == 1 else 'ies'} from {cache_dir()}")
        return 0
    rows = []
    for name, (usable, note) in backend_availability().items():
        backend = get_backend(name)
        status = "available" if usable else "unavailable"
        if not usable and backend.fallback:
            status += f" (falls back to {backend.fallback})"
        rows.append((name, status, note))
    width = max(len(name) for name, _, _ in rows)
    swidth = max(len(status) for _, status, _ in rows)
    for name, status, note in rows:
        print(f"{name:<{width}}  {status:<{swidth}}  {note}")
    libraries = cached_libraries()
    print(f"codegen cache: {cache_dir()} "
          f"({len(libraries)} compiled kernel librar"
          f"{'y' if len(libraries) == 1 else 'ies'})")
    return 0


def cmd_info(args) -> int:
    from repro.serve.plan import ExecutionPlan

    plan = ExecutionPlan.load(args.artifact, backend=args.backend)
    print(plan.describe())
    performance = plan.simulate(batch=1)
    print(f"FPGA (D2-3):  {performance.latency_ms:.3f} ms/request, "
          f"{performance.throughput_gops:.1f} GOPS")
    return 0


def synthetic_payloads(plan, count: int, seed: int = 0):
    """``count`` random single-request payloads matching a plan's input."""
    rng = np.random.default_rng(seed)
    shape, dtype = plan.input_shape, plan.input_dtype
    if np.issubdtype(dtype, np.floating):
        return [rng.normal(size=shape).astype(dtype) for _ in range(count)]
    token_bound = plan.graph.token_bound()
    return [rng.integers(0, token_bound, size=shape).astype(dtype)
            for _ in range(count)]


def cmd_run(args) -> int:
    from repro.serve.server import ModelServer

    server = ModelServer(workers=0, max_batch=args.batch)
    server.load("model", args.artifact, backend=args.backend,
                batch=args.batch)
    payloads = synthetic_payloads(server.plan("model"), args.requests,
                                  seed=args.seed)
    futures = server.submit_many("model", payloads)
    server.drain()
    for future in futures:
        future.result(timeout=0)
    stats = server.stats()["model"].to_serve_stats()
    server.close()
    print(f"served {args.requests} synthetic requests "
          f"(max_batch={args.batch})")
    print(stats.format())
    return 0


def cmd_pipeline(args) -> int:
    """Partition an artifact, serve synthetic requests through the stage
    pipeline, and verify the outputs are bit-identical to the
    single-device plan (micro-batched the same way)."""
    import os
    import tempfile

    from repro.serve.artifact import ServeArtifact
    from repro.serve.partition import (PipelineEngine, auto_cuts,
                                       process_pipeline_cluster,
                                       split_artifact)
    from repro.serve.plan import ExecutionPlan

    artifact = ServeArtifact.load(args.artifact)
    cuts = ([int(c) for c in args.cuts.split(",")] if args.cuts
            else list(auto_cuts(artifact, stages=args.stages)))
    name = str(artifact.manifest.get("model", "model")) or "model"

    # Single-device reference, micro-batched exactly like the pipeline
    # will batch (bit-exactness is per identical batch composition).
    reference = ExecutionPlan(artifact, backend=args.backend)
    payloads = synthetic_payloads(reference, args.requests, seed=args.seed)
    expected = []
    for start in range(0, len(payloads), args.batch):
        chunk = np.stack(payloads[start:start + args.batch])
        expected.extend(reference.per_request_outputs(
            reference.forward(chunk), chunk.shape[0]))

    if args.process:
        partition = split_artifact(artifact, cuts)
        print(partition.describe())
        with tempfile.TemporaryDirectory() as tmp:
            paths = partition.save(os.path.join(tmp, "pipeline"))
            # Bit-exactness is per identical batch composition, so drive
            # the cluster in synchronized waves of exactly ``batch``
            # requests (deadline long enough that a wave always fills).
            cluster = process_pipeline_cluster(paths, name=name,
                                               backend=args.backend,
                                               max_batch=args.batch,
                                               max_wait_ms=2000.0)
            try:
                futures = []
                for start in range(0, len(payloads), args.batch):
                    futures.extend(cluster.submit_many(
                        name, payloads[start:start + args.batch]))
                    left = cluster.drain()
                    if left:
                        raise ServingError(
                            f"{left} request(s) never completed")
                outputs = np.stack([future.result(timeout=60.0)
                                    for future in futures])
                stats_text = cluster.format_stats()
                stages = cluster.num_stages
            finally:
                cluster.close(drain=False)
        mode = f"{stages}-stage subprocess pipeline"
    else:
        engine = PipelineEngine.from_artifact(
            artifact, cuts=cuts, name=name, backend=args.backend,
            max_batch=args.batch, workers=0)
        try:
            print(engine.partition.describe())
            futures = engine.submit_many(name, payloads)
            engine.drain()
            outputs = np.stack([future.result(timeout=0)
                                for future in futures])
            stats_text = engine.format_stats()
            mode = f"{engine.num_stages}-stage in-process pipeline"
        finally:
            engine.close(drain=False)

    match = np.array_equal(outputs, np.stack(expected))
    print(f"served {len(payloads)} synthetic requests through a {mode} "
          f"(max_batch={args.batch})")
    print("outputs vs single-device plan: "
          + ("IDENTICAL (np.array_equal)" if match else "MISMATCH"))
    print(stats_text)
    return 0 if match else 1


def _error_fields(error) -> Dict:
    """The typed error vocabulary every error response line carries."""
    return {"error": str(error),
            "code": getattr(error, "code", "bad-request"),
            "retryable": bool(getattr(error, "retryable", False))}


def serve_protocol(server, lines, out,
                   max_line_bytes: int = MAX_MESSAGE_BYTES) -> int:
    """Drive a :class:`ModelServer` over the JSON-lines wire protocol.

    ``lines`` is any iterable of protocol lines: text (sys.stdin, a pipe,
    a list in tests), raw ``bytes`` (a framed transport), or
    :class:`FrameError` instances (a transport that already detected a
    malformed frame — :func:`repro.serve.transport.frame_lines` yields
    them). Responses are written to ``out`` as one JSON object per line.

    Every malformed line is *answered*, never fatal, with a typed
    ``"code"`` shared with the cluster transport: ``oversized`` /
    ``bad-utf8`` / ``truncated`` (frame level), ``bad-json`` /
    ``not-object`` / ``bad-request`` / ``unknown-op`` (message level),
    plus whatever code the server's own errors carry (``unknown-model``,
    ``shed``, ...). Payloads arrive as ``"input"`` (JSON list) or
    ``"input_b64"`` (base64 + dtype + shape, answered in kind).

    Inference responses preserve submission order (FIFO is a serving
    guarantee, so head-of-line blocking here is by design) and are
    flushed as soon as their future resolves — a done-callback fires the
    flush from the worker thread, so a strict request-then-response
    client works even while this loop is blocked reading the next line.
    A ``{"op": "stats"}`` line emits a statistics object immediately
    (``"detail": true`` for full mergeable per-model dumps; an ``"id"``
    is echoed back). Returns the number of inference requests answered.
    """
    import threading

    # (request id, model, future, binary?) in submission order
    outstanding = []
    # Guards `outstanding` and response writes. Reentrant because a
    # cluster router's stats() *drives* its workers: futures resolve
    # (and their flush callbacks fire) on this thread, under this lock.
    wire = threading.RLock()

    def emit(payload) -> None:
        out.write(json.dumps(payload) + "\n")
        try:
            out.flush()
        except (AttributeError, ValueError):
            pass

    def response(request_id, model, future, binary):
        error = future.exception(timeout=None)
        if error is not None:
            return {"id": request_id, "model": model,
                    **_error_fields(error)}
        request = future.request
        payload = {"id": request_id, "model": model}
        if request is not None:
            payload.update(latency_ms=round(request.latency_ms, 3),
                           batch_id=request.batch_id,
                           batch_size=request.batch_size)
            # Cache provenance rides along so clients (and the cluster
            # router) can tell a cached/coalesced answer from a computed
            # one. Stream-chunk futures carry no request record: they
            # are stateful, so by construction never cached/coalesced.
            if getattr(request, "cached", False):
                payload["cached"] = True
            if getattr(request, "coalesced", False):
                payload["coalesced"] = True
        result = np.asarray(future.result())
        if binary:
            payload.update(array_to_wire(result, key="output"))
        else:
            payload["output"] = result.tolist()
        return payload

    def flush_completed() -> None:
        with wire:
            while outstanding and outstanding[0][2].done():
                request_id, model, future, binary = outstanding.pop(0)
                emit(response(request_id, model, future, binary))

    served = 0
    for line in lines:
        if isinstance(line, FrameError):
            # The transport already classified this frame as malformed.
            with wire:
                emit(_error_fields(line))
            continue
        if isinstance(line, (bytes, bytearray)):
            raw = bytes(line)
            if len(raw) > max_line_bytes:
                with wire:
                    emit({"error": f"request line is {len(raw)} bytes; "
                                   f"cap is {max_line_bytes}",
                          "code": "oversized", "retryable": False})
                continue
            try:
                line = raw.decode("utf-8")
            except UnicodeDecodeError as error:
                with wire:
                    emit({"error": f"request line is not UTF-8: {error}",
                          "code": "bad-utf8", "retryable": False})
                continue
        elif len(line) > max_line_bytes:
            with wire:
                emit({"error": f"request line is {len(line)} chars; "
                               f"cap is {max_line_bytes}",
                      "code": "oversized", "retryable": False})
            continue
        line = line.strip()
        if not line:
            continue
        try:
            message = json.loads(line)
        except ValueError as error:
            with wire:
                emit({"error": f"malformed request: {error}",
                      "code": "bad-json", "retryable": False})
            continue
        if not isinstance(message, dict):
            with wire:
                emit({"error": "request must be a JSON object, got "
                               f"{type(message).__name__}",
                      "code": "not-object", "retryable": False})
            continue
        op = message.get("op", "infer")
        if op == "stats":
            with wire:
                emit_stats(server, emit,
                           detail=bool(message.get("detail")),
                           request_id=message.get("id"))
            continue
        if op in ("stream_open", "stream_close", "session_export",
                  "session_import"):
            # Session control is synchronous on the server, so it is
            # answered immediately — out of band of the inference FIFO
            # (clients and the router correlate by "id").
            model = message.get("model")
            if model is None:
                with wire:
                    emit({"id": message.get("id"),
                          "error": f"{op} request needs 'model'",
                          "code": "bad-request", "retryable": False})
                continue
            try:
                if op == "stream_open":
                    sid = server.open_session(
                        model, session_id=message.get("session"))
                    reply = {"op": op, "model": model, "session": sid}
                elif op == "stream_close":
                    chunks = server.close_session(
                        model, str(message.get("session")))
                    reply = {"op": op, "model": model,
                             "session": message.get("session"),
                             "chunks": chunks}
                elif op == "session_export":
                    reply = {"op": op, "model": model,
                             "sessions": server.export_sessions(model)}
                else:
                    server.import_session(
                        model, str(message.get("session")),
                        message.get("state") or {},
                        chunks=int(message.get("chunks", 0)))
                    reply = {"op": op, "model": model,
                             "session": message.get("session")}
            except (ServingError, ValueError, TypeError) as error:
                with wire:
                    emit({"id": message.get("id"), "model": model,
                          **_error_fields(error)})
                continue
            if message.get("id") is not None:
                reply["id"] = message["id"]
            with wire:
                emit(reply)
            continue
        if op == "stream_submit":
            model = message.get("model")
            session = message.get("session")
            binary = "input_b64" in message
            if model is None or session is None \
                    or (not binary and "input" not in message):
                with wire:
                    emit({"id": message.get("id"),
                          "error": "stream_submit needs 'model', "
                                   "'session' and 'input' (or "
                                   "'input_b64' + dtype + shape)",
                          "code": "bad-request", "retryable": False})
                continue
            try:
                payload = (array_from_wire(message, "input") if binary
                           else np.asarray(message["input"]))
                future = server.submit_stream(model, str(session), payload)
            except (ServingError, ValueError, TypeError) as error:
                with wire:
                    emit({"id": message.get("id"), "model": model,
                          **_error_fields(error)})
                continue
            with wire:
                outstanding.append((message.get("id"), model, future,
                                    binary))
            served += 1
            future.add_done_callback(lambda _: flush_completed())
            flush_completed()
            continue
        if op != "infer":
            with wire:
                emit({"id": message.get("id"),
                      "error": f"unknown op {op!r}",
                      "code": "unknown-op", "retryable": False})
            continue
        model = message.get("model")
        binary = "input_b64" in message
        if model is None or (not binary and "input" not in message):
            with wire:
                emit({"id": message.get("id"),
                      "error": "infer request needs 'model' and 'input' "
                               "(or 'input_b64' + dtype + shape)",
                      "code": "bad-request", "retryable": False})
            continue
        try:
            # Decode/np.asarray can reject bad payloads (ragged lists,
            # byte-count mismatches); a bad request must answer an error
            # line, never kill the server.
            payload = (array_from_wire(message, "input") if binary
                       else np.asarray(message["input"]))
            future = server.submit(model, payload)
        except (ServingError, ValueError, TypeError) as error:
            with wire:
                emit({"id": message.get("id"), "model": model,
                      **_error_fields(error)})
            continue
        with wire:
            outstanding.append((message.get("id"), model, future, binary))
        served += 1
        # Resolution (possibly on a worker thread) flushes the head of
        # the line; calling it here too covers already-failed submits.
        future.add_done_callback(lambda _: flush_completed())
        flush_completed()
    # EOF: force-serve what never filled a batch, answer everything left.
    # drain() returns once the queues are empty, but a worker may still
    # be resolving its last batch — and its done-callbacks flush through
    # `wire`. Never block on a future while holding `wire`, or that
    # worker deadlocks against us mid-batch.
    server.drain()
    while True:
        with wire:
            if not outstanding:
                break
            head = outstanding[0][2]
            if head.done():
                request_id, model, future, binary = outstanding.pop(0)
                emit(response(request_id, model, future, binary))
                continue
        head.exception()        # wait with `wire` released
    return served


def emit_stats(server, emit, detail: bool = False,
               request_id=None) -> None:
    """Write one ``{"op": "stats"}`` response line for every model.

    ``detail=True`` dumps full mergeable per-model statistics
    (``ModelStats.to_wire``) plus the server's alias map — what the
    cluster router aggregates; the default is a human-oriented summary.
    """
    if detail:
        payload = {"op": "stats",
                   "models": {name: stats.to_wire()
                              for name, stats in server.stats().items()},
                   "aliases": (server.aliases()
                               if hasattr(server, "aliases") else {})}
    else:
        payload = {"op": "stats",
                   "models": {name: {
                       "requests": stats.requests,
                       "batches": stats.batches,
                       "requests_per_second":
                           round(stats.requests_per_second, 1),
                       "latency_ms_p50": round(stats.latency_ms_p50, 3),
                       "latency_ms_p95": round(stats.latency_ms_p95, 3),
                       "latency_ms_p99": round(stats.latency_ms_p99, 3),
                       "mean_batch_fill": round(stats.mean_batch_fill, 3),
                       "queue_depth": stats.queue_depth,
                       "cache_hits": stats.cache_hits,
                       "dedup_coalesced": stats.dedup_coalesced,
                       "cache_hit_rate": round(stats.cache_hit_rate, 3),
                   } for name, stats in server.stats().items()}}
    if request_id is not None:
        payload["id"] = request_id
    emit(payload)


def _add_cache_flags(parser) -> None:
    """The shared response-cache knobs of ``up`` and ``cluster``."""
    parser.add_argument("--cache-mb", type=float, default=64,
                        help="response-cache byte budget in MB "
                             "(per worker for clusters; 0 disables)")
    parser.add_argument("--cache-ttl-s", type=float, default=None,
                        help="response-cache entry TTL in seconds "
                             "(default: no expiry)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the response cache and in-flight "
                             "request dedup entirely")


def parse_model_specs(specs) -> list:
    """``--model NAME=PATH`` (repeatable) -> ``[(name, path), ...]``."""
    hosted = []
    for spec in specs:
        name, equals, path = spec.partition("=")
        if not equals or not name or not path:
            raise ConfigurationError(
                f"--model expects name=path, got {spec!r}")
        hosted.append((name, path))
    return hosted


def _cache_args(args):
    """``(cache_mb, cache_ttl_s)`` from the shared CLI cache flags."""
    if getattr(args, "no_cache", False):
        return None, None
    return args.cache_mb or None, args.cache_ttl_s


def cmd_up(args) -> int:
    from repro.serve.server import ModelServer

    hosted = parse_model_specs(args.model)
    cache_mb, cache_ttl_s = _cache_args(args)
    server = ModelServer(workers=args.workers, max_batch=args.batch,
                         max_wait_ms=args.max_wait_ms,
                         cache_mb=cache_mb, cache_ttl_s=cache_ttl_s)
    try:
        for name, path in hosted:
            server.load(name, path, backend=args.backend,
                        warmup=args.warmup)
        print(f"serving {len(hosted)} model(s) "
              f"[{', '.join(name for name, _ in hosted)}] "
              f"(backend={args.backend}, batch={args.batch}, "
              f"max_wait_ms={args.max_wait_ms}, workers={args.workers}, "
              f"cache={f'{cache_mb} MB' if cache_mb else 'off'}); "
              "JSON-lines on stdin", file=sys.stderr)
        served = serve_protocol(server, sys.stdin, sys.stdout)
    finally:
        server.close()
    print(f"served {served} request(s)", file=sys.stderr)
    for line in server.format_stats().splitlines():
        print(line, file=sys.stderr)
    return 0


def cmd_cluster(args) -> int:
    from repro.serve.cluster import ClusterRouter

    models = dict(parse_model_specs(args.model))
    cache_mb, cache_ttl_s = _cache_args(args)
    router = ClusterRouter.spawn(
        models, workers=args.workers, placement=args.placement,
        max_batch=args.batch, max_wait_ms=args.max_wait_ms,
        backend=args.backend, capacity=args.capacity,
        worker_threads=args.worker_threads,
        cache_mb=cache_mb, cache_ttl_s=cache_ttl_s)
    try:
        print(f"cluster up: {args.workers} worker process(es) hosting "
              f"[{', '.join(sorted(models))}] "
              f"(placement={args.placement}, backend={args.backend}, "
              f"batch={args.batch}, capacity={args.capacity}/worker, "
              f"cache={f'{cache_mb} MB/worker' if cache_mb else 'off'}); "
              "JSON-lines on stdin", file=sys.stderr)
        # The router duck-types the ModelServer surface, so the wire
        # protocol in front of a whole cluster is the PR 4 loop verbatim.
        served = serve_protocol(router, sys.stdin, sys.stdout)
        print(f"routed {served} request(s)", file=sys.stderr)
        for line in router.format_stats().splitlines():
            print(line, file=sys.stderr)
    finally:
        router.close()
    return 0


def cmd_cluster_worker(args) -> int:
    """Internal: one cluster worker (spawned by :class:`ClusterRouter`).

    Binds an ephemeral localhost port, announces ``PORT <n>`` on stdout,
    accepts exactly one connection (its router), and serves the framed
    protocol until the router hangs up.
    """
    import socket

    from repro.serve.server import ModelServer
    from repro.serve.transport import (FrameWriter, SocketTransport,
                                       frame_lines)

    hosted = parse_model_specs(args.model)
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    print(f"PORT {listener.getsockname()[1]}", flush=True)
    conn, _peer = listener.accept()
    listener.close()
    transport = SocketTransport(conn, send_direction="to_router")
    server = ModelServer(workers=args.workers, max_batch=args.batch,
                         max_wait_ms=args.max_wait_ms,
                         cache_mb=args.cache_mb or None,
                         cache_ttl_s=args.cache_ttl_s,
                         session_mb=args.session_mb,
                         session_ttl_s=args.session_ttl_s)
    try:
        for name, path in hosted:
            versioned = f"{name}@v{args.generation}"
            server.load(versioned, path, backend=args.backend,
                        batch=args.batch)
            server.alias(name, versioned)
        served = serve_protocol(server, frame_lines(transport),
                                FrameWriter(transport))
        print(f"worker served {served} request(s)", file=sys.stderr)
    finally:
        server.close()
        transport.close()
    return 0


def cmd_cache(args) -> int:
    """Exercise the response cache with Zipf-ish repeated synthetic
    traffic and print per-model hit rate plus the byte budget."""
    from repro.serve.server import ModelServer

    hosted = parse_model_specs(args.model)
    server = ModelServer(workers=0, max_batch=args.batch,
                         max_wait_ms=0.0, cache_mb=args.cache_mb,
                         cache_ttl_s=args.cache_ttl_s)
    try:
        for name, path in hosted:
            server.load(name, path, backend=args.backend,
                        batch=args.batch)
        rng = np.random.default_rng(args.seed)
        for name, _ in hosted:
            distinct = synthetic_payloads(server.plan(name),
                                          args.distinct, seed=args.seed)
            sent = 0
            while sent < args.requests:
                wave = min(args.batch, args.requests - sent)
                for _ in range(wave):
                    payload = distinct[int(rng.integers(len(distinct)))]
                    server.submit(name, payload)
                server.drain()      # repeats in later waves hit the cache
                sent += wave
        snapshot = server.cache_stats()
        store = snapshot["cache"]
        print(f"cache budget: {store['bytes']}/{store['max_bytes']} bytes "
              f"({store['entries']} entries, {store['evictions']} evicted)")
        width = max(len(name) for name in snapshot["models"])
        for name, detail in snapshot["models"].items():
            print(f"{name:<{width}}  hit rate {detail['hit_rate']:.2f}  "
                  f"({detail['hits']} hits + {detail['coalesced']} "
                  f"coalesced, {detail['bytes']} bytes cached)")
    finally:
        server.close()
    return 0


def cmd_stream(args) -> int:
    """Stream concurrent sessions in mismatched chunk sizes and verify
    every one is bit-identical to its offline full-sequence run."""
    from repro.serve.server import ModelServer

    server = ModelServer(workers=0, max_batch=args.batch, max_wait_ms=0.0)
    try:
        server.load("model", args.artifact, backend=args.backend)
        plan = server.plan("model")
        if not plan.streamable:
            print("error: artifact has no recurrent layers; streaming "
                  "sessions need an RNN plan", file=sys.stderr)
            return 1
        timesteps = plan.input_shape[0]
        sequences = synthetic_payloads(plan, args.sessions, seed=args.seed)
        offline = [plan.stream_outputs(plan.forward(seq[None]), 1)[0]
                   for seq in sequences]
        sids = [server.open_session("model")
                for _ in range(args.sessions)]
        # Session i streams in chunks of i+1 timesteps (ragged tail), so
        # every chunking from 1..sessions is exercised, interleaved.
        futures = [[] for _ in sids]
        cursors = [0] * len(sids)
        sizes = [(index % timesteps) + 1 for index in range(len(sids))]
        while any(cursor < timesteps for cursor in cursors):
            for index, sid in enumerate(sids):
                if cursors[index] >= timesteps:
                    continue
                size = min(sizes[index], timesteps - cursors[index])
                chunk = sequences[index][
                    cursors[index]:cursors[index] + size]
                futures[index].append(
                    server.submit_stream("model", sid, chunk))
                cursors[index] += size
        server.drain()
        matches = 0
        for index, sid in enumerate(sids):
            results = [future.result(timeout=30.0)
                       for future in futures[index]]
            # Per-step decoders reassemble the full output from the
            # chunks; running-output heads (take-last classifiers) emit
            # the prediction-so-far per chunk, so only the final chunk
            # matches the offline run.
            streamed = (np.concatenate(results, axis=0)
                        if plan.per_step_output else results[-1])
            ok = np.array_equal(streamed, offline[index])
            matches += ok
            chunks = server.close_session("model", sid)
            print(f"session {sid} (chunk size {sizes[index]}, "
                  f"{chunks} chunks): "
                  + ("IDENTICAL (np.array_equal)" if ok else "MISMATCH"))
        stats = server.stats()["model"]
        print(f"streamed {args.sessions} session(s) x {timesteps} "
              f"timesteps through backend {args.backend!r} "
              f"({stats.stream_chunks} chunks served)")
        return 0 if matches == args.sessions else 1
    finally:
        server.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Export, inspect and serve quantized-model artifacts.")
    sub = parser.add_subparsers(dest="command", required=True)

    export = sub.add_parser("export",
                            help="quantize a zoo model and write an artifact")
    export.add_argument("--model", default="resnet_tiny",
                        choices=sorted(MODEL_ZOO))
    export.add_argument("--out", required=True, help="output .npz path")
    export.add_argument("--bits", type=int, default=4)
    export.add_argument("--ratio", default="2:1",
                        help="SP2:fixed row ratio (FPGA characterization)")
    export.add_argument("--calibration-batches", type=int, default=2)
    export.add_argument("--seed", type=int, default=0)
    export.set_defaults(func=cmd_export)

    from repro.serve.backends import DEFAULT_BACKEND, list_backends

    backends = sub.add_parser(
        "backends",
        help="list kernel backends with availability and the codegen "
             "kernel cache")
    backends.add_argument("--clear-cache", action="store_true",
                          help="delete all compiled kernel libraries from "
                               "the codegen cache")
    backends.set_defaults(func=cmd_backends)

    info = sub.add_parser("info", help="describe an artifact")
    info.add_argument("artifact")
    info.add_argument("--backend", default=DEFAULT_BACKEND,
                      choices=list_backends(),
                      help="kernel backend to compile with")
    info.set_defaults(func=cmd_info)

    run = sub.add_parser("run",
                         help="serve synthetic requests from an artifact")
    run.add_argument("artifact")
    run.add_argument("--requests", type=int, default=64)
    run.add_argument("--batch", type=int, default=16)
    run.add_argument("--backend", default=DEFAULT_BACKEND,
                     choices=list_backends(),
                     help="kernel backend (optimized backends are verified "
                          "bit-identical at compile time)")
    run.add_argument("--seed", type=int, default=0)
    run.set_defaults(func=cmd_run)

    pipeline = sub.add_parser(
        "pipeline",
        help="partition an artifact across pipeline stages and serve "
             "synthetic requests, verifying bit-exactness against the "
             "single-device plan")
    pipeline.add_argument("artifact")
    pipeline.add_argument("--stages", type=int, default=2,
                          help="pipeline stages to MAC-balance "
                               "(ignored when --cuts is given)")
    pipeline.add_argument("--cuts", default=None,
                          help="comma-separated IR op indices to cut "
                               "after (e.g. 3,7); default: balanced")
    pipeline.add_argument("--requests", type=int, default=64)
    pipeline.add_argument("--batch", type=int, default=16,
                          help="micro-batch size through the stages")
    pipeline.add_argument("--backend", default=DEFAULT_BACKEND,
                          choices=list_backends())
    pipeline.add_argument("--process", action="store_true",
                          help="one worker subprocess per stage, "
                               "activations over the framed transport "
                               "(default: in-process engine)")
    pipeline.add_argument("--seed", type=int, default=0)
    pipeline.set_defaults(func=cmd_pipeline)

    up = sub.add_parser(
        "up", help="start a live multi-model server "
                   "(JSON-lines requests on stdin)")
    up.add_argument("--model", action="append", required=True,
                    metavar="NAME=PATH",
                    help="host an artifact under NAME (repeatable)")
    up.add_argument("--batch", type=int, default=16,
                    help="max dynamic batch size per model")
    up.add_argument("--max-wait-ms", type=float, default=2.0,
                    help="deadline a partial batch waits for co-riders")
    up.add_argument("--backend", default=DEFAULT_BACKEND,
                    choices=list_backends())
    up.add_argument("--workers", type=int, default=2,
                    help="background worker threads (0 = serve at EOF)")
    up.add_argument("--warmup", action="store_true",
                    help="bind scratch + verify batch sizes before serving")
    _add_cache_flags(up)
    up.set_defaults(func=cmd_up)

    from repro.serve.placement import list_placements

    cluster = sub.add_parser(
        "cluster", help="route over N worker subprocesses "
                        "(JSON-lines requests on stdin)")
    cluster.add_argument("--model", action="append", required=True,
                         metavar="NAME=PATH",
                         help="host an artifact on every worker "
                              "(repeatable)")
    cluster.add_argument("--workers", type=int, default=2,
                         help="worker processes")
    cluster.add_argument("--placement", default="least_loaded",
                         choices=sorted(list_placements()),
                         help="request placement policy")
    cluster.add_argument("--batch", type=int, default=16)
    cluster.add_argument("--max-wait-ms", type=float, default=2.0)
    cluster.add_argument("--backend", default=DEFAULT_BACKEND,
                         choices=list_backends())
    cluster.add_argument("--capacity", type=int, default=64,
                         help="per-worker in-flight cap; beyond it "
                              "requests are shed with a retryable error")
    cluster.add_argument("--worker-threads", type=int, default=2,
                         help="serving threads inside each worker process")
    _add_cache_flags(cluster)
    cluster.set_defaults(func=cmd_cluster)

    worker = sub.add_parser(
        "cluster-worker",
        help="internal: one cluster worker process (spawned by "
             "'cluster'; announces PORT <n> on stdout)")
    worker.add_argument("--model", action="append", required=True,
                        metavar="NAME=PATH")
    worker.add_argument("--batch", type=int, default=16)
    worker.add_argument("--max-wait-ms", type=float, default=2.0)
    worker.add_argument("--backend", default=DEFAULT_BACKEND,
                        choices=list_backends())
    worker.add_argument("--workers", type=int, default=2,
                        help="serving threads in this worker")
    worker.add_argument("--generation", type=int, default=1,
                        help="rollover generation (models load as "
                             "name@v<generation> + alias)")
    worker.add_argument("--cache-mb", type=float, default=0,
                        help="response-cache byte budget in MB "
                             "(0 = caching off)")
    worker.add_argument("--cache-ttl-s", type=float, default=None,
                        help="response-cache entry TTL in seconds")
    worker.add_argument("--session-mb", type=float, default=None,
                        help="streaming-session state byte budget in MB")
    worker.add_argument("--session-ttl-s", type=float, default=None,
                        help="idle-session TTL in seconds")
    worker.set_defaults(func=cmd_cluster_worker)

    stream = sub.add_parser(
        "stream",
        help="stream sessions through an RNN artifact in mismatched "
             "chunk sizes and verify bit-exactness against the offline "
             "full-sequence run")
    stream.add_argument("artifact")
    stream.add_argument("--sessions", type=int, default=4,
                        help="concurrent streaming sessions")
    stream.add_argument("--batch", type=int, default=16,
                        help="max cross-session stream micro-batch")
    stream.add_argument("--backend", default=DEFAULT_BACKEND,
                        choices=list_backends())
    stream.add_argument("--seed", type=int, default=0)
    stream.set_defaults(func=cmd_stream)

    cache = sub.add_parser(
        "cache",
        help="drive repeated synthetic traffic through the response "
             "cache; print per-model hit rate and the byte budget")
    cache.add_argument("--model", action="append", required=True,
                       metavar="NAME=PATH",
                       help="host an artifact under NAME (repeatable)")
    cache.add_argument("--requests", type=int, default=256,
                       help="synthetic requests per model")
    cache.add_argument("--distinct", type=int, default=16,
                       help="distinct payloads the requests draw from")
    cache.add_argument("--batch", type=int, default=16)
    cache.add_argument("--backend", default=DEFAULT_BACKEND,
                       choices=list_backends())
    cache.add_argument("--cache-mb", type=float, default=64,
                       help="response-cache byte budget in MB")
    cache.add_argument("--cache-ttl-s", type=float, default=None,
                       help="response-cache entry TTL in seconds")
    cache.add_argument("--seed", type=int, default=0)
    cache.set_defaults(func=cmd_cache)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
