"""Command-line entry point: ``python -m repro.serve <command>``.

Three subcommands cover the export → inspect → serve loop end to end with
synthetic data, so the whole serving path can be exercised without training:

- ``export`` — build a model from the small zoo, post-training-quantize it
  (MSQ weights + calibrated activation ranges), and write a verified
  artifact;
- ``info`` — print an artifact's manifest summary and GEMM workloads;
- ``run`` — load an artifact, push synthetic requests through the
  :class:`~repro.serve.scheduler.BatchScheduler`, and report wall-clock and
  simulated-FPGA serving statistics.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

import numpy as np

from repro.errors import ConfigurationError, ReproError


def _resnet_tiny(rng):
    from repro.models import resnet_tiny

    return resnet_tiny(num_classes=10, rng=rng), _image_sampler(3, 16)


def _resnet18(rng):
    from repro.models import resnet18_cifar

    return resnet18_cifar(num_classes=10, rng=rng), _image_sampler(3, 16)


def _mobilenet(rng):
    from repro.models import mobilenet_v2_tiny

    return mobilenet_v2_tiny(num_classes=10, rng=rng), _image_sampler(3, 16)


def _lstm_lm(rng):
    from repro.models import LSTMLanguageModel

    model = LSTMLanguageModel(vocab_size=40, embed_dim=16, hidden_size=24,
                              num_layers=2, rng=rng)
    return model, _token_sampler(vocab=40, timesteps=12)


def _gru_speech(rng):
    from repro.models import GRUSpeechModel

    model = GRUSpeechModel(input_dim=13, hidden_size=24, num_layers=2,
                           rng=rng)
    return model, _frame_sampler(timesteps=12, features=13)


def _lstm_sentiment(rng):
    from repro.models import LSTMSentimentClassifier

    model = LSTMSentimentClassifier(vocab_size=40, embed_dim=16,
                                    hidden_size=24, num_layers=2, rng=rng)
    return model, _token_sampler(vocab=40, timesteps=12)


def _yolo_lite(rng):
    from repro.models import YoloLite

    # Serves the raw detection grid; decode/NMS stay host-side.
    return YoloLite(num_classes=3, rng=rng), _image_sampler(3, 32)


def _image_sampler(channels, size):
    def sample(rng, n):
        return rng.normal(size=(n, channels, size, size)).astype(np.float32)

    return sample


def _token_sampler(vocab, timesteps):
    def sample(rng, n):
        return rng.integers(0, vocab, size=(n, timesteps), dtype=np.int64)

    return sample


def _frame_sampler(timesteps, features):
    def sample(rng, n):
        return rng.normal(size=(n, timesteps, features)).astype(np.float32)

    return sample


MODEL_ZOO: Dict[str, Callable] = {
    "resnet_tiny": _resnet_tiny,
    "resnet18_cifar": _resnet18,
    "mobilenet_v2": _mobilenet,
    "lstm_lm": _lstm_lm,
    "gru_speech": _gru_speech,
    "lstm_sentiment": _lstm_sentiment,
    "yolo_lite": _yolo_lite,
}


def build_model(name: str, seed: int = 0):
    """Instantiate a zoo model and its synthetic input sampler."""
    if name not in MODEL_ZOO:
        raise ConfigurationError(
            f"unknown model {name!r}; available: {sorted(MODEL_ZOO)}")
    return MODEL_ZOO[name](np.random.default_rng(seed))


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_export(args) -> int:
    # One quantize-and-export implementation for every CLI spelling.
    from repro.api.cli import run_quantize

    return run_quantize(args.model, args.out, bits=args.bits,
                        ratio=args.ratio,
                        calibration_batches=args.calibration_batches,
                        seed=args.seed)


def cmd_info(args) -> int:
    from repro.serve.plan import ExecutionPlan

    plan = ExecutionPlan.load(args.artifact, backend=args.backend)
    print(plan.describe())
    performance = plan.simulate(batch=1)
    print(f"FPGA (D2-3):  {performance.latency_ms:.3f} ms/request, "
          f"{performance.throughput_gops:.1f} GOPS")
    return 0


def cmd_run(args) -> int:
    from repro.serve.engine import InferenceEngine
    from repro.serve.scheduler import BatchScheduler

    engine = InferenceEngine.load(args.artifact, backend=args.backend)
    scheduler = BatchScheduler(engine, max_batch=args.batch)
    rng = np.random.default_rng(args.seed)
    shape = engine.plan.input_shape
    dtype = engine.plan.input_dtype
    token_bound = engine.plan.graph.token_bound()
    for _ in range(args.requests):
        if np.issubdtype(dtype, np.floating):
            payload = rng.normal(size=shape).astype(dtype)
        else:
            payload = rng.integers(0, token_bound, size=shape).astype(dtype)
        scheduler.submit(payload)
    stats = scheduler.run()
    print(f"served {args.requests} synthetic requests "
          f"(max_batch={args.batch})")
    print(stats.format())
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Export, inspect and serve quantized-model artifacts.")
    sub = parser.add_subparsers(dest="command", required=True)

    export = sub.add_parser("export",
                            help="quantize a zoo model and write an artifact")
    export.add_argument("--model", default="resnet_tiny",
                        choices=sorted(MODEL_ZOO))
    export.add_argument("--out", required=True, help="output .npz path")
    export.add_argument("--bits", type=int, default=4)
    export.add_argument("--ratio", default="2:1",
                        help="SP2:fixed row ratio (FPGA characterization)")
    export.add_argument("--calibration-batches", type=int, default=2)
    export.add_argument("--seed", type=int, default=0)
    export.set_defaults(func=cmd_export)

    from repro.serve.backends import DEFAULT_BACKEND, list_backends

    info = sub.add_parser("info", help="describe an artifact")
    info.add_argument("artifact")
    info.add_argument("--backend", default=DEFAULT_BACKEND,
                      choices=list_backends(),
                      help="kernel backend to compile with")
    info.set_defaults(func=cmd_info)

    run = sub.add_parser("run",
                         help="serve synthetic requests from an artifact")
    run.add_argument("artifact")
    run.add_argument("--requests", type=int, default=64)
    run.add_argument("--batch", type=int, default=16)
    run.add_argument("--backend", default=DEFAULT_BACKEND,
                     choices=list_backends(),
                     help="kernel backend (optimized backends are verified "
                          "bit-identical at compile time)")
    run.add_argument("--seed", type=int, default=0)
    run.set_defaults(func=cmd_run)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
