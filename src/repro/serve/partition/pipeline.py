"""Pipelined multi-stage serving over a partitioned model.

Two executors share one submit/stats surface (duck-typed to
:class:`~repro.serve.server.ModelServer`, so the JSON-lines protocol and
the CLI drive either):

- :class:`PipelineEngine` — in-process: one
  :class:`~repro.serve.engine.InferenceEngine` per stage, micro-batches
  flowing through bounded inter-stage queues, one worker thread per
  stage (or ``workers=0`` for deterministic ``poll()``/``drain()``
  stepping). Steady-state throughput is the slowest stage's — exactly
  the pipelined bound :class:`~repro.autotune.cost.PipelineCostModel`
  prices.
- :class:`PipelineCluster` — distributed: stage ``k``'s sub-artifact is
  hosted by its own cluster worker (the existing
  :class:`~repro.serve.cluster.LocalWorker` /
  :class:`~repro.serve.cluster.ProcessWorker` machinery, activations on
  the length-framed transport), and a request hops worker to worker via
  chained future callbacks. A stage worker dying mid-batch fails only
  the in-flight futures with a typed
  :class:`~repro.errors.WorkerError` — completed results are already
  resolved, so a crash can never produce wrong bits.

Both report per-stage rows in a stage-dimensioned
:class:`~repro.serve.server.ModelStats` (key ``"{model}/stage{k}"``,
``stage="k+1/n"``) plus an aggregate row under the model name.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import (
    ConfigurationError,
    ReproError,
    ServingError,
    WorkerError,
)
from repro.fpga.resources import GemmDesign
from repro.serve.artifact import ServeArtifact
from repro.serve.backends import DEFAULT_BACKEND
from repro.serve.batcher import DynamicBatcher, ServedRequest, coerce_payload
from repro.serve.cluster import ClusterRouter, LocalWorker, ProcessWorker
from repro.serve.engine import InferenceEngine
from repro.serve.futures import InferenceFuture
from repro.serve.partition.splitter import (
    PartitionPlan,
    auto_cuts,
    split_artifact,
)
from repro.serve.plan import ExecutionPlan
from repro.serve.server import ModelStats


def _stage_design(designs, index: int) -> Optional[GemmDesign]:
    if designs is None or isinstance(designs, GemmDesign):
        return designs
    return designs[index]


class _StageBatch:
    """One micro-batch in flight through the stages."""

    __slots__ = ("id", "requests", "array", "fpga_ms")

    def __init__(self, batch_id: int, requests: List[ServedRequest],
                 array: np.ndarray):
        self.id = batch_id
        self.requests = requests
        self.array = array
        self.fpga_ms = 0.0


class PipelineEngine:
    """N compiled stages serving one model through bounded queues.

    ``workers=0`` (deterministic): nothing runs until ``poll()`` — each
    call advances every occupied stage by one micro-batch, last stage
    first, so a batch moves exactly one stage per poll and tests can
    observe queue occupancy; ``drain()`` force-flushes and loops until
    idle. ``workers>0``: one thread per stage, size-or-deadline flush,
    bounded inter-stage queues (``queue_depth``) apply backpressure to
    the producing stage.
    """

    def __init__(self, stages: Sequence[InferenceEngine], *,
                 name: str = "model", max_batch: int = 16,
                 max_wait_ms: Optional[float] = None, workers: int = 1,
                 queue_depth: int = 4, clock=time.perf_counter,
                 stats_window: int = 512,
                 partition: Optional[PartitionPlan] = None):
        if not stages:
            raise ConfigurationError("a pipeline needs at least one stage")
        if queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be >= 1, got {queue_depth}")
        self.name = name
        self.partition = partition
        self._engines = list(stages)
        self._clock = clock
        self._batcher = DynamicBatcher(max_batch, max_wait_ms, clock=clock)
        self._queue_depth = int(queue_depth)
        self._queues: List[deque] = [deque() for _ in self._engines]
        self._stage_latencies = [deque(maxlen=stats_window)
                                 for _ in self._engines]
        self._stage_errors = [0 for _ in self._engines]
        self._stage_busy = [False for _ in self._engines]
        self._latencies = deque(maxlen=stats_window)
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._next_batch_id = 0
        self._work = threading.Condition()
        self._running = True
        self._force = False
        self._threads: List[threading.Thread] = []
        if workers:
            for index in range(len(self._engines)):
                thread = threading.Thread(
                    target=self._worker_loop, args=(index,),
                    name=f"pipeline-{name}-stage{index}", daemon=True)
                thread.start()
                self._threads.append(thread)

    # ------------------------------------------------------------------
    # Construction from an artifact
    # ------------------------------------------------------------------
    @classmethod
    def from_artifact(cls, source, *, stages: int = 2,
                      cuts: Optional[Sequence[int]] = None,
                      name: Optional[str] = None,
                      backend: str = DEFAULT_BACKEND,
                      designs=None, verify: bool = True,
                      **kwargs) -> "PipelineEngine":
        """Split an artifact (path or :class:`ServeArtifact`) and build
        the pipeline. ``cuts`` pins the boundaries; otherwise
        :func:`~repro.serve.partition.splitter.auto_cuts` balances
        ``stages`` stages by GEMM MACs."""
        artifact = source if isinstance(source, ServeArtifact) \
            else ServeArtifact.load(source)
        if cuts is None:
            cuts = auto_cuts(artifact, stages)
        partition = split_artifact(artifact, cuts, verify=verify)
        engines = [
            InferenceEngine(ExecutionPlan(stage, backend=backend),
                            design=_stage_design(designs, index))
            for index, stage in enumerate(partition.stages)]
        return cls(engines, name=name or partition.model,
                   partition=partition, **kwargs)

    # ------------------------------------------------------------------
    # ModelServer-compatible surface
    # ------------------------------------------------------------------
    def __enter__(self) -> "PipelineEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def models(self) -> List[str]:
        return [self.name]

    def aliases(self) -> Dict[str, str]:
        return {}

    def plan(self, model: Optional[str] = None) -> ExecutionPlan:
        """Stage 0's plan — the pipeline's input signature."""
        if model is not None:
            self._check_model(model)
        return self._engines[0].plan

    @property
    def num_stages(self) -> int:
        return len(self._engines)

    def _check_model(self, model: str) -> None:
        if model != self.name:
            error = ServingError(
                f"unknown model {model!r}; loaded: [{self.name!r}]")
            error.code = "unknown-model"
            raise error

    def submit(self, model: str, x) -> InferenceFuture:
        """Enqueue one request; returns its future immediately. Shape
        errors fail the future (never poison a batch); an unknown model
        raises."""
        self._check_model(model)
        future = InferenceFuture(model)
        with self._work:
            if not self._running:
                future._fail(ServingError("pipeline is closed"))
                return future
            try:
                payload = coerce_payload(self._engines[0].plan,
                                         np.asarray(x))
            except ReproError as error:
                future._fail(error)
                return future
            self._batcher.submit(payload, future=future, model=model)
            self._submitted += 1
            self._work.notify_all()
        return future

    def submit_many(self, model: str, xs: Sequence) -> List[InferenceFuture]:
        return [self.submit(model, x) for x in xs]

    def predict(self, model: str, x,
                timeout: Optional[float] = 60.0) -> np.ndarray:
        # Synchronous one-shot: force the partial batch through the
        # stages instead of waiting for co-riders that never come.
        future = self.submit(model, x)
        self.drain()
        return future.result(timeout=timeout)

    # ------------------------------------------------------------------
    # Deterministic stepping (workers=0)
    # ------------------------------------------------------------------
    def poll(self) -> int:
        """Advance each occupied stage by one micro-batch (last stage
        first, so a batch moves one stage per poll), then flush the
        batcher if a batch is ready. Returns requests completed."""
        completed = 0
        for index in reversed(range(len(self._engines))):
            batch = None
            with self._work:
                if self._queues[index]:
                    batch = self._queues[index].popleft()
            if batch is not None:
                completed += self._run_stage(index, batch)
        with self._work:
            self._flush_locked(force=False)
        return completed

    def drain(self) -> int:
        """Force-serve everything queued through all stages; returns the
        number of requests completed on this thread (threaded pipelines
        block until idle instead)."""
        if self._threads:
            with self._work:
                self._force = True
                self._work.notify_all()
                self._work.wait_for(self._idle_locked, timeout=60.0)
                self._force = False
            return 0
        completed = 0
        while True:
            with self._work:
                self._flush_locked(force=True)
                occupied = [i for i in range(len(self._engines))
                            if self._queues[i]]
            if not occupied:
                with self._work:
                    if not self._batcher.pending \
                            and not any(self._queues):
                        break
                continue
            for index in reversed(occupied):
                with self._work:
                    batch = self._queues[index].popleft() \
                        if self._queues[index] else None
                if batch is not None:
                    completed += self._run_stage(index, batch)
        return completed

    def _idle_locked(self) -> bool:
        return (not self._batcher.pending and not any(self._queues)
                and not any(self._stage_busy))

    def _flush_locked(self, force: bool) -> None:
        while True:
            requests = self._batcher.take(self._clock(), force=force)
            if not requests:
                return
            batch = _StageBatch(self._next_batch_id, requests,
                                np.stack([r.payload for r in requests]))
            self._next_batch_id += 1
            self._queues[0].append(batch)
            self._work.notify_all()

    # ------------------------------------------------------------------
    # Stage execution
    # ------------------------------------------------------------------
    def _worker_loop(self, index: int) -> None:
        while True:
            batch = None
            with self._work:
                if not self._running:
                    return
                if index == 0:
                    self._flush_locked(force=self._force
                                       and self._batcher.pending > 0)
                if self._queues[index] and (
                        index + 1 >= len(self._queues)
                        or len(self._queues[index + 1])
                        < self._queue_depth):
                    batch = self._queues[index].popleft()
                    self._stage_busy[index] = True
                else:
                    self._work.wait(0.005 if index == 0 else 0.05)
                    continue
            self._run_stage(index, batch)
            with self._work:
                self._stage_busy[index] = False
                self._work.notify_all()

    def _run_stage(self, index: int, batch: _StageBatch) -> int:
        """Run one micro-batch through stage ``index``; returns requests
        completed (non-zero only at the last stage)."""
        engine = self._engines[index]
        size = len(batch.requests)
        try:
            batch.fpga_ms += engine.fpga_latency_ms(size)
            started = self._clock()
            outputs = engine.infer(batch.array)
            elapsed_ms = (self._clock() - started) * 1e3
        except Exception as error:   # noqa: BLE001 — typed fail, no wrong bits
            failure = error if isinstance(error, ServingError) \
                else WorkerError(
                    f"pipeline stage {index} of {self.name!r} failed: "
                    f"{error}")
            with self._work:
                self._stage_errors[index] += 1
                self._failed += size
            for request in batch.requests:
                request.error = failure
                if request.future is not None:
                    request.future._fail(failure)
            return 0
        with self._work:
            self._stage_latencies[index].extend([elapsed_ms] * size)
        if index + 1 < len(self._engines):
            batch.array = outputs
            with self._work:
                self._queues[index + 1].append(batch)
                self._work.notify_all()
            return 0
        outputs = engine.plan.per_request_outputs(outputs, size)
        completed = self._clock()
        for position, request in enumerate(batch.requests):
            request.result = outputs[position]
            request.completed_at = completed
            request.batch_id = batch.id
            request.batch_size = size
            request.fpga_ms = batch.fpga_ms / size
            if request.future is not None:
                request.future._resolve(outputs[position], request)
        with self._work:
            self._completed += size
            self._latencies.extend(r.latency_ms for r in batch.requests)
            self._work.notify_all()
        return size

    # ------------------------------------------------------------------
    # Stats + lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, ModelStats]:
        """Aggregate row under the model name plus one stage-dimensioned
        row per stage (key ``"{name}/stage{k}"``, ``stage="k+1/n"``)."""
        with self._work:
            total = len(self._engines)
            backends = {engine.backend for engine in self._engines}
            backend = backends.pop() if len(backends) == 1 else "mixed"
            in_flight = (self._submitted - self._completed - self._failed
                         - self._batcher.pending)
            out = {self.name: ModelStats(
                model=self.name, backend=backend,
                max_batch=self._batcher.max_batch,
                requests=self._completed,
                batches=self._engines[0].stats.batches,
                errors=self._failed,
                wall_seconds=max(e.stats.wall_seconds
                                 for e in self._engines),
                latencies_ms=list(self._latencies),
                fpga_ms_total=sum(e.stats.fpga_ms for e in self._engines),
                queue_depth=self._batcher.pending,
                in_flight=max(in_flight, 0))}
            for index, engine in enumerate(self._engines):
                out[f"{self.name}/stage{index}"] = ModelStats(
                    model=f"{self.name}/stage{index}",
                    backend=engine.backend,
                    max_batch=self._batcher.max_batch,
                    requests=engine.stats.requests,
                    batches=engine.stats.batches,
                    errors=self._stage_errors[index],
                    wall_seconds=engine.stats.wall_seconds,
                    latencies_ms=list(self._stage_latencies[index]),
                    fpga_ms_total=engine.stats.fpga_ms,
                    queue_depth=len(self._queues[index]),
                    in_flight=int(self._stage_busy[index]),
                    stage=f"{index + 1}/{total}")
            return out

    def format_stats(self) -> str:
        snapshots = self.stats()
        if not snapshots:
            return "no models loaded"
        return "\n".join(stats.format() for stats in snapshots.values())

    def close(self, drain: bool = True) -> None:
        if drain and self._running:
            try:
                self.drain()
            except ReproError:
                pass
        with self._work:
            if not self._running:
                return
            self._running = False
            pending = [request for request in self._batcher.take(force=True)]
            for queue in self._queues:
                while queue:
                    pending.extend(queue.popleft().requests)
            self._work.notify_all()
        error = ServingError("pipeline closed before the request was served")
        for request in pending:
            if request.future is not None and not request.future.done():
                request.future._fail(error)
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads = []


# ----------------------------------------------------------------------
# Distributed pipeline: one cluster worker per stage
# ----------------------------------------------------------------------
class StageDeployment:
    """Duck-typed in-memory source for ``LocalWorker``/``ModelServer.load``
    (anything with ``.engine``): one stage artifact, compiled lazily."""

    def __init__(self, artifact: ServeArtifact, *,
                 backend: str = DEFAULT_BACKEND,
                 design: Optional[GemmDesign] = None,
                 batch: Optional[int] = None):
        self.artifact = artifact
        self.backend = backend
        self.design = design
        self.batch = batch
        self._engine: Optional[InferenceEngine] = None

    @property
    def engine(self) -> InferenceEngine:
        if self._engine is None:
            self._engine = InferenceEngine(
                ExecutionPlan(self.artifact, backend=self.backend),
                design=self.design)
        return self._engine


class PipelineCluster:
    """A partitioned model served by one cluster worker per stage.

    Worker ``k`` hosts exactly one model — stage ``k``'s sub-artifact —
    so the router's host lookup *is* the placement. ``submit`` starts
    the request at stage 0 and chains each stage's future into a submit
    of the next; the caller's future resolves with the final stage's
    output (and fails with the first stage error, typed — a dead worker
    surfaces as the router's ``WorkerError``).
    """

    def __init__(self, router: ClusterRouter, stage_names: Sequence[str],
                 *, name: str, clock=time.monotonic,
                 stats_window: int = 512):
        if not stage_names:
            raise ConfigurationError("a pipeline needs at least one stage")
        self.name = name
        self._router = router
        self._stage_names = list(stage_names)
        self._clock = clock
        self._lock = threading.Lock()
        self._pending: Dict[int, float] = {}      # id(future) -> started
        self._futures: Dict[int, InferenceFuture] = {}
        self._latencies = deque(maxlen=stats_window)
        self._completed = 0
        self._failed = 0

    # ------------------------------------------------------------------
    def __enter__(self) -> "PipelineCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def router(self) -> ClusterRouter:
        return self._router

    @property
    def num_stages(self) -> int:
        return len(self._stage_names)

    def models(self) -> List[str]:
        return [self.name]

    def aliases(self) -> Dict[str, str]:
        return {}

    def _check_model(self, model: str) -> None:
        if model != self.name:
            error = ServingError(
                f"unknown model {model!r}; loaded: [{self.name!r}]")
            error.code = "unknown-model"
            raise error

    # ------------------------------------------------------------------
    def submit(self, model: str, x) -> InferenceFuture:
        self._check_model(model)
        outer = InferenceFuture(model)
        with self._lock:
            self._pending[id(outer)] = self._clock()
            self._futures[id(outer)] = outer

        def hop(stage: int):
            def on_done(future: InferenceFuture) -> None:
                error = future.exception()
                if error is not None:
                    self._finish(outer, error=error)
                    return
                if stage + 1 == len(self._stage_names):
                    self._finish(outer, result=future.result(),
                                 request=future.request)
                    return
                try:
                    chained = self._router.submit(
                        self._stage_names[stage + 1], future.result())
                except Exception as chain_error:   # noqa: BLE001
                    self._finish(outer, error=chain_error)
                    return
                chained.add_done_callback(hop(stage + 1))
            return on_done

        try:
            first = self._router.submit(self._stage_names[0], np.asarray(x))
        except ServingError:
            with self._lock:
                self._pending.pop(id(outer), None)
                self._futures.pop(id(outer), None)
            raise
        first.add_done_callback(hop(0))
        return outer

    def submit_many(self, model: str, xs: Sequence) -> List[InferenceFuture]:
        return [self.submit(model, x) for x in xs]

    def predict(self, model: str, x,
                timeout: Optional[float] = 60.0) -> np.ndarray:
        future = self.submit(model, x)
        self.drain(timeout=timeout)
        return future.result(timeout=timeout)

    def _finish(self, outer: InferenceFuture, *, result=None,
                request=None, error: Optional[BaseException] = None) -> None:
        with self._lock:
            started = self._pending.pop(id(outer), None)
            self._futures.pop(id(outer), None)
            if started is None or outer.done():
                return
            if error is None:
                self._completed += 1
                self._latencies.append((self._clock() - started) * 1e3)
            else:
                self._failed += 1
        if error is None:
            outer._resolve(result, request)
        else:
            if not isinstance(error, ReproError):
                error = WorkerError(
                    f"pipeline stage hop for {self.name!r} failed: {error}")
            outer._fail(error)

    # ------------------------------------------------------------------
    def pump(self) -> int:
        """Step the router once (deliver frames, collect replies, expire
        timeouts); stage-hop submits happen inside the callbacks."""
        return self._router.pump()

    def drain(self, timeout: Optional[float] = 60.0) -> int:
        """Serve every submitted request to completion (or typed
        failure); returns the number still pending (0 on success)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        stalled = 0
        while True:
            with self._lock:
                if not self._pending:
                    return 0
            if deadline is not None and time.monotonic() > deadline:
                break
            moved = self._router.pump()
            if moved:
                stalled = 0
                continue
            stalled += 1
            if self._router._has_self_driving():
                time.sleep(0.005)
                stalled = 0
                continue
            if stalled >= 3:
                # Nothing deliverable with requests outstanding: let the
                # router fail its lost requests (dead worker, dropped
                # frame); the chain callbacks fail the outer futures.
                self._router.drain(timeout=1.0)
                stalled = 0
                with self._lock:
                    if self._pending:
                        break
        with self._lock:
            leftovers = list(self._futures.values())
        for outer in leftovers:
            self._finish(outer, error=WorkerError(
                f"pipeline request for {self.name!r} was not served "
                "before the drain deadline"))
        with self._lock:
            return len(self._pending)

    # ------------------------------------------------------------------
    def stats(self, timeout: Optional[float] = 30.0
              ) -> Dict[str, ModelStats]:
        """Per-stage rows from the workers (stage labels stamped) plus
        an aggregate row under the model name."""
        rows = self._router.stats(timeout=timeout)
        total = len(self._stage_names)
        out: Dict[str, ModelStats] = {}
        stage_rows: List[ModelStats] = []
        for index, stage_name in enumerate(self._stage_names):
            row = rows.get(stage_name)
            if row is None:
                continue
            row.stage = f"{index + 1}/{total}"
            out[stage_name] = row
            stage_rows.append(row)
        backends = {row.backend for row in stage_rows}
        with self._lock:
            aggregate = ModelStats(
                model=self.name,
                backend=backends.pop() if len(backends) == 1 else "mixed",
                max_batch=max((row.max_batch for row in stage_rows),
                              default=0),
                requests=self._completed,
                batches=stage_rows[0].batches if stage_rows else 0,
                errors=self._failed,
                wall_seconds=max((row.wall_seconds for row in stage_rows),
                                 default=0.0),
                latencies_ms=list(self._latencies),
                fpga_ms_total=sum(row.fpga_ms_total for row in stage_rows),
                queue_depth=sum(row.queue_depth for row in stage_rows),
                in_flight=len(self._pending))
        return {self.name: aggregate, **out}

    def format_stats(self) -> str:
        snapshots = self.stats()
        if not snapshots:
            return "no models loaded"
        return "\n".join(stats.format() for stats in snapshots.values())

    def worker_stats(self, timeout: Optional[float] = 30.0):
        return self._router.worker_stats(timeout=timeout)

    def close(self, drain: bool = True) -> None:
        if drain:
            try:
                self.drain(timeout=5.0)
            except ReproError:
                pass
        self._router.close(drain=False)


# ----------------------------------------------------------------------
# Cluster builders
# ----------------------------------------------------------------------
def local_pipeline_cluster(partition: PartitionPlan, *,
                           name: Optional[str] = None,
                           backend: str = DEFAULT_BACKEND,
                           max_batch: int = 16,
                           designs=None,
                           clock=time.monotonic,
                           fault_plans: Optional[Dict] = None,
                           capacity: int = 64,
                           **router_kwargs) -> PipelineCluster:
    """Deterministic in-process pipeline cluster: one ``LocalWorker``
    per stage (``fault_plans[k]`` injects that stage's ``FaultPlan`` for
    chaos tests), driven by ``pump()``/``drain()``."""
    name = name or partition.model
    stage_names = partition.stage_names()
    workers = []
    for index, stage in enumerate(partition.stages):
        source = StageDeployment(stage, backend=backend,
                                 design=_stage_design(designs, index),
                                 batch=max_batch)
        workers.append(LocalWorker(
            f"stage{index}", {stage_names[index]: source}, clock=clock,
            max_batch=max_batch, backend=backend, capacity=capacity,
            plan=(fault_plans or {}).get(index)))
    router = ClusterRouter(workers, clock=clock, capacity=capacity,
                           **router_kwargs)
    return PipelineCluster(router, stage_names, name=name, clock=clock)


def process_pipeline_cluster(stage_paths: Sequence[str], *,
                             name: str,
                             backend: str = DEFAULT_BACKEND,
                             max_batch: int = 16,
                             max_wait_ms: float = 2.0,
                             capacity: int = 64,
                             **worker_kwargs) -> PipelineCluster:
    """Subprocess pipeline cluster: one ``ProcessWorker`` per saved
    stage artifact, activations on the framed socket transport."""
    stage_names = [f"{name}/stage{index}"
                   for index in range(len(stage_paths))]
    workers = [ProcessWorker(f"stage{index}",
                             {stage_names[index]: path},
                             max_batch=max_batch, max_wait_ms=max_wait_ms,
                             backend=backend, capacity=capacity,
                             **worker_kwargs)
               for index, path in enumerate(stage_paths)]
    router = ClusterRouter(workers, capacity=capacity)
    return PipelineCluster(router, stage_names, name=name)
