"""Legal cut-point enumeration and per-stage sub-artifact materialization.

A *cut* splits one exported model into a chain of stages, each of which
re-enters the existing compile path (``ServeArtifact`` → ``lower_artifact``
→ passes → backend kernels) completely unchanged: a stage artifact is just
a smaller artifact whose input signature is the previous stage's output
activation. Pipelined serving then overlaps the stages
(:mod:`repro.serve.partition.pipeline`), and the autotuner prices cut
placements with :class:`~repro.autotune.cost.PipelineCostModel`.

Cuts live in the coordinate system of **top-level manifest ops** (the
``op_index`` every lowered :class:`~repro.serve.ir.IRNode` carries): a cut
after op ``i`` puts ops ``0..i`` in one stage and ``i+1..`` in the next.
This makes every legal cut a single-entry/single-exit frontier by
construction — nested residual branches lower to nodes sharing their
block's op index, so a residual can only ever move to a stage whole,
never be severed mid-branch.

Legality of a cut after op ``i`` (see :func:`legal_cut_points`):

1. not after the last op (both sides must be non-empty);
2. the frontier is single-exit — every edge crossing the boundary
   originates at op ``i``'s tail node (holds by construction for
   chain-lowered manifests; checked defensively);
3. op ``i+1`` is not a fused-epilogue kind (batch norm / ReLU): those
   execute inside the producing GEMM's kernel after fusion, and cutting
   between them would split a fused kernel across devices;
4. the tail activation is not time-merged — inside the merged-time
   region the leading per-request dim (T) is folded into the batch, and
   a cut there would break the downstream ``columns`` derivation and the
   ``(N, T, ...)`` per-request output views;
5. both sides keep at least one GEMM node, so every stage prices and
   serves real accelerator work (``Graph.workloads`` refuses empty
   plans).
"""

from __future__ import annotations

import copy
from bisect import bisect_left
from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, ExportError
from repro.fpga.gemm import GemmWorkload
from repro.serve.artifact import ServeArtifact
from repro.serve.ir import (
    Graph,
    IRNode,
    lower_artifact,
    node_workloads,
    synthetic_batch,
)

#: Op kinds that fusion passes fold into the preceding GEMM's kernel as
#: epilogues. A cut directly before one would sever a fused kernel.
EPILOGUE_KINDS = frozenset({"batchnorm2d", "batchnorm1d", "relu", "relu6"})

GEMM_KINDS = ("conv", "linear", "rnn")


@dataclass(frozen=True)
class CutPoint:
    """One legal stage boundary: after top-level manifest op ``op_index``."""

    op_index: int
    node_id: int                       # tail IR node whose output crosses
    node_name: str
    activation_shape: Tuple[int, ...]  # per-request, no batch dimension
    activation_dtype: str

    @property
    def activation_bytes(self) -> int:
        """Per-request bytes shipped between stages at this boundary."""
        return int(np.prod(self.activation_shape, dtype=np.int64)
                   * np.dtype(self.activation_dtype).itemsize)

    def describe(self) -> str:
        label = self.node_name or f"op{self.op_index}"
        return (f"after {label} (op {self.op_index}) -> "
                f"{self.activation_shape} {self.activation_dtype}, "
                f"{self.activation_bytes} B/request")


# ----------------------------------------------------------------------
# Cut enumeration
# ----------------------------------------------------------------------
def _op_tails(graph: Graph) -> Dict[int, IRNode]:
    """Tail node of every top-level op (node ids are sequential, so the
    highest-id node of an op index is the one whose output feeds op+1)."""
    tails: Dict[int, IRNode] = {}
    for node in graph.nodes:
        if node.op_index is not None:
            tails[node.op_index] = node     # execution order ⇒ last wins
    return tails


def _single_exit(graph: Graph, boundary: int, tail: IRNode) -> bool:
    """Do all edges crossing the boundary originate at ``tail``?"""
    for node in graph.nodes:
        if node.op_index is None or node.op_index <= boundary:
            continue
        for source in node.inputs:
            producer = graph.node(source)
            index = producer.op_index
            if index is None:
                index = -1                   # the synthetic input node
            if index <= boundary and producer.id != tail.id:
                return False
    return True


def legal_cut_points(graph: Graph) -> List[CutPoint]:
    """Every boundary where the lowered graph may be split (see module
    docstring for the five legality rules)."""
    tails = _op_tails(graph)
    if not tails:
        raise ExportError(
            "graph carries no op indices; re-lower the artifact with "
            "lower_artifact to enable partitioning")
    num_ops = max(tails) + 1
    op_kinds = {index: _op_kind(graph, tails, index)
                for index in range(num_ops)}
    gemm_ops = [index for index in range(num_ops)
                if any(n.kind in GEMM_KINDS for n in graph.nodes
                       if n.op_index == index)]
    points: List[CutPoint] = []
    for index in range(num_ops - 1):                         # rule 1
        tail = tails[index]
        if op_kinds[index + 1] in EPILOGUE_KINDS:            # rule 3
            continue
        if tail.merged_time:                                 # rule 4
            continue
        if not any(i <= index for i in gemm_ops) \
                or not any(i > index for i in gemm_ops):     # rule 5
            continue
        if not _single_exit(graph, index, tail):             # rule 2
            continue
        points.append(CutPoint(
            op_index=index, node_id=tail.id,
            node_name=tail.name or tail.kind,
            activation_shape=tuple(tail.output_shape),
            activation_dtype=tail.output_dtype))
    return points


def _op_kind(graph: Graph, tails: Dict[int, IRNode], index: int) -> str:
    """Kind of a top-level op: a residual block reports "residual"."""
    nodes = [n for n in graph.nodes if n.op_index == index]
    if len(nodes) > 1 or tails[index].kind == "add":
        return "residual"
    return tails[index].kind


def _validate_cuts(graph: Graph, cuts: Sequence[int]) -> List[CutPoint]:
    legal = {point.op_index: point for point in legal_cut_points(graph)}
    ordered = sorted(set(int(c) for c in cuts))
    if len(ordered) != len(cuts):
        raise ConfigurationError(f"duplicate cut indices in {tuple(cuts)}")
    chosen = []
    for index in ordered:
        if index not in legal:
            options = ", ".join(str(i) for i in sorted(legal)) or "none"
            raise ConfigurationError(
                f"op index {index} is not a legal cut point "
                f"(legal: {options})")
        chosen.append(legal[index])
    if not chosen:
        raise ConfigurationError("at least one cut index is required")
    return chosen


# ----------------------------------------------------------------------
# Stage materialization
# ----------------------------------------------------------------------
@dataclass
class PartitionPlan:
    """One model split into a chain of stage artifacts."""

    model: str
    cuts: Tuple[int, ...]
    cut_points: List[CutPoint]
    stages: List[ServeArtifact]

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    def stage_names(self) -> List[str]:
        return [stage.manifest["model"] for stage in self.stages]

    def save(self, stem) -> List[str]:
        """Write every stage to ``{stem}.stage{K}.npz``; returns the paths."""
        paths = []
        for index, stage in enumerate(self.stages):
            path = f"{stem}.stage{index}.npz"
            stage.save(path)
            paths.append(path)
        return paths

    def describe(self) -> str:
        lines = [f"{self.model}: {self.num_stages} stages "
                 f"(cut after ops {list(self.cuts)})"]
        for index, stage in enumerate(self.stages):
            manifest = stage.manifest
            boundary = ""
            if index < len(self.cut_points):
                boundary = f"  | {self.cut_points[index].describe()}"
            lines.append(
                f"  stage {index}: {stage.num_ops} ops, "
                f"in {tuple(manifest['input_shape'])} "
                f"({manifest['input_dtype']}), "
                f"{stage.stored_bytes()} B{boundary}")
        return "\n".join(lines)


def _referenced_arrays(value, arrays: Dict[str, np.ndarray],
                       found: set) -> None:
    if isinstance(value, str):
        if value in arrays:
            found.add(value)
    elif isinstance(value, dict):
        for item in value.values():
            _referenced_arrays(item, arrays, found)
    elif isinstance(value, (list, tuple)):
        for item in value:
            _referenced_arrays(item, arrays, found)


def split_artifact(artifact: ServeArtifact, cuts: Sequence[int], *,
                   verify: bool = True) -> PartitionPlan:
    """Materialize per-stage sub-artifacts at the given cut op indices.

    Each stage artifact is a complete ``repro-serve/1`` artifact (stage
    ``k > 0``'s input signature is the cut activation feeding it) whose
    manifest carries a ``pipeline`` block recording its place in the
    chain. With ``verify=True`` the stage plans are composed on a
    synthetic batch and checked ``np.array_equal`` against the unsplit
    plan — the subsystem's non-negotiable bit-exactness invariant.
    """
    graph = lower_artifact(artifact)
    points = _validate_cuts(graph, cuts)
    ordered = tuple(point.op_index for point in points)
    manifest = artifact.manifest
    ops = manifest["ops"]
    model = manifest.get("model", "model")

    bounds = [-1] + list(ordered) + [len(ops) - 1]
    stages: List[ServeArtifact] = []
    for stage_index in range(len(bounds) - 1):
        lo, hi = bounds[stage_index], bounds[stage_index + 1]
        stage_ops = copy.deepcopy(ops[lo + 1:hi + 1])
        if stage_index == 0:
            input_shape = list(manifest["input_shape"])
            input_dtype = manifest["input_dtype"]
        else:
            entry = points[stage_index - 1]
            input_shape = list(entry.activation_shape)
            input_dtype = entry.activation_dtype
        stage_manifest = copy.deepcopy(
            {key: value for key, value in manifest.items()
             if key != "ops"})
        stage_manifest.update({
            "model": f"{model}/stage{stage_index}",
            "input_shape": input_shape,
            "input_dtype": input_dtype,
            "ops": stage_ops,
            "pipeline": {
                "model": model,
                "stage": stage_index,
                "stages": len(bounds) - 1,
                "cut_ops": list(ordered),
                "cut_nodes": [point.node_name for point in points],
            },
        })
        referenced: set = set()
        _referenced_arrays(stage_ops, artifact.arrays, referenced)
        stage = ServeArtifact(manifest=stage_manifest)
        for key in sorted(referenced):
            stage.add_array(key, artifact.arrays[key])
        # Fail fast if a stage cannot re-enter the compile path.
        lower_artifact(stage)
        stages.append(stage)

    plan = PartitionPlan(model=model, cuts=ordered, cut_points=points,
                         stages=stages)
    if verify:
        verify_partition(artifact, plan)
    return plan


def verify_partition(artifact: ServeArtifact, plan: PartitionPlan,
                     backend: str = None, n: int = 2) -> None:
    """Assert composed stage outputs are bit-identical to the unsplit plan."""
    from repro.serve.plan import ExecutionPlan
    kwargs = {} if backend is None else {"backend": backend}
    reference = ExecutionPlan(artifact, **kwargs)
    batch = synthetic_batch(reference.graph, n=n)
    expected = reference.forward(batch)
    current = batch
    for stage in plan.stages:
        current = ExecutionPlan(stage, **kwargs).forward(current)
    if not np.array_equal(expected, current):
        raise ExportError(
            f"partition of {plan.model!r} at ops {list(plan.cuts)} is not "
            "bit-identical to the single-device plan")


# ----------------------------------------------------------------------
# Balanced cut search + cost-model helpers
# ----------------------------------------------------------------------
def _op_macs(graph: Graph) -> Dict[int, int]:
    """Total GEMM MACs of every top-level op (0 for non-GEMM ops)."""
    macs: Dict[int, int] = {}
    for node in graph.nodes:
        if node.op_index is None:
            continue
        total = sum(d["rows"] * d["reduction"] * d["columns"]
                    for d in node_workloads(node, graph))
        macs[node.op_index] = macs.get(node.op_index, 0) + total
    return macs


def auto_cuts(artifact: ServeArtifact, stages: int = 2) -> Tuple[int, ...]:
    """Pick the legal cut set that best balances per-stage GEMM MACs.

    Deterministic: exhaustive over legal combinations, minimizing the
    largest stage's MAC total (ties break to the lexicographically
    smallest cut tuple).
    """
    if stages < 2:
        raise ConfigurationError(f"a pipeline needs >= 2 stages, "
                                 f"got {stages}")
    graph = lower_artifact(artifact)
    legal = [point.op_index for point in legal_cut_points(graph)]
    if len(legal) < stages - 1:
        raise ConfigurationError(
            f"{artifact.manifest.get('model', 'model')!r} has only "
            f"{len(legal)} legal cut points; cannot split into "
            f"{stages} stages")
    macs = _op_macs(graph)
    num_ops = max(n.op_index for n in graph.nodes
                  if n.op_index is not None) + 1
    best, best_cost = None, None
    for combo in combinations(legal, stages - 1):
        bounds = [-1] + list(combo) + [num_ops - 1]
        cost = max(sum(macs.get(i, 0)
                       for i in range(bounds[k] + 1, bounds[k + 1] + 1))
                   for k in range(len(bounds) - 1))
        if best_cost is None or cost < best_cost:
            best, best_cost = combo, cost
    return tuple(best)


def stage_workloads(graph: Graph, cuts: Sequence[int],
                    batch: int = 1) -> List[List[GemmWorkload]]:
    """Per-stage GEMM workload lists of a graph split at ``cuts``.

    Derived by slicing the parent graph's nodes by op index — identical
    to lowering each stage artifact separately, because legal cuts never
    fall inside a merged-time region (the only place ``columns`` depends
    on the producing stage).
    """
    ordered = sorted(set(int(c) for c in cuts))
    specs: List[List[dict]] = [[] for _ in range(len(ordered) + 1)]
    for node in graph.nodes:
        if node.op_index is None:
            continue
        stage = bisect_left(ordered, node.op_index)
        specs[stage].extend(node_workloads(node, graph))
    out: List[List[GemmWorkload]] = []
    for stage, dims in enumerate(specs):
        if not dims:
            raise ExportError(f"stage {stage} has no GEMM workloads")
        out.append([GemmWorkload(name=d["name"], rows=d["rows"],
                                 reduction=d["reduction"],
                                 columns=d["columns"] * batch,
                                 sequential_columns=d["sequential"])
                    for d in dims])
    return out


def transfer_bytes(graph: Graph, cuts: Sequence[int]) -> List[int]:
    """Per-request activation bytes crossing each cut, in cut order."""
    tails = _op_tails(graph)
    out = []
    for index in sorted(set(int(c) for c in cuts)):
        tail = tails[index]
        out.append(int(np.prod(tail.output_shape, dtype=np.int64)
                       * np.dtype(tail.output_dtype).itemsize))
    return out


def cut_names(graph: Graph, cuts: Sequence[int]) -> List[str]:
    """Node name at the tail of each cut op (for reports), in cut order."""
    tails = _op_tails(graph)
    return [tails[int(index)].name or tails[int(index)].kind
            for index in sorted(set(int(c) for c in cuts))]
