"""Multi-device pipeline parallelism: split one model across FPGAs.

The splitter (:mod:`repro.serve.partition.splitter`) enumerates legal
cut points in the lowered IR and materializes per-stage sub-artifacts
that re-enter the existing compile path unchanged; the executors
(:mod:`repro.serve.partition.pipeline`) overlap the stages — in-process
with one worker thread per stage, or across cluster workers with
activations on the framed transport. Outputs are bit-identical
(``np.array_equal``) to the single-device plan by construction, verified
at split time.
"""

from repro.serve.partition.splitter import (
    EPILOGUE_KINDS,
    CutPoint,
    PartitionPlan,
    auto_cuts,
    cut_names,
    legal_cut_points,
    split_artifact,
    stage_workloads,
    transfer_bytes,
    verify_partition,
)
from repro.serve.partition.pipeline import (
    PipelineCluster,
    PipelineEngine,
    StageDeployment,
    local_pipeline_cluster,
    process_pipeline_cluster,
)

__all__ = [
    "EPILOGUE_KINDS",
    "CutPoint",
    "PartitionPlan",
    "auto_cuts",
    "cut_names",
    "legal_cut_points",
    "split_artifact",
    "stage_workloads",
    "transfer_bytes",
    "verify_partition",
    "PipelineCluster",
    "PipelineEngine",
    "StageDeployment",
    "local_pipeline_cluster",
    "process_pipeline_cluster",
]
