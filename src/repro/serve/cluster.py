"""Distributed serving: a front-door router over N model-server workers.

:class:`ModelServer` (PR 4) is one GIL-bound process — the scaling wall
named in the ROADMAP. :class:`ClusterRouter` is the tier above it: N
workers, each hosting a full ``ModelServer``, fronted by one router that
places requests (pluggable :mod:`~repro.serve.placement` policies),
enforces admission control (per-worker in-flight caps; overload sheds
with a retryable typed :class:`~repro.errors.AdmissionError`), survives
worker death (pending futures fail with typed
:class:`~repro.errors.WorkerError`, traffic re-routes to the survivors),
aggregates cluster-wide statistics through
``ThroughputStats.merge()``, and rolls restarts through the fleet one
worker at a time without dropping an in-flight request.

Workers speak the PR 4 JSON-lines protocol, verbatim
(:func:`~repro.serve.cli.serve_protocol`), carried over the
length-framed transport of :mod:`~repro.serve.transport`. Two worker
flavors share one router:

- :class:`ProcessWorker` — a real ``python -m repro.serve
  cluster-worker`` subprocess on a localhost socket; a reader thread per
  worker resolves futures as responses arrive. This is the production
  shape (`ClusterRouter.spawn`, ``python -m repro serve cluster``).
- :class:`LocalWorker` — the same ModelServer + protocol loop, in
  process, over a :class:`~repro.serve.transport.FakeTransport` pair
  with an injected clock. ``router.pump()`` advances the whole cluster
  one deterministic round; with a
  :class:`~repro.serve.transport.FaultPlan` per worker, every failure
  path (drop/delay/corrupt frames, kill mid-batch, refuse admission) is
  reproducible under pytest with zero sockets, threads, or sleeps.

Rolling restart reuses the alias machinery: each worker hosts its models
under versioned names (``resnet@v3``) with the public name aliased, so a
restart is exactly the PR 4 rollover — load generation N+1, re-point the
alias — and ``rolling_restart(models=...)`` rolls the fleet onto new
artifacts with zero downtime.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import (
    AdmissionError,
    ConfigurationError,
    FrameError,
    ServingError,
    SessionError,
    TransportClosed,
    WorkerError,
)
from repro.serve.backends import DEFAULT_BACKEND
from repro.serve.futures import InferenceFuture
from repro.serve.placement import (
    PlacementPolicy,
    WorkerView,
    get_placement,
)
from repro.serve.server import ModelServer, ModelStats
from repro.util.hashing import array_digest
from repro.serve.transport import (
    FRAME_ERROR_CODES,
    MAX_MESSAGE_BYTES,
    FakeTransport,
    FaultPlan,
    FrameWriter,
    SocketTransport,
    array_from_wire,
    array_to_wire,
)

__all__ = ["ClusterRouter", "LocalWorker", "ProcessWorker",
           "RoutedRequest", "RouterStats"]


SESSION_ERROR_CODES = frozenset({
    "session-error", "unknown-session", "session-exists",
    "session-expired", "session-evicted", "session-closed",
    "session-lost",
})


def error_from_wire(message: Dict) -> ServingError:
    """Reconstruct the typed error a worker answered over the wire."""
    code = message.get("code", "serving-error")
    text = str(message.get("error", "serving error"))
    if code in FRAME_ERROR_CODES:
        return FrameError(code, text)
    if code == "shed":
        return AdmissionError(text)
    if code in ("worker-failed", "no-workers", "timeout", "lost", "closed"):
        return WorkerError(text, code=code)
    if code in SESSION_ERROR_CODES:
        return SessionError(text, code=code)
    error = ServingError(text)
    error.code = code
    return error


@dataclass
class RoutedRequest:
    """Per-request record a cluster future resolves with (the cluster
    analog of :class:`~repro.serve.batcher.ServedRequest`)."""

    id: int
    model: str
    worker: str
    enqueued_at: float
    latency_ms: float = 0.0      # worker-side queue+service latency
    batch_id: Optional[int] = None
    batch_size: Optional[int] = None
    cached: bool = False         # answered from the worker's cache
    coalesced: bool = False      # rode an identical in-flight request


@dataclass
class _Pending:
    future: InferenceFuture
    worker: str
    model: str
    enqueued_at: float
    deadline: Optional[float]
    kind: str = "infer"          # "infer" | "stream" | "control" | "stats"
    session: Optional[str] = None


@dataclass
class RouterStats:
    """The router's own counters (worker-side serving detail lives in
    ``ClusterRouter.stats()``)."""

    routed: int = 0
    completed: int = 0
    shed: int = 0
    worker_failures: int = 0
    timeouts: int = 0
    protocol_errors: int = 0
    in_flight: int = 0
    workers_alive: int = 0
    workers: int = 0

    def format(self) -> str:
        return (f"routed {self.routed} (completed {self.completed}, "
                f"in flight {self.in_flight}), shed {self.shed}, "
                f"worker failures {self.worker_failures}, "
                f"timeouts {self.timeouts}, "
                f"protocol errors {self.protocol_errors}; "
                f"workers {self.workers_alive}/{self.workers} alive")


# ----------------------------------------------------------------------
# Workers
# ----------------------------------------------------------------------
class _WorkerBase:
    """State shared by both worker flavors; the router also stamps
    ``index`` (placement identity) at construction."""

    drives_itself = False        # process workers have reader threads

    def __init__(self, name: str, models: Dict, capacity: Optional[int]):
        if not models:
            raise ConfigurationError(f"worker {name!r} hosts no models")
        self.name = name
        self._sources = dict(models)
        self.capacity = capacity
        self.cache_enabled = False   # set by flavors that host a cache
        self.index = 0
        self.generation = 0
        self.alive = False
        self.accepting = True
        self.transport = None
        self._stopping = False
        self._failure_counted = False

    @property
    def models(self) -> Set[str]:
        return frozenset(self._sources)

    @property
    def refuses_admission(self) -> bool:
        return False

    def update_models(self, models: Dict) -> None:
        """Stage new artifact sources; the next (rolling) restart serves
        them."""
        unknown = set(models) - set(self._sources)
        if unknown:
            raise ConfigurationError(
                f"worker {self.name!r} does not host {sorted(unknown)}")
        self._sources.update(models)

    def mark_dead(self) -> None:
        self.alive = False
        if self.transport is not None:
            self.transport.close()


class LocalWorker(_WorkerBase):
    """In-process worker: a ``ModelServer`` behind a ``FakeTransport``.

    Deterministic by construction — nothing happens until ``step()``
    reads whatever frames the injected clock has delivered and runs them
    through ``serve_protocol`` (requests are batched, served, and
    answered within the step). A :class:`FaultPlan` applies to the
    worker's first incarnation only: a restarted worker comes back
    healthy, which is what crash-recovery tests need.
    """

    def __init__(self, name: str, models: Dict, *,
                 clock=time.monotonic, max_batch: int = 16,
                 max_wait_ms: Optional[float] = 0.0,
                 backend: str = DEFAULT_BACKEND,
                 capacity: Optional[int] = None,
                 plan: Optional[FaultPlan] = None,
                 max_bytes: int = MAX_MESSAGE_BYTES,
                 cache_mb: Optional[float] = None,
                 cache_ttl_s: Optional[float] = None,
                 session_mb: Optional[float] = None,
                 session_ttl_s: Optional[float] = None):
        super().__init__(name, models, capacity)
        self._clock = clock
        self.max_batch = int(max_batch)
        self.max_wait_ms = max_wait_ms
        self.backend = backend
        self.fault_plan = plan
        self.max_bytes = max_bytes
        self.cache_mb = cache_mb
        self.cache_ttl_s = cache_ttl_s
        self.cache_enabled = bool(cache_mb)
        self.session_mb = session_mb
        self.session_ttl_s = session_ttl_s
        self._endpoint = None
        self._server: Optional[ModelServer] = None
        self.start()

    @property
    def refuses_admission(self) -> bool:
        return bool(self.fault_plan and self.fault_plan.refuse_admission)

    def start(self) -> None:
        self.generation += 1
        self._failure_counted = False
        plan = self.fault_plan if self.generation == 1 else None
        self.transport, self._endpoint = FakeTransport.pair(
            plan=plan, clock=self._clock, max_bytes=self.max_bytes)
        self._server = ModelServer(workers=0, max_batch=self.max_batch,
                                   max_wait_ms=self.max_wait_ms,
                                   clock=self._clock,
                                   cache_mb=self.cache_mb,
                                   cache_ttl_s=self.cache_ttl_s,
                                   session_mb=self.session_mb,
                                   session_ttl_s=self.session_ttl_s)
        for public, source in self._sources.items():
            versioned = f"{public}@v{self.generation}"
            if hasattr(source, "engine"):
                self._server.add(versioned, source, batch=self.max_batch)
            else:
                self._server.load(versioned, source, backend=self.backend,
                                  batch=self.max_batch)
            self._server.alias(public, versioned)
        self.alive = True

    def restart(self, models: Optional[Dict] = None) -> None:
        if models:
            self.update_models(models)
        self.stop()
        self.start()

    def stop(self) -> None:
        self.alive = False
        if self.transport is not None:
            self.transport.close()
        if self._server is not None:
            self._server.close(drain=False)
            self._server = None

    # ------------------------------------------------------------------
    def step(self) -> int:
        """Serve every frame currently deliverable to this worker: read
        them off the transport and run the batch through the verbatim
        PR 4 ``serve_protocol`` (which batches, executes, and answers).
        Returns the number of protocol lines handled."""
        from repro.serve.cli import serve_protocol

        if not self.alive:
            return 0
        lines = []
        while True:
            try:
                line = self._endpoint.recv_line()
            except TransportClosed:
                self.mark_dead()
                return 0
            except FrameError as error:
                lines.append(error)
                continue
            if line is None:
                break
            lines.append(line)
        if not lines:
            return 0
        try:
            serve_protocol(self._server, lines, FrameWriter(self._endpoint),
                           max_line_bytes=self.max_bytes)
        except TransportClosed:
            self.mark_dead()
        if self._endpoint.closed:
            self.alive = False
        return len(lines)

    # ------------------------------------------------------------------
    def export_sessions(self) -> Dict[str, Dict[str, dict]]:
        """Wire-encoded snapshot of every model's live sessions — the
        in-process half of session migration across a rolling restart
        (the server resolves public aliases to the current generation)."""
        if self._server is None:
            raise ServingError(f"worker {self.name!r} is stopped")
        return {public: self._server.export_sessions(public)
                for public in self._sources}

    def import_sessions(self,
                        exported: Dict[str, Dict[str, dict]]) -> int:
        """Re-create exported sessions in the restarted server."""
        if self._server is None:
            raise ServingError(f"worker {self.name!r} is stopped")
        count = 0
        for public, sessions in exported.items():
            for sid, snapshot in sessions.items():
                self._server.import_session(
                    public, sid, snapshot["state"],
                    chunks=int(snapshot.get("chunks", 0)))
                count += 1
        return count


class ProcessWorker(_WorkerBase):
    """A worker subprocess (``python -m repro.serve cluster-worker``)
    serving the framed protocol on a localhost socket.

    ``models`` must map names to artifact *paths* (the subprocess loads
    them itself). ``env`` overlays the child environment — the benchmark
    uses it to pin BLAS thread pools so process scaling is measured
    clean.
    """

    drives_itself = True

    def __init__(self, name: str, models: Dict[str, str], *,
                 max_batch: int = 16, max_wait_ms: Optional[float] = 2.0,
                 backend: str = DEFAULT_BACKEND,
                 capacity: Optional[int] = None, worker_threads: int = 2,
                 env: Optional[Dict[str, str]] = None,
                 spawn_timeout: float = 60.0,
                 cache_mb: Optional[float] = None,
                 cache_ttl_s: Optional[float] = None,
                 session_mb: Optional[float] = None,
                 session_ttl_s: Optional[float] = None):
        for model, source in models.items():
            if hasattr(source, "engine"):
                raise ConfigurationError(
                    f"ProcessWorker {name!r} needs artifact paths, not "
                    f"in-process deployments (model {model!r}); save the "
                    "artifact and pass its path")
        super().__init__(name, {m: str(p) for m, p in models.items()},
                         capacity)
        self.max_batch = int(max_batch)
        self.max_wait_ms = max_wait_ms
        self.backend = backend
        self.worker_threads = int(worker_threads)
        self.cache_mb = cache_mb
        self.cache_ttl_s = cache_ttl_s
        self.cache_enabled = bool(cache_mb)
        self.session_mb = session_mb
        self.session_ttl_s = session_ttl_s
        self._env = dict(env or {})
        self._spawn_timeout = spawn_timeout
        self._proc: Optional[subprocess.Popen] = None
        self.start()

    def start(self) -> None:
        self.generation += 1
        self._failure_counted = False
        args = [sys.executable, "-m", "repro.serve", "cluster-worker",
                "--batch", str(self.max_batch),
                "--backend", self.backend,
                "--workers", str(self.worker_threads),
                "--generation", str(self.generation)]
        if self.max_wait_ms is not None:
            args += ["--max-wait-ms", str(self.max_wait_ms)]
        if self.cache_mb:
            args += ["--cache-mb", str(self.cache_mb)]
            if self.cache_ttl_s is not None:
                args += ["--cache-ttl-s", str(self.cache_ttl_s)]
        if self.session_mb is not None:
            args += ["--session-mb", str(self.session_mb)]
        if self.session_ttl_s is not None:
            args += ["--session-ttl-s", str(self.session_ttl_s)]
        for model, path in sorted(self._sources.items()):
            args += ["--model", f"{model}={path}"]
        import repro

        src_root = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        env.update(self._env)
        self._proc = subprocess.Popen(args, stdout=subprocess.PIPE,
                                      text=True, env=env)
        banner = self._proc.stdout.readline().strip()
        if not banner.startswith("PORT "):
            self._proc.kill()
            raise ServingError(
                f"worker {self.name!r} failed to start "
                f"(said {banner!r}, expected 'PORT <n>')")
        port = int(banner.split()[1])
        self.transport = SocketTransport.connect(
            "127.0.0.1", port, timeout=self._spawn_timeout)
        self.alive = True

    def restart(self, models: Optional[Dict] = None) -> None:
        if models:
            self.update_models(models)
        self.stop()
        self.start()

    def stop(self) -> None:
        self.alive = False
        if self.transport is not None:
            self.transport.close()     # EOF: the worker loop exits cleanly
        if self._proc is not None:
            try:
                self._proc.wait(timeout=30.0)
            except subprocess.TimeoutExpired:
                self._proc.kill()
                self._proc.wait()
            self._proc = None

    def step(self) -> int:
        return 0    # the reader thread drives responses


# ----------------------------------------------------------------------
# Router
# ----------------------------------------------------------------------
class ClusterRouter:
    """Front door over a fleet of workers; the multi-process analog of
    :class:`ModelServer` with the same ``submit -> InferenceFuture``
    surface (so ``serve_protocol`` can drive a whole cluster verbatim).

    ``capacity`` caps in-flight requests per worker (a worker-level
    ``capacity=`` overrides it); when every admissible replica is full
    the request is *shed* — its future fails immediately with a
    retryable :class:`AdmissionError` instead of queueing unboundedly.
    ``request_timeout_ms`` bounds how long a routed request may stay
    unanswered (measured on the injected ``clock``) before failing with
    a retryable typed timeout — the guard against lost frames.
    """

    def __init__(self, workers: Sequence[_WorkerBase],
                 placement="least_loaded", *,
                 clock=time.monotonic, capacity: int = 64,
                 request_timeout_ms: Optional[float] = None):
        workers = list(workers)
        if not workers:
            raise ConfigurationError("a cluster needs at least one worker")
        names = [worker.name for worker in workers]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"worker names must be unique, got {names}")
        if capacity < 1:
            raise ConfigurationError(
                f"capacity must be >= 1, got {capacity}")
        self._workers = workers
        for index, worker in enumerate(workers):
            worker.index = index
        self._placement = (placement if isinstance(placement,
                                                   PlacementPolicy)
                           else get_placement(placement))
        # Cache-aware routing: only pay the per-request payload digest
        # when the policy asks for one AND some worker actually hosts a
        # response cache (a no-cache fleet keeps byte-identical routing).
        self._cache_affinity = (self._placement.wants_request_key
                                and any(w.cache_enabled for w in workers))
        self._clock = clock
        self._capacity = int(capacity)
        self._timeout_ms = request_timeout_ms
        self._lock = threading.Condition(threading.Lock())
        self._pending: Dict[int, _Pending] = {}
        # (model, session id) -> owning worker name; None tombstones a
        # session whose worker died/restarted without migration, so the
        # client gets "session-lost" (state is gone) rather than the
        # config-mistake-flavored "unknown-session".
        self._sessions: Dict[Tuple[str, str], Optional[str]] = {}
        self._by_worker: Dict[str, Set[int]] = {w.name: set()
                                                for w in workers}
        self._in_flight: Dict[str, int] = {w.name: 0 for w in workers}
        self._next_id = 0
        self._counters = RouterStats(workers=len(workers))
        self._running = True
        self._readers: List[threading.Thread] = []
        for worker in workers:
            if worker.drives_itself:
                self._start_reader(worker)

    # ------------------------------------------------------------------
    # Construction conveniences
    # ------------------------------------------------------------------
    @classmethod
    def spawn(cls, models: Dict[str, str], workers: int = 2,
              placement="least_loaded", *, max_batch: int = 16,
              max_wait_ms: Optional[float] = 2.0,
              backend: str = DEFAULT_BACKEND, capacity: int = 64,
              worker_threads: int = 2,
              env: Optional[Dict[str, str]] = None,
              request_timeout_ms: Optional[float] = None,
              cache_mb: Optional[float] = None,
              cache_ttl_s: Optional[float] = None,
              session_mb: Optional[float] = None,
              session_ttl_s: Optional[float] = None
              ) -> "ClusterRouter":
        """Spawn ``workers`` subprocesses, each hosting every model in
        ``models`` (name -> artifact path), and route over them."""
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        fleet = [ProcessWorker(f"w{index}", models, max_batch=max_batch,
                               max_wait_ms=max_wait_ms, backend=backend,
                               capacity=None, worker_threads=worker_threads,
                               env=env, cache_mb=cache_mb,
                               cache_ttl_s=cache_ttl_s,
                               session_mb=session_mb,
                               session_ttl_s=session_ttl_s)
                 for index in range(workers)]
        return cls(fleet, placement, capacity=capacity,
                   request_timeout_ms=request_timeout_ms)

    def __enter__(self) -> "ClusterRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def submit(self, model: str, x) -> InferenceFuture:
        """Route one request; returns its future immediately.

        An unknown model raises (nobody hosts it — a config mistake);
        everything transient fails the *future* with a typed, usually
        retryable error: shed under overload, no live replica, worker
        death, oversized payload.
        """
        future = InferenceFuture(model=model)
        request_key = None
        if self._cache_affinity:
            try:
                # Same digest the workers' caches key payloads on, so
                # repeats of one payload land where the cache is warm.
                request_key = array_digest(np.asarray(x))
            except (TypeError, ValueError):
                request_key = None     # undigestable: placement by model
        with self._lock:
            if not self._running:
                raise ServingError("cluster router is closed")
            hosts = [w for w in self._workers if model in w.models]
            if not hosts:
                known = sorted({m for w in self._workers
                               for m in w.models})
                raise ServingError(
                    f"unknown model {model!r}; hosted: {known}")
            worker = self._admit_locked(model, hosts, request_key)
            if worker is None:
                self._counters.shed += 1
                alive = [w for w in hosts if w.alive]
                error = (AdmissionError(
                    f"all {len(alive)} replica(s) of {model!r} are at "
                    f"capacity; retry later") if alive
                    else WorkerError(
                        f"no live worker hosts {model!r}",
                        code="no-workers"))
                future._fail(error)
                return future
        try:
            message = {"model": model, **array_to_wire(np.asarray(x))}
        except Exception as error:
            bad = ServingError(f"payload could not be encoded: {error}")
            bad.code = "bad-request"
            future._fail(bad)
            return future
        with self._lock:
            request_id = self._next_id
            self._next_id += 1
            message["id"] = request_id
            now = self._clock()
            self._pending[request_id] = _Pending(
                future=future, worker=worker.name, model=model,
                enqueued_at=now,
                deadline=None if self._timeout_ms is None
                else now + self._timeout_ms / 1e3)
            self._by_worker[worker.name].add(request_id)
            self._in_flight[worker.name] += 1
            self._counters.routed += 1
        try:
            worker.transport.send(message)
        except TransportClosed:
            self._worker_died(worker)
        except FrameError as error:       # oversized payload
            self._drop_pending(request_id)
            future._fail(error)
        return future

    def submit_many(self, model: str,
                    xs: Iterable) -> List[InferenceFuture]:
        return [self.submit(model, x) for x in xs]

    def predict(self, model: str, x,
                timeout: Optional[float] = 60.0) -> np.ndarray:
        """Blocking convenience: submit, (pump local workers), result."""
        future = self.submit(model, x)
        if not self._has_self_driving():
            self.drain()
        return future.result(timeout=timeout)

    def _admit_locked(self, model: str, hosts: List[_WorkerBase],
                      request_key: Optional[str] = None
                      ) -> Optional[_WorkerBase]:
        views = [WorkerView(name=w.name, index=w.index, models=w.models,
                            alive=w.alive,
                            accepting=w.accepting
                            and not w.refuses_admission,
                            in_flight=self._in_flight[w.name],
                            capacity=w.capacity if w.capacity is not None
                            else self._capacity)
                 for w in hosts if w.alive]
        by_index = {w.index: w for w in hosts}
        for view in self._placement.order_request(model, request_key,
                                                  views):
            if view.accepting and view.in_flight < view.capacity:
                return by_index[view.index]
        return None

    # ------------------------------------------------------------------
    # Streaming sessions (sticky placement)
    # ------------------------------------------------------------------
    def open_session(self, model: str,
                     session_id: Optional[str] = None) -> str:
        """Open a streaming session and pin it to one worker.

        The worker is chosen by the placement policy keyed on the
        session id (consistent-hash policies give stable affinity);
        every subsequent chunk of the session routes to that worker,
        because that is where its recurrent state lives. Returns the
        session id; worker-side failures (e.g. a non-RNN model) surface
        on the session's first submit.
        """
        sid = session_id if session_id is not None \
            else uuid.uuid4().hex[:12]
        with self._lock:
            if not self._running:
                raise ServingError("cluster router is closed")
            if self._sessions.get((model, sid)) is not None:
                raise SessionError(
                    f"session {sid!r} is already open on worker "
                    f"{self._sessions[(model, sid)]!r}",
                    code="session-exists")
            hosts = [w for w in self._workers if model in w.models]
            if not hosts:
                known = sorted({m for w in self._workers
                                for m in w.models})
                raise ServingError(
                    f"unknown model {model!r}; hosted: {known}")
            worker = self._admit_locked(model, hosts,
                                        request_key=f"session:{sid}")
            if worker is None:
                raise WorkerError(
                    f"no live worker can host a session of {model!r}",
                    code="no-workers")
            self._sessions[(model, sid)] = worker.name
        future = self._send_control(worker, {
            "op": "stream_open", "model": model, "session": sid})

        def unmap_on_failure(done) -> None:
            if done.exception(timeout=None) is not None:
                with self._lock:
                    if self._sessions.get((model, sid)) == worker.name:
                        del self._sessions[(model, sid)]

        future.add_done_callback(unmap_on_failure)
        return sid

    def submit_stream(self, model: str, session_id: str,
                      chunk) -> InferenceFuture:
        """Route one chunk to the session's pinned worker."""
        future = InferenceFuture(model=model)
        with self._lock:
            if not self._running:
                raise ServingError("cluster router is closed")
            owner = self._sessions.get((model, session_id), "")
        if owner == "":
            future._fail(SessionError(
                f"unknown session {session_id!r} of {model!r} (never "
                "opened, or already closed)", code="unknown-session"))
            return future
        if owner is None:
            future._fail(SessionError(
                f"session {session_id!r} of {model!r} was lost with its "
                "worker; reopen and replay", code="session-lost"))
            return future
        worker = self._worker_by_name(owner)
        if not worker.alive:
            future._fail(SessionError(
                f"session {session_id!r} of {model!r} was lost with "
                f"worker {owner!r}; reopen and replay",
                code="session-lost"))
            return future
        try:
            message = {"op": "stream_submit", "model": model,
                       "session": session_id,
                       **array_to_wire(np.asarray(chunk))}
        except Exception as error:
            bad = ServingError(f"chunk could not be encoded: {error}")
            bad.code = "bad-request"
            future._fail(bad)
            return future
        with self._lock:
            request_id = self._next_id
            self._next_id += 1
            message["id"] = request_id
            now = self._clock()
            self._pending[request_id] = _Pending(
                future=future, worker=worker.name, model=model,
                enqueued_at=now,
                deadline=None if self._timeout_ms is None
                else now + self._timeout_ms / 1e3,
                kind="stream", session=session_id)
            self._by_worker[worker.name].add(request_id)
            self._in_flight[worker.name] += 1
            self._counters.routed += 1
        try:
            worker.transport.send(message)
        except TransportClosed:
            self._worker_died(worker)
        except FrameError as error:       # oversized chunk
            self._drop_pending(request_id)
            future._fail(error)
        return future

    def close_session(self, model: str, session_id: str,
                      timeout: Optional[float] = 30.0) -> int:
        """Close a session on its worker; returns chunks served."""
        with self._lock:
            if not self._running:
                raise ServingError("cluster router is closed")
            owner = self._sessions.pop((model, session_id), "")
        if owner == "":
            raise SessionError(
                f"unknown session {session_id!r} of {model!r} (never "
                "opened, or already closed)", code="unknown-session")
        if owner is None:
            raise SessionError(
                f"session {session_id!r} of {model!r} was lost with its "
                "worker", code="session-lost")
        worker = self._worker_by_name(owner)
        if not worker.alive:
            raise SessionError(
                f"session {session_id!r} of {model!r} was lost with "
                f"worker {owner!r}", code="session-lost")
        future = self._send_control(worker, {
            "op": "stream_close", "model": model, "session": session_id})
        if not self._has_self_driving():
            while not future.done():
                if self.pump() == 0:
                    break
        reply = future.result(
            timeout=0 if not self._has_self_driving() else timeout)
        return int(reply.get("chunks", 0))

    def sessions(self) -> Dict[str, List[str]]:
        """Live session ids per worker (lost sessions excluded)."""
        with self._lock:
            placed: Dict[str, List[str]] = {}
            for (model, sid), owner in self._sessions.items():
                if owner is not None:
                    placed.setdefault(owner, []).append(sid)
            return {name: sorted(ids) for name, ids in placed.items()}

    def _send_control(self, worker: _WorkerBase,
                      message: Dict) -> InferenceFuture:
        """Send a session-control op; its future resolves with the raw
        response message (the worker answers these immediately)."""
        future = InferenceFuture(model=message.get("model"))
        with self._lock:
            request_id = self._next_id
            self._next_id += 1
            self._pending[request_id] = _Pending(
                future=future, worker=worker.name,
                model=str(message.get("model")),
                enqueued_at=self._clock(), deadline=None,
                kind="control", session=message.get("session"))
            self._by_worker[worker.name].add(request_id)
        try:
            worker.transport.send({**message, "id": request_id})
        except TransportClosed:
            self._worker_died(worker)
        except FrameError as error:
            self._drop_pending(request_id)
            future._fail(error)
        return future

    # ------------------------------------------------------------------
    # Responses, deaths, timeouts
    # ------------------------------------------------------------------
    def _handle_message(self, worker: _WorkerBase, message: Dict) -> None:
        request_id = message.get("id")
        with self._lock:
            entry = (self._pending.pop(request_id, None)
                     if request_id is not None else None)
            if entry is not None:
                self._by_worker[entry.worker].discard(request_id)
                if entry.kind in ("infer", "stream"):
                    self._in_flight[entry.worker] = max(
                        0, self._in_flight[entry.worker] - 1)
                    self._counters.completed += 1
            elif "error" in message:
                # A typed answer to a frame the router cannot attribute
                # (e.g. the worker rejected a corrupted request frame).
                self._counters.protocol_errors += 1
            self._lock.notify_all()
        if entry is None:
            return
        if "error" in message:
            entry.future._fail(error_from_wire(message))
            return
        if entry.kind in ("stats", "control"):
            entry.future._resolve(message, None)
            return
        if "output_b64" in message:
            output = array_from_wire(message, "output")
        else:
            output = np.asarray(message.get("output"))
        entry.future._resolve(output, RoutedRequest(
            id=request_id, model=entry.model, worker=worker.name,
            enqueued_at=entry.enqueued_at,
            latency_ms=message.get("latency_ms", 0.0),
            batch_id=message.get("batch_id"),
            batch_size=message.get("batch_size"),
            cached=bool(message.get("cached", False)),
            coalesced=bool(message.get("coalesced", False))))

    def _drop_pending(self, request_id: int) -> Optional[_Pending]:
        with self._lock:
            entry = self._pending.pop(request_id, None)
            if entry is not None:
                self._by_worker[entry.worker].discard(request_id)
                if entry.kind in ("infer", "stream"):
                    self._in_flight[entry.worker] = max(
                        0, self._in_flight[entry.worker] - 1)
            self._lock.notify_all()
        return entry

    def _worker_died(self, worker: _WorkerBase) -> None:
        with self._lock:
            worker.mark_dead()
            ids = sorted(self._by_worker[worker.name])
            entries = [self._pending.pop(request_id)
                       for request_id in ids]
            self._by_worker[worker.name].clear()
            self._in_flight[worker.name] = 0
            if not worker._failure_counted:
                worker._failure_counted = True
                self._counters.worker_failures += 1
            # The worker's sessions died with their server-held state.
            # The mapping stays (tombstoned) so later submits for those
            # sessions fail typed "session-lost", not "unknown-session".
            for key, owner in self._sessions.items():
                if owner == worker.name:
                    self._sessions[key] = None
            self._lock.notify_all()
        for entry in entries:
            if entry.kind == "stream":
                # Only this worker's sessions fail; streams pinned to
                # other workers never see the crash.
                entry.future._fail(SessionError(
                    f"worker {worker.name!r} died holding session "
                    f"{entry.session!r} of {entry.model!r}; its state is "
                    "lost — reopen and replay", code="session-lost"))
            else:
                entry.future._fail(WorkerError(
                    f"worker {worker.name!r} died holding request for "
                    f"{entry.model!r} (crash mid-batch or connection "
                    "lost); the request may be retried"))

    def _expire_timeouts(self) -> int:
        now = self._clock()
        with self._lock:
            expired = [request_id
                       for request_id, entry in self._pending.items()
                       if entry.deadline is not None
                       and now >= entry.deadline]
            entries = []
            for request_id in expired:
                entry = self._pending.pop(request_id)
                self._by_worker[entry.worker].discard(request_id)
                if entry.kind in ("infer", "stream"):
                    self._in_flight[entry.worker] = max(
                        0, self._in_flight[entry.worker] - 1)
                self._counters.timeouts += 1
                entries.append(entry)
            self._lock.notify_all()
        for entry in entries:
            entry.future._fail(WorkerError(
                f"no response from worker {entry.worker!r} within "
                f"{self._timeout_ms} ms (frame lost?)", code="timeout"))
        return len(entries)

    # ------------------------------------------------------------------
    # Driving (deterministic local mode)
    # ------------------------------------------------------------------
    def pump(self) -> int:
        """One deterministic round: step every live local worker (it
        serves whatever the clock has delivered), collect its responses,
        expire timed-out requests. Returns how many protocol events
        (responses, errors, timeouts) were handled."""
        progressed = 0
        for worker in self._workers:
            if worker.drives_itself or not worker.alive:
                continue
            worker.step()
            if not worker.alive:
                self._worker_died(worker)
                continue
            while True:
                try:
                    message = worker.transport.recv()
                except TransportClosed:
                    self._worker_died(worker)
                    break
                except FrameError:
                    with self._lock:
                        self._counters.protocol_errors += 1
                    progressed += 1
                    continue
                if message is None:
                    break
                self._handle_message(worker, message)
                progressed += 1
        progressed += self._expire_timeouts()
        return progressed

    def drain(self, timeout: Optional[float] = 60.0) -> int:
        """Resolve every pending request. Local workers are pumped to
        completion — a request that can no longer complete (its frame
        was dropped and no clock advance is coming) fails typed
        (``code="lost"``) rather than hanging. Process workers are
        waited on (wall-clock ``timeout``); stragglers fail typed
        (``code="timeout"``)."""
        completed = 0
        if any(not w.drives_itself for w in self._workers):
            while True:
                with self._lock:
                    stuck = [request_id
                             for request_id, entry in self._pending.items()
                             if not self._worker_by_name(
                                 entry.worker).drives_itself]
                if not stuck:
                    break
                if self.pump() == 0:
                    self._fail_lost(stuck)
                    break
                completed += 1
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        with self._lock:
            while self._remote_pending_locked():
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    break
                self._lock.wait(1.0 if remaining is None
                                else min(remaining, 1.0))
            leftovers = self._remote_pending_locked()
        for request_id in leftovers:
            entry = self._drop_pending(request_id)
            if entry is not None:
                with self._lock:
                    self._counters.timeouts += 1
                entry.future._fail(WorkerError(
                    f"no response from worker {entry.worker!r} within "
                    f"{timeout} s", code="timeout"))
        return completed

    def _remote_pending_locked(self) -> List[int]:
        return [request_id
                for request_id, entry in self._pending.items()
                if self._worker_by_name(entry.worker).drives_itself]

    def _fail_lost(self, request_ids: List[int]) -> None:
        for request_id in request_ids:
            entry = self._drop_pending(request_id)
            if entry is None:
                continue
            with self._lock:
                self._counters.timeouts += 1
            entry.future._fail(WorkerError(
                f"request for {entry.model!r} on worker "
                f"{entry.worker!r} can no longer complete "
                "(frame lost in transport)", code="lost"))

    def _worker_by_name(self, name: str) -> _WorkerBase:
        for worker in self._workers:
            if worker.name == name:
                return worker
        raise ConfigurationError(f"no worker named {name!r}")

    def _has_self_driving(self) -> bool:
        return any(worker.drives_itself for worker in self._workers)

    def _start_reader(self, worker: _WorkerBase) -> None:
        thread = threading.Thread(
            target=self._reader_loop, args=(worker, worker.transport),
            name=f"repro-cluster-reader-{worker.name}", daemon=True)
        thread.start()
        self._readers.append(thread)

    def _reader_loop(self, worker: _WorkerBase, transport) -> None:
        while True:
            try:
                message = transport.recv(block=True)
            except TransportClosed:
                break
            except FrameError as error:
                with self._lock:
                    self._counters.protocol_errors += 1
                if error.code == "truncated":
                    break
                continue
            if message is None:
                break
            self._handle_message(worker, message)
        # The connection ended. During close()/rolling restart that is
        # intentional; otherwise the worker died under us.
        if self._running and not worker._stopping \
                and worker.transport is transport:
            self._worker_died(worker)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def rolling_restart(self, models: Optional[Dict] = None,
                        timeout: Optional[float] = 60.0) -> None:
        """Restart the fleet one worker at a time with zero request
        loss: stop admitting to the worker, let its in-flight requests
        finish, restart it (reloading its model sources — pass
        ``models=`` name->new artifact path to roll the whole fleet onto
        a new version), resume. Traffic keeps flowing to the other
        workers throughout.

        Streaming sessions survive when the worker can export them
        (:class:`LocalWorker`): after the drain its sessions are
        snapshotted over the exact-float wire encoding and re-imported
        into the restarted server, so surviving sessions continue
        bit-exactly. A worker that cannot migrate (a restarted
        subprocess is a fresh address space) loses its sessions: their
        mappings are tombstoned and later chunks fail typed
        ``session-lost``.
        """
        for worker in self._workers:
            with self._lock:
                worker.accepting = False
                has_sessions = any(
                    owner == worker.name
                    for owner in self._sessions.values())
            self._drain_worker(worker, timeout)
            exported = None
            if has_sessions and hasattr(worker, "export_sessions"):
                try:
                    exported = worker.export_sessions()
                except ServingError:
                    exported = None
            worker._stopping = True
            try:
                worker.restart(models)
            finally:
                worker._stopping = False
            if has_sessions:
                if exported is not None:
                    worker.import_sessions(exported)
                else:
                    with self._lock:
                        for key, owner in self._sessions.items():
                            if owner == worker.name:
                                self._sessions[key] = None
            with self._lock:
                self._in_flight[worker.name] = 0
                worker.accepting = True
            if worker.drives_itself:
                self._start_reader(worker)

    def _drain_worker(self, worker: _WorkerBase,
                      timeout: Optional[float]) -> None:
        if not worker.alive:
            return
        if not worker.drives_itself:
            while True:
                with self._lock:
                    if not self._by_worker[worker.name]:
                        return
                if self.pump() == 0:
                    with self._lock:
                        stuck = sorted(self._by_worker[worker.name])
                    self._fail_lost(stuck)
                    return
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        with self._lock:
            while self._by_worker[worker.name]:
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    break
                self._lock.wait(1.0 if remaining is None
                                else min(remaining, 1.0))
            stuck = sorted(self._by_worker[worker.name])
        self._fail_lost(stuck)

    def close(self, drain: bool = True) -> None:
        """Stop routing; drain (or typed-fail) what is pending, then
        stop every worker."""
        with self._lock:
            if not self._running:
                return
            running_was = self._running
        if drain and running_was:
            try:
                self.drain()
            except Exception:
                pass
        with self._lock:
            self._running = False
            pending = list(self._pending.values())
            self._pending.clear()
            for ids in self._by_worker.values():
                ids.clear()
            self._lock.notify_all()
        for entry in pending:
            if not entry.future.done():
                entry.future._fail(ServingError(
                    "cluster router closed before serving"))
        for worker in self._workers:
            worker._stopping = True
            worker.stop()
        for thread in self._readers:
            thread.join(timeout=10.0)
        self._readers = []

    # ------------------------------------------------------------------
    # Introspection / statistics
    # ------------------------------------------------------------------
    def workers(self) -> List[str]:
        return [worker.name for worker in self._workers]

    def alive_workers(self) -> List[str]:
        return [worker.name for worker in self._workers if worker.alive]

    def models(self) -> List[str]:
        return sorted({model for worker in self._workers
                       for model in worker.models})

    def aliases(self) -> Dict[str, str]:
        return {}

    def router_stats(self) -> RouterStats:
        with self._lock:
            stats = RouterStats(**{f: getattr(self._counters, f)
                                   for f in ("routed", "completed", "shed",
                                             "worker_failures", "timeouts",
                                             "protocol_errors")},
                                in_flight=sum(self._in_flight.values()),
                                workers_alive=sum(
                                    1 for w in self._workers if w.alive),
                                workers=len(self._workers))
        return stats

    def worker_stats(self, timeout: Optional[float] = 30.0
                     ) -> Dict[str, Dict[str, ModelStats]]:
        """Per-worker serving statistics, fetched over the wire
        (``{"op": "stats", "detail": true}``) and re-keyed to public
        model names through each worker's alias map."""
        futures = {}
        for worker in self._workers:
            if not worker.alive:
                continue
            future = InferenceFuture(model="stats")
            with self._lock:
                request_id = self._next_id
                self._next_id += 1
                self._pending[request_id] = _Pending(
                    future=future, worker=worker.name, model="stats",
                    enqueued_at=self._clock(), deadline=None,
                    kind="stats")
                self._by_worker[worker.name].add(request_id)
            try:
                worker.transport.send({"op": "stats", "detail": True,
                                       "id": request_id})
            except TransportClosed:
                self._worker_died(worker)
                continue
            futures[worker.name] = future
        if not self._has_self_driving():
            while any(not future.done() for future in futures.values()):
                if self.pump() == 0:
                    break
        collected: Dict[str, Dict[str, ModelStats]] = {}
        for name, future in futures.items():
            try:
                payload = future.result(
                    timeout=0 if not self._has_self_driving()
                    else timeout)
            except (ServingError, TimeoutError):
                continue
            aliases = payload.get("aliases", {})
            public = {target: alias for alias, target in aliases.items()}
            models = {}
            for model, fields in payload.get("models", {}).items():
                key = public.get(model, model)
                stats = ModelStats.from_wire(fields)
                stats.model = key
                models[key] = stats
            collected[name] = models
        return collected

    def stats(self, timeout: Optional[float] = 30.0
              ) -> Dict[str, ModelStats]:
        """Cluster-wide per-model statistics: every worker's
        ``ModelStats`` for the model, merged with
        ``ThroughputStats.merge()`` (counters sum, latency windows
        concatenate, ``max_batch`` maxes)."""
        merged: Dict[str, ModelStats] = {}
        for worker_models in self.worker_stats(timeout).values():
            for model, stats in worker_models.items():
                merged[model] = (stats if model not in merged
                                 else merged[model].merge(stats))
        return dict(sorted(merged.items()))

    def total_stats(self, timeout: Optional[float] = 30.0
                    ) -> Optional[ModelStats]:
        """Everything merged into one ``ModelStats`` (``model`` collapses
        to ``"mixed"`` when several models are hosted)."""
        per_model = list(self.stats(timeout).values())
        if not per_model:
            return None
        return per_model[0].merge(*per_model[1:]) if len(per_model) > 1 \
            else per_model[0]

    def format_stats(self) -> str:
        lines = [stats.format() for stats in self.stats().values()]
        lines.append(self.router_stats().format())
        return "\n".join(lines)
