"""Micro-batching request scheduler with latency/throughput accounting.

``BatchScheduler`` coalesces queued single requests into micro-batches of at
most ``max_batch`` and runs each batch through an
:class:`~repro.serve.engine.InferenceEngine` in one plan pass. Requests are
served strictly FIFO; an artifact fixes one input shape, so ``submit``
validates each payload against it up front (shape mismatch is an immediate
error, not a deferred batch failure) and coerces the dtype to the plan's.

Accounting reports both clocks the ROADMAP cares about:

- **wall-clock** — numpy time actually spent, per-request queue+service
  latency percentiles, requests/sec;
- **simulated FPGA** — the accelerator cycle model's latency for each
  micro-batch (:meth:`ExecutionPlan.simulate`), showing how batching fills
  the GEMM cores' output-position lanes.

The scheduler is deliberately synchronous and deterministic: ``submit`` only
enqueues; ``step`` serves exactly one micro-batch; ``run`` drains the queue.
An injectable ``clock`` makes the latency accounting unit-testable.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.serve.engine import InferenceEngine


@dataclass
class ServedRequest:
    """One enqueued inference request and, once served, its result."""

    id: int
    payload: np.ndarray
    enqueued_at: float
    completed_at: Optional[float] = None
    result: Optional[np.ndarray] = None
    batch_id: Optional[int] = None
    batch_size: Optional[int] = None
    fpga_ms: Optional[float] = None   # batch FPGA latency / batch size

    @property
    def done(self) -> bool:
        return self.completed_at is not None

    @property
    def latency_ms(self) -> float:
        if not self.done:
            raise ConfigurationError(f"request {self.id} not served yet")
        return (self.completed_at - self.enqueued_at) * 1e3


@dataclass
class ServeStats:
    """Aggregate statistics of one scheduler drain."""

    requests: int
    batches: int
    wall_seconds: float
    latencies_ms: List[float]
    fpga_ms_total: float
    backend: str = "reference"   # kernel backend that served the requests

    @property
    def mean_batch_size(self) -> float:
        return self.requests / self.batches if self.batches else 0.0

    @property
    def requests_per_second(self) -> float:
        return (self.requests / self.wall_seconds
                if self.wall_seconds > 0 else 0.0)

    @property
    def latency_ms_mean(self) -> float:
        return float(np.mean(self.latencies_ms)) if self.latencies_ms else 0.0

    @property
    def latency_ms_p95(self) -> float:
        if not self.latencies_ms:
            return 0.0
        return float(np.percentile(self.latencies_ms, 95))

    @property
    def fpga_ms_per_request(self) -> float:
        return self.fpga_ms_total / self.requests if self.requests else 0.0

    @property
    def latency_ms_p50(self) -> float:
        if not self.latencies_ms:
            return 0.0
        return float(np.percentile(self.latencies_ms, 50))

    def format(self) -> str:
        return "\n".join([
            f"requests:            {self.requests} "
            f"(backend: {self.backend})",
            f"micro-batches:       {self.batches} "
            f"(mean size {self.mean_batch_size:.1f})",
            f"wall-clock:          {self.wall_seconds * 1e3:.1f} ms total, "
            f"{self.requests_per_second:.1f} req/s",
            f"request latency:     mean {self.latency_ms_mean:.2f} ms, "
            f"p95 {self.latency_ms_p95:.2f} ms",
            f"simulated FPGA:      {self.fpga_ms_total:.2f} ms total, "
            f"{self.fpga_ms_per_request:.3f} ms/request",
        ])


class BatchScheduler:
    """Coalesce queued requests into micro-batches and serve them."""

    def __init__(self, engine: InferenceEngine, max_batch: int = 16,
                 clock=time.perf_counter):
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {max_batch}")
        self.engine = engine
        self.max_batch = max_batch
        self._clock = clock
        self._queue: Deque[ServedRequest] = deque()
        self._next_id = 0
        self._batches_served = 0
        self._served: List[ServedRequest] = []
        self._serve_seconds = 0.0

    # ------------------------------------------------------------------
    def submit(self, payload: np.ndarray) -> ServedRequest:
        """Enqueue one request (a single input, no batch dimension)."""
        payload = np.asarray(payload)
        expected = self.engine.plan.input_shape
        if tuple(payload.shape) != expected:
            raise ConfigurationError(
                f"request shape {tuple(payload.shape)} != plan input "
                f"shape {expected}")
        payload = payload.astype(self.engine.plan.input_dtype, copy=False)
        request = ServedRequest(id=self._next_id, payload=payload,
                                enqueued_at=self._clock())
        self._next_id += 1
        self._queue.append(request)
        return request

    @property
    def pending(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    def step(self) -> List[ServedRequest]:
        """Serve one micro-batch: the next ``max_batch`` queued requests."""
        if not self._queue:
            return []
        batch = [self._queue.popleft()
                 for _ in range(min(self.max_batch, len(self._queue)))]

        # Price the batch size first: a cycle-model cache miss must not
        # count against the wall-clock/latency numbers below.
        fpga_ms = self.engine.fpga_latency_ms(len(batch))
        started = self._clock()
        outputs = self.engine.infer(np.stack([r.payload for r in batch]))
        completed = self._clock()
        for index, request in enumerate(batch):
            request.result = outputs[index]
            request.completed_at = completed
            request.batch_id = self._batches_served
            request.batch_size = len(batch)
            request.fpga_ms = fpga_ms / len(batch)
        self._batches_served += 1
        self._serve_seconds += completed - started
        self._served.extend(batch)
        return batch

    def run(self) -> ServeStats:
        """Drain the queue and return the aggregate statistics."""
        while self._queue:
            self.step()
        return self.stats()

    def stats(self) -> ServeStats:
        served = self._served
        return ServeStats(
            requests=len(served),
            batches=self._batches_served,
            wall_seconds=self._serve_seconds,
            latencies_ms=[r.latency_ms for r in served],
            fpga_ms_total=sum(r.fpga_ms for r in served),
            backend=self.engine.backend,
        )
