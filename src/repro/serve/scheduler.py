"""Batch execution and the legacy synchronous scheduler facade.

The machinery that used to live inside ``BatchScheduler`` is now split in
two: batch *forming* is :class:`~repro.serve.batcher.DynamicBatcher`
(FIFO, size-or-deadline flush) and batch *execution* is
:func:`execute_batch` (one engine pass per formed micro-batch, request
records filled in, futures resolved). :class:`~repro.serve.server.ModelServer`
drives both asynchronously for many models at once; this module keeps the
single-model pieces:

- :class:`ServeStats` — aggregate statistics of one drain, built on the
  shared :class:`~repro.serve.engine.ThroughputStats` mixin;
- :func:`execute_batch` — the one place a formed batch meets an engine
  (wall-clock discipline identical to the pre-refactor scheduler:
  FPGA pricing first, then clock / infer / clock);
- :class:`BatchScheduler` — the old synchronous ``submit``/``step``/``run``
  surface, now a thin deprecated facade over the same machinery. It emits
  ``DeprecationWarning`` for one release and produces bit-identical
  results and ``ServeStats``; use ``Deployment.serve`` or
  :class:`~repro.serve.server.ModelServer` instead.

An injectable ``clock`` makes the latency accounting unit-testable.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.serve.batcher import (
    DynamicBatcher,
    ServedRequest,
    coerce_payload,
)
from repro.serve.engine import InferenceEngine, ThroughputStats

__all__ = ["ServedRequest", "ServeStats", "execute_batch", "BatchScheduler"]


@dataclass
class ServeStats(ThroughputStats):
    """Aggregate statistics of one scheduler drain."""

    requests: int
    batches: int
    wall_seconds: float
    latencies_ms: List[float]
    fpga_ms_total: float
    backend: str = "reference"   # kernel backend that served the requests

    def format(self) -> str:
        return "\n".join([
            f"requests:            {self.requests} "
            f"(backend: {self.backend})",
            f"micro-batches:       {self.batches} "
            f"(mean size {self.mean_batch_size:.1f})",
            f"wall-clock:          {self.wall_seconds * 1e3:.1f} ms total, "
            f"{self.requests_per_second:.1f} req/s",
            f"request latency:     mean {self.latency_ms_mean:.2f} ms, "
            f"p95 {self.latency_ms_p95:.2f} ms",
            f"simulated FPGA:      {self.fpga_ms_total:.2f} ms total, "
            f"{self.fpga_ms_per_request:.3f} ms/request",
        ])


def execute_batch(engine: InferenceEngine,
                  batch: Sequence[ServedRequest],
                  clock, batch_id: int) -> float:
    """Serve one formed micro-batch in a single engine pass.

    Fills every request record (result, completion time, batch id/size,
    per-request FPGA share) and resolves attached futures. On an execution
    failure every future in the batch is failed with the error before it
    propagates. Returns the wall seconds spent serving.

    The clock discipline is the legacy scheduler's, verbatim: the batch
    size is priced on the cycle model *before* the wall clock starts (a
    cost-model cache miss must not count against serving latency), then
    exactly two clock reads bracket the engine pass.
    """
    fpga_ms = engine.fpga_latency_ms(len(batch))
    started = clock()
    try:
        outputs = engine.infer(np.stack([r.payload for r in batch]))
    except Exception as error:
        for request in batch:
            request.error = error
            if request.future is not None:
                request.future._fail(error)
        raise
    completed = clock()
    # Time-merged plans return (N*T, ...); re-view as (N, T, ...) so each
    # request gets its whole output, not a single flattened row.
    outputs = engine.plan.per_request_outputs(outputs, len(batch))
    for index, request in enumerate(batch):
        request.result = outputs[index]
        request.completed_at = completed
        request.batch_id = batch_id
        request.batch_size = len(batch)
        request.fpga_ms = fpga_ms / len(batch)
        if request.future is not None:
            request.future._resolve(outputs[index], request)
    return completed - started


class BatchScheduler:
    """Deprecated synchronous facade: coalesce, serve, account — one model.

    The ``submit``/``step``/``run`` surface is kept for one release and
    warns; it drives the exact same batcher + executor as the new API, so
    results and ``ServeStats`` are bit-identical to both the pre-refactor
    scheduler and ``Deployment.serve``.
    """

    def __init__(self, engine: InferenceEngine, max_batch: int = 16,
                 clock=time.perf_counter):
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {max_batch}")
        self.engine = engine
        self.max_batch = max_batch
        self._clock = clock
        self._batcher = DynamicBatcher(max_batch, max_wait_ms=None,
                                       clock=clock)
        self._batches_served = 0
        self._served: List[ServedRequest] = []
        self._serve_seconds = 0.0

    @staticmethod
    def _warn(method: str, replacement: str) -> None:
        warnings.warn(
            f"BatchScheduler.{method} is deprecated; use {replacement} "
            "(see repro.serve.server.ModelServer for the async multi-model "
            "API)", DeprecationWarning, stacklevel=3)

    # ------------------------------------------------------------------
    def submit(self, payload: np.ndarray) -> ServedRequest:
        """Enqueue one request (a single input, no batch dimension)."""
        self._warn("submit", "ModelServer.submit or Deployment.serve")
        return self._submit(payload)

    def _submit(self, payload: np.ndarray) -> ServedRequest:
        return self._batcher.submit(
            coerce_payload(self.engine.plan, payload))

    @property
    def pending(self) -> int:
        return self._batcher.pending

    # ------------------------------------------------------------------
    def step(self) -> List[ServedRequest]:
        """Serve one micro-batch: the next ``max_batch`` queued requests."""
        self._warn("step", "ModelServer workers or Deployment.serve")
        return self._step()

    def _step(self) -> List[ServedRequest]:
        batch = self._batcher.take(force=True)
        if not batch:
            return []
        self._serve_seconds += execute_batch(
            self.engine, batch, self._clock, self._batches_served)
        self._batches_served += 1
        self._served.extend(batch)
        return batch

    def run(self) -> ServeStats:
        """Drain the queue and return the aggregate statistics."""
        self._warn("run", "Deployment.serve")
        while self._batcher.pending:
            self._step()
        return self.stats()

    def stats(self) -> ServeStats:
        served = self._served
        return ServeStats(
            requests=len(served),
            batches=self._batches_served,
            wall_seconds=self._serve_seconds,
            latencies_ms=[r.latency_ms for r in served],
            fpga_ms_total=sum(r.fpga_ms for r in served),
            backend=self.engine.backend,
        )
