"""ctypes runtime for the ``compiled`` backend.

One :class:`GraphProgram` per compiled model collects every native
node's renderer at kernel-compile time; the first request of each batch
size renders one C translation unit for all of them, builds (or reuses)
the cached ``.so``, loads it, and binds one function pointer per
(node, role). Kernels then call straight into native code with raw
buffer addresses — no per-op numpy dispatch on the glue.

Libraries are ``dlopen``ed once per process and memoized: two models
compiled from the same artifact at the same batch size share one mapped
library.
"""

from __future__ import annotations

import ctypes
import threading
from pathlib import Path
from typing import Callable, Dict, List, Tuple

from repro.serve.codegen.build import build_library
from repro.serve.codegen.renderer import CSegment, render_module

_dlopen_lock = threading.Lock()
_loaded: Dict[str, ctypes.CDLL] = {}


def load_library(path: Path) -> ctypes.CDLL:
    """``dlopen`` with a process-wide memo (cache hits share mappings)."""
    key = str(path)
    with _dlopen_lock:
        library = _loaded.get(key)
        if library is None:
            library = ctypes.CDLL(key)
            _loaded[key] = library
        return library


class GraphProgram:
    """Lazily-built native code for one compiled graph.

    Kernels :meth:`register` their renderers while the backend compiles
    nodes; :meth:`for_batch` returns the ``{(node id, role): function}``
    table for a batch size, rendering + building on first use. Thread
    safe: concurrent first requests at the same size build once (the
    build layer additionally guards cross-process races).
    """

    def __init__(self, tag: str = "graph"):
        self.tag = tag
        self._renderers: List[object] = []
        self._tables: Dict[int, Dict[tuple, Callable]] = {}
        self._lock = threading.RLock()

    def register(self, renderer) -> None:
        self._renderers.append(renderer)

    @property
    def node_count(self) -> int:
        return len(self._renderers)

    def for_batch(self, n: int) -> Dict[tuple, Callable]:
        with self._lock:
            table = self._tables.get(n)
            if table is None:
                table = self._build(n)
                self._tables[n] = table
            return table

    def _build(self, n: int) -> Dict[tuple, Callable]:
        segments: List[CSegment] = [r.render(n) for r in self._renderers]
        source = render_module(segments, n, title=self.tag)
        library = load_library(build_library(source, tag=self.tag))
        table: Dict[tuple, Callable] = {}
        for segment in segments:
            for key, symbol, nargs in segment.functions:
                fn = getattr(library, symbol)
                fn.restype = None
                fn.argtypes = [ctypes.c_void_p] * nargs
                table[key] = fn
        return table
