"""Native code generation for the serving compiler.

``repro.serve.codegen`` turns compiled IR graphs into per-batch-size C
kernels: :mod:`renderer` emits the source (quantizer clips, SP2 level
grids and epilogue constants baked in as literals), :mod:`build` probes
for a C compiler once and maintains a content-hash-keyed ``.so`` cache
with atomic publication, and :mod:`runtime` binds the built library's
entry points through ``ctypes``. The ``compiled`` backend
(:mod:`repro.serve.backends.compiled`) is the consumer; everything here
is policy-free mechanism.
"""

from repro.serve.codegen.build import (
    CFLAGS,
    build_library,
    cache_dir,
    cached_libraries,
    clear_cache,
    compiler_probe,
    have_compiler,
)
from repro.serve.codegen.renderer import (
    NATIVE_KINDS,
    CSegment,
    c_array,
    c_float,
    render_module,
    supports,
)
from repro.serve.codegen.runtime import GraphProgram, load_library

__all__ = [
    "CFLAGS",
    "CSegment",
    "GraphProgram",
    "NATIVE_KINDS",
    "build_library",
    "c_array",
    "c_float",
    "cache_dir",
    "cached_libraries",
    "clear_cache",
    "compiler_probe",
    "have_compiler",
    "load_library",
    "render_module",
    "supports",
]
