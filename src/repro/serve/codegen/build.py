"""Native build layer for the ``compiled`` serving backend.

Three jobs, all deliberately boring:

- **Probe** for a working C compiler exactly once per process
  (:func:`compiler_probe`): ``$REPRO_CC`` if set, else ``clang``, ``cc``,
  ``gcc`` — each candidate must actually compile a trivial shared object,
  not merely exist on ``$PATH``. The result (path or failure reason) is
  cached so backend availability checks are free afterwards.
- **Build** rendered C source into a shared library
  (:func:`build_library`) under a content-hash-keyed cache directory.
  The key hashes the source *and* the compiler + flags, so upgrading the
  toolchain or editing the renderer never serves a stale binary. Builds
  are concurrency-safe twice over: an in-process lock serializes threads
  (ModelServer workers share one process), and the artifact lands via
  write-to-unique-temp + ``os.replace`` so concurrent *processes* racing
  on the same cache entry each publish an identical file atomically —
  last writer wins, every reader sees a complete ``.so``.
- **Administer** the cache (:func:`cached_libraries`,
  :func:`clear_cache`) for the ``repro serve backends`` CLI.

Flags pin bit-exact float semantics: ``-ffp-contract=off`` forbids FMA
contraction and ``-fno-fast-math`` keeps IEEE-754 ordering, so the
generated elementwise kernels match numpy's float32 ufuncs bit for bit.
"""

from __future__ import annotations

import os
import platform
import shutil
import subprocess
import tempfile
import threading
from pathlib import Path
from typing import List, Optional, Tuple

from repro.errors import CompileError
from repro.util.hashing import stable_digest

#: Probe order when ``$REPRO_CC`` is unset. ``cc`` before ``gcc``: on most
#: systems ``cc`` *is* clang or gcc, and respecting the system default
#: keeps the cache key stable across shells.
COMPILERS = ("clang", "cc", "gcc")

#: Non-negotiable flags: IEEE-754 per-element semantics. ``-ffp-contract
#: =off`` forbids FMA contraction; ``-fno-fast-math`` keeps ordering.
BASE_CFLAGS = ("-shared", "-fPIC", "-ffp-contract=off", "-fno-fast-math")

#: Optimization tiers, best first; the probe keeps the first tier the
#: compiler accepts. ``-march=native`` unlocks the SIMD width numpy's
#: ufunc loops already use — auto-vectorizing our straight-line
#: per-element float32 code never changes a result bit (contraction is
#: off, there is no reassociation to do, and the only reduction — max —
#: is order-independent).
OPT_TIERS = (("-O3", "-march=native"), ("-O3",), ("-O2",))

#: Kept for introspection/tests: the flags of the probed toolchain.
CFLAGS = OPT_TIERS[0] + BASE_CFLAGS

_PROBE_SOURCE = "int repro_codegen_probe(void) { return 42; }\n"

_probe_lock = threading.Lock()
_probe_result: Optional[Tuple[Optional[str], Tuple[str, ...], str]] = None

_build_lock = threading.Lock()


def cache_dir() -> Path:
    """Directory holding built ``.so`` kernels (and their ``.c`` sources,
    kept next to them for debuggability). ``$REPRO_CODEGEN_CACHE``
    overrides the default under ``~/.cache``."""
    override = os.environ.get("REPRO_CODEGEN_CACHE")
    if override:
        root = Path(override)
    else:
        base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
            os.path.expanduser("~"), ".cache")
        root = Path(base) / "repro-codegen"
    root.mkdir(parents=True, exist_ok=True)
    return root


def _try_compiler(command: str) -> Optional[Tuple[str, Tuple[str, ...]]]:
    """Return ``(resolved path, flags)`` for the best optimization tier
    ``command`` accepts (verified by compiling a trivial shared object),
    else ``None``."""
    resolved = shutil.which(command)
    if resolved is None:
        return None
    with tempfile.TemporaryDirectory(prefix="repro-cc-probe-") as tmp:
        source = Path(tmp) / "probe.c"
        out = Path(tmp) / "probe.so"
        source.write_text(_PROBE_SOURCE)
        for tier in OPT_TIERS:
            flags = tier + BASE_CFLAGS
            try:
                proc = subprocess.run(
                    [resolved, *flags, "-o", str(out), str(source)],
                    stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
                    timeout=60)
            except (OSError, subprocess.SubprocessError):
                return None
            if proc.returncode == 0:
                return resolved, flags
    return None


def _probe(refresh: bool = False) -> Tuple[Optional[str],
                                           Tuple[str, ...], str]:
    """(compiler path or None, flags, note) — cached for the process."""
    global _probe_result
    with _probe_lock:
        if _probe_result is not None and not refresh:
            return _probe_result
        override = os.environ.get("REPRO_CC")
        candidates = (override,) if override else COMPILERS
        tried: List[str] = []
        result: Tuple[Optional[str], Tuple[str, ...], str] = (
            None, (), "no working C compiler (tried: none)")
        for command in candidates:
            if not command:
                continue
            tried.append(command)
            found = _try_compiler(command)
            if found is not None:
                resolved, flags = found
                result = (resolved, flags,
                          f"{command} -> {resolved} ({' '.join(flags[:2])})")
                break
        else:
            source = "$REPRO_CC" if override else "probe order"
            result = (None, (),
                      f"no working C compiler ({source}: {', '.join(tried)})")
        _probe_result = result
        return result


def compiler_probe(refresh: bool = False) -> Tuple[Optional[str], str]:
    """Locate a working C compiler, once.

    Returns ``(path, note)``: ``path`` is the compiler executable or
    ``None``, and ``note`` says which candidate won with which flags (or
    why none did). The result is cached for the life of the process;
    pass ``refresh=True`` to re-probe (tests monkeypatching ``$PATH``).
    """
    compiler, _flags, note = _probe(refresh)
    return compiler, note


def have_compiler() -> bool:
    return compiler_probe()[0] is not None


def _reset_probe_cache() -> None:
    """Test hook: forget the cached probe result."""
    global _probe_result
    with _probe_lock:
        _probe_result = None


def _host_key(flags: Tuple[str, ...]) -> str:
    """CPU identity folded into the cache key when ``-march=native`` is
    in play — a binary tuned for one microarchitecture must never be
    served to another (SIGILL, not a wrong answer, but still fatal)."""
    if "-march=native" not in flags:
        return ""
    key = platform.machine()
    try:
        with open("/proc/cpuinfo") as handle:
            for line in handle:
                if line.startswith("model name"):
                    key += "|" + line.split(":", 1)[1].strip()
                    break
    except OSError:
        pass
    return key


def source_digest(source: str, compiler: str,
                  flags: Tuple[str, ...] = ()) -> str:
    """Content hash keying the build cache: source + toolchain + host.

    Built on the shared :func:`repro.util.hashing.stable_digest` over
    the same NUL-joined string as always, so existing cached ``.so``
    files keep their keys across the helper consolidation.
    """
    payload = "\0".join((source, compiler, " ".join(flags),
                         _host_key(flags)))
    return stable_digest(payload, length=24)


def build_library(source: str, tag: str = "graph") -> Path:
    """Compile ``source`` to a shared library, reusing the cache when the
    identical source was built before. Raises :class:`CompileError` when
    no compiler is available or the compiler rejects the source."""
    compiler, flags, note = _probe()
    if compiler is None:
        raise CompileError(f"cannot build native kernels: {note}")
    digest = source_digest(source, compiler, flags)
    directory = cache_dir()
    library = directory / f"{tag}-{digest}.so"
    if library.exists():
        return library
    with _build_lock:
        if library.exists():
            return library
        c_file = directory / f"{tag}-{digest}.c"
        c_file.write_text(source)
        handle, tmp_name = tempfile.mkstemp(
            prefix=f".{tag}-{digest}-", suffix=".so.tmp", dir=str(directory))
        os.close(handle)
        command = [compiler, *flags, "-o", tmp_name, str(c_file), "-lm"]
        try:
            proc = subprocess.run(command, stdout=subprocess.PIPE,
                                  stderr=subprocess.PIPE, timeout=300)
        except (OSError, subprocess.SubprocessError) as error:
            os.unlink(tmp_name)
            raise CompileError(
                f"compiler invocation failed: {' '.join(command)}: {error}"
            ) from error
        if proc.returncode != 0:
            os.unlink(tmp_name)
            stderr = proc.stderr.decode("utf-8", "replace").strip()
            tail = "\n".join(stderr.splitlines()[-12:])
            raise CompileError(
                f"compiler exited {proc.returncode}: {' '.join(command)}\n"
                f"{tail}")
        os.replace(tmp_name, library)  # atomic publish
    return library


def cached_libraries() -> List[Path]:
    """The ``.so`` files currently in the cache, oldest first."""
    directory = cache_dir()
    return sorted(directory.glob("*.so"), key=lambda p: p.stat().st_mtime)


def clear_cache() -> int:
    """Delete all cached kernels (and their sources); return how many
    ``.so`` files were removed."""
    directory = cache_dir()
    removed = 0
    for path in directory.iterdir():
        if path.suffix == ".so":
            removed += 1
        if path.suffix in (".so", ".c") or ".so.tmp" in path.name:
            try:
                path.unlink()
            except OSError:
                pass
    return removed
