"""Content-addressed response cache + in-flight request coalescing.

The batcher amortizes kernel cost across *concurrent* requests; this
module amortizes it across *identical* ones. Real traffic is Zipf-shaped
— a small set of payloads accounts for most arrivals — and because every
deployment in this stack is bit-exact by construction (the export
verification chain), two byte-identical payloads against the same
artifact are *guaranteed* to produce byte-identical outputs. That makes
exact response caching sound, not approximate: a hit returns the exact
bits the backend would have produced.

Two data structures, both owned by :class:`~repro.serve.server
.ModelServer` and driven under its work lock:

- :class:`ResponseCache` — an LRU over completed responses with a byte
  budget and optional TTL. Keys are ``(artifact digest, hosting
  generation, payload digest)``: the artifact digest pins the exact
  weights, the generation is a server-unique token minted every time a
  model is (re)hosted, and the payload digest
  (:func:`repro.util.hashing.array_digest`) pins the request bytes.
  A stale hit after an alias rollover or re-load is therefore
  *structurally impossible* — the new hosting mints a new generation, so
  old entries can never match, and ``unload`` additionally drops them
  by generation so their bytes return to the budget immediately.
- :class:`InflightTable` — deduplicates *concurrent* identical submits:
  the first requester becomes the leader and occupies one batcher slot;
  followers arriving before the leader resolves attach to the same
  pending computation and are all answered from its single result (and
  on failure, each follower fails exactly once — a crashed batch never
  strands or double-resolves a coalesced future).

Neither class spawns threads, sleeps, or reads a clock it was not given:
TTL expiry is lazy (checked on access against the injected clock), so
the whole subsystem is deterministic under the manual-clock test rig.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["CacheKey", "ResponseCache", "InflightTable"]

#: (artifact digest, hosting generation, payload digest)
CacheKey = Tuple[str, int, str]


class _Entry:
    __slots__ = ("key", "value", "nbytes", "generation", "expires_at")

    def __init__(self, key: CacheKey, value: np.ndarray, nbytes: int,
                 generation: int, expires_at: Optional[float]):
        self.key = key
        self.value = value
        self.nbytes = nbytes
        self.generation = generation
        self.expires_at = expires_at


class ResponseCache:
    """LRU response store with a byte budget, generation invalidation
    and lazy TTL.

    Stored values are defensive read-only copies (a hit may be handed to
    many clients; none of them may corrupt it for the others), and a hit
    returns the stored array itself — zero copies on the hot path.

    Not internally locked: the owning server serializes access under its
    own lock, same discipline as the rest of its per-model state.
    """

    def __init__(self, max_bytes: int, ttl_s: Optional[float] = None,
                 clock=time.monotonic):
        if max_bytes < 1:
            raise ConfigurationError(
                f"cache max_bytes must be >= 1, got {max_bytes}")
        if ttl_s is not None and ttl_s <= 0:
            raise ConfigurationError(
                f"cache ttl_s must be > 0 (or None), got {ttl_s}")
        self.max_bytes = int(max_bytes)
        self.ttl_s = ttl_s
        self._clock = clock
        self._entries: "OrderedDict[CacheKey, _Entry]" = OrderedDict()
        self._bytes = 0
        self._generation_bytes: Dict[int, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def current_bytes(self) -> int:
        return self._bytes

    def bytes_for(self, generation: int) -> int:
        """Bytes currently cached under one hosting generation."""
        return self._generation_bytes.get(generation, 0)

    # ------------------------------------------------------------------
    def get(self, key: CacheKey,
            now: Optional[float] = None) -> Optional[np.ndarray]:
        """The cached response for ``key``, or None (miss/expired).

        A hit refreshes the entry's LRU position. Expiry is lazy: an
        entry past its deadline is dropped here, on access — no
        background sweeper, no extra clock reads.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if entry.expires_at is not None:
            if now is None:
                now = self._clock()
            if now >= entry.expires_at:
                self._remove(entry)
                self.expirations += 1
                self.misses += 1
                return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry.value

    def put(self, key: CacheKey, value: np.ndarray,
            now: Optional[float] = None) -> Optional[np.ndarray]:
        """Store one response; returns the read-only stored copy, or
        None when the value alone exceeds the budget (never evict the
        whole cache for one oversized answer)."""
        value = np.array(value, copy=True)
        value.setflags(write=False)
        nbytes = int(value.nbytes)
        if nbytes > self.max_bytes:
            return None
        old = self._entries.get(key)
        if old is not None:
            self._remove(old)
        expires_at = None
        if self.ttl_s is not None:
            if now is None:
                now = self._clock()
            expires_at = now + self.ttl_s
        entry = _Entry(key, value, nbytes, key[1], expires_at)
        self._entries[key] = entry
        self._bytes += nbytes
        self._generation_bytes[key[1]] = \
            self._generation_bytes.get(key[1], 0) + nbytes
        while self._bytes > self.max_bytes:
            _victim_key, victim = self._entries.popitem(last=False)
            self._account_removal(victim)
            self.evictions += 1
        return value

    def invalidate(self, generation: int) -> int:
        """Drop every entry of one hosting generation (``unload`` path);
        returns how many entries were removed."""
        victims = [entry for entry in self._entries.values()
                   if entry.generation == generation]
        for entry in victims:
            self._remove(entry)
        self.invalidations += len(victims)
        return len(victims)

    def clear(self) -> int:
        removed = len(self._entries)
        self._entries.clear()
        self._bytes = 0
        self._generation_bytes.clear()
        return removed

    # ------------------------------------------------------------------
    def _remove(self, entry: _Entry) -> None:
        del self._entries[entry.key]
        self._account_removal(entry)

    def _account_removal(self, entry: _Entry) -> None:
        self._bytes -= entry.nbytes
        remaining = self._generation_bytes.get(entry.generation, 0) \
            - entry.nbytes
        if remaining > 0:
            self._generation_bytes[entry.generation] = remaining
        else:
            self._generation_bytes.pop(entry.generation, None)

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        looked = self.hits + self.misses
        return self.hits / looked if looked else 0.0

    def stats(self) -> Dict[str, float]:
        return {"entries": len(self._entries), "bytes": self._bytes,
                "max_bytes": self.max_bytes, "hits": self.hits,
                "misses": self.misses, "hit_rate": self.hit_rate,
                "evictions": self.evictions,
                "expirations": self.expirations,
                "invalidations": self.invalidations}

    def format(self) -> str:
        return (f"{len(self._entries)} entries, "
                f"{self._bytes}/{self.max_bytes} bytes, "
                f"{self.hits} hits / {self.misses} misses "
                f"(rate {self.hit_rate:.2f}), "
                f"{self.evictions} evicted, {self.expirations} expired, "
                f"{self.invalidations} invalidated")


@dataclass
class InflightEntry:
    """One pending computation and everyone waiting on it."""

    key: CacheKey
    generation: int
    leader: object                               # InferenceFuture
    #: (follower future, follower's ServedRequest record)
    followers: List[Tuple[object, object]] = field(default_factory=list)


class InflightTable:
    """Pending identical submits, keyed like the cache.

    The server registers a leader when a payload misses the cache,
    attaches followers that arrive while the leader is queued or
    executing, and pops the entry exactly once when the leader resolves
    — the pop is what guarantees every follower is answered exactly
    once, success or failure. All calls happen under the server's work
    lock; this class adds no locking of its own.
    """

    def __init__(self):
        self._entries: Dict[CacheKey, InflightEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: CacheKey) -> Optional[InflightEntry]:
        return self._entries.get(key)

    def begin(self, key: CacheKey, generation: int,
              leader) -> InflightEntry:
        if key in self._entries:
            raise ConfigurationError(
                f"in-flight entry for {key!r} already exists")
        entry = InflightEntry(key=key, generation=generation,
                              leader=leader)
        self._entries[key] = entry
        return entry

    def pop(self, key: CacheKey) -> Optional[InflightEntry]:
        return self._entries.pop(key, None)

    def pop_generation(self, generation: int) -> List[InflightEntry]:
        """Detach every pending entry of one generation (unload path);
        the caller owns answering their followers."""
        keys = [key for key, entry in self._entries.items()
                if entry.generation == generation]
        return [self._entries.pop(key) for key in keys]
